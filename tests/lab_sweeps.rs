//! Integration tests of the `dbt-lab` sweep engine: deterministic output
//! under parallelism, baseline-cycle caching, and agreement with the legacy
//! serial measurement path.

use dbt_lab::{
    measure_slowdowns, run_sweep, run_sweep_with, AttackVariant, ExecOptions, JobOutcome,
    ProgramSpec, Registry, ScenarioKind, Sweep, TranslationService,
};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;

fn mixed_sweep() -> Sweep {
    Sweep::new("mixed", "kernels and one attack", ScenarioKind::Perf)
        .program("gemm", ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini })
        .program("atax", ProgramSpec::Workload { name: "atax", size: WorkloadSize::Mini })
        .program("jacobi-1d", ProgramSpec::Workload { name: "jacobi-1d", size: WorkloadSize::Mini })
        .program(
            "spectre-v1",
            ProgramSpec::Attack { variant: AttackVariant::SpectreV1, secret: b"GB".to_vec() },
        )
}

#[test]
fn same_sweep_twice_is_byte_identical_json_even_multithreaded() {
    let scenarios = mixed_sweep().expand();
    let opts = ExecOptions { threads: 4, verbose: false };
    let first = run_sweep("mixed", &scenarios, opts).to_json();
    let second = run_sweep("mixed", &scenarios, opts).to_json();
    assert_eq!(first, second, "same sweep must serialise to byte-identical JSON");

    // ... and the worker count must not leak into the output either.
    let serial = run_sweep("mixed", &scenarios, ExecOptions { threads: 1, verbose: false });
    assert_eq!(first, serial.to_json(), "thread count must not affect the report");
}

#[test]
fn baseline_is_simulated_once_per_workload() {
    let scenarios = mixed_sweep().expand();
    let report = run_sweep("mixed", &scenarios, ExecOptions { threads: 4, verbose: false });
    // 4 programs × 5 policies, all Perf kind (the attack program is measured
    // as a workload here).
    assert_eq!(report.stats.jobs, 20);
    assert_eq!(
        report.stats.baseline_simulations, 4,
        "one baseline per distinct (program, platform), not one per comparison"
    );
    // Each program: 1 shared baseline + 4 protected runs.
    assert_eq!(report.stats.simulations, 20);
}

#[test]
fn sweep_slowdowns_agree_with_the_legacy_serial_path() {
    let scenarios = Sweep::new("legacy", "gemm only", ScenarioKind::Perf)
        .program("gemm", ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini })
        .expand();
    let report = run_sweep("legacy", &scenarios, ExecOptions::default());
    let table = report.slowdown_table();
    assert_eq!(table.rows.len(), 1);
    assert_eq!(table.policies, MitigationPolicy::ALL.to_vec());

    let program = ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini }.build().unwrap();
    let legacy = measure_slowdowns("gemm", &program).unwrap();
    assert_eq!(table.rows[0].baseline_cycles, legacy.baseline_cycles);
    for i in 0..MitigationPolicy::ALL.len() {
        assert!(
            (table.rows[0].slowdown[i] - legacy.slowdown[i]).abs() < 1e-12,
            "policy {i}: sweep {} vs legacy {}",
            table.rows[0].slowdown[i],
            legacy.slowdown[i]
        );
    }
}

#[test]
fn each_translation_is_compiled_exactly_once_per_service_even_multithreaded() {
    let scenarios = mixed_sweep().expand();
    let opts = ExecOptions { threads: 4, verbose: false };
    let service = TranslationService::new();
    let first = run_sweep_with("mixed", &scenarios, opts, &service);
    assert!(
        first.stats.translation_misses > 0,
        "a cold service must compile something: {:?}",
        first.stats
    );
    // The sweep counts engine-level translation events; the service counts
    // its internal queries (codegen + the nested analysis stage), so it
    // always compiled at least as much as the sweep observed as misses.
    assert!(
        service.stats().misses >= first.stats.translation_misses,
        "sweep misses {} cannot exceed service compiles {}",
        first.stats.translation_misses,
        service.stats().misses
    );
    // Re-running the identical sweep against the same service must not
    // compile a single translation again: each (program, config) was
    // translated exactly once, and the counter proves it.
    let second = run_sweep_with("mixed", &scenarios, opts, &service);
    assert_eq!(
        second.stats.translation_misses, 0,
        "every translation of the second sweep must be a memo hit: {:?}",
        second.stats
    );
    assert!(second.stats.translation_hits > 0);
    assert_eq!(first.results, second.results, "memo hits must not change any measurement");
}

#[test]
fn shared_and_fresh_services_produce_identical_cycles_and_stable_json() {
    let scenarios = mixed_sweep().expand();
    let opts = ExecOptions { threads: 4, verbose: false };
    // Fresh-per-sweep services (the default path): byte-identical JSON,
    // including the translation counters.
    let fresh_a = run_sweep("mixed", &scenarios, opts);
    let fresh_b = run_sweep("mixed", &scenarios, opts);
    assert_eq!(fresh_a.to_json(), fresh_b.to_json());
    // A pre-warmed shared service changes only the hit/miss split — every
    // cycle count, rollback and recovery rate stays identical.
    let service = TranslationService::new();
    let _warmup = run_sweep_with("mixed", &scenarios, opts, &service);
    let warm = run_sweep_with("mixed", &scenarios, opts, &service);
    assert_eq!(fresh_a.results, warm.results);
    assert_eq!(warm.stats.translation_misses, 0, "nothing left to compile: {:?}", warm.stats);
    assert!(warm.stats.translation_hits > 0);
}

#[test]
fn attack_sweep_reproduces_the_leak_and_the_mitigation() {
    let registry = Registry::standard(WorkloadSize::Mini);
    let sweep = registry.find("attack-table").unwrap();
    // Use a short secret so the test stays fast in debug builds.
    let mut sweep = sweep.clone();
    for program in &mut sweep.programs {
        if let ProgramSpec::Attack { secret, .. } = &mut program.spec {
            *secret = b"GB".to_vec();
        }
    }
    let report = run_sweep(&sweep.name, &sweep.expand(), ExecOptions::default());
    assert_eq!(report.results.len(), 10);
    for result in &report.results {
        let JobOutcome::Attack(metrics) = &result.outcome else {
            panic!("{}: expected attack outcome", result.scenario.name);
        };
        if result.scenario.policy == MitigationPolicy::Unprotected {
            assert_eq!(
                metrics.correct_bytes(),
                metrics.secret.len(),
                "{} must leak the full secret",
                result.scenario.name
            );
        } else {
            assert_eq!(metrics.correct_bytes(), 0, "{} must stop the leak", result.scenario.name);
        }
    }
}
