//! End-to-end reproduction of the paper's Section V-A: both Spectre
//! variants leak the full secret on the unsafe configuration and recover
//! nothing once the DBT engine applies a countermeasure.

use dbt_attacks::{run_spectre_v1, run_spectre_v4};
use ghostbusters::MitigationPolicy;

const SECRET: &[u8] = b"DATE2020";

#[test]
fn spectre_v1_full_secret_recovery_when_unsafe() {
    let outcome = run_spectre_v1(MitigationPolicy::Unprotected, SECRET).unwrap();
    assert_eq!(outcome.recovered, SECRET, "{outcome}");
    assert!(outcome.patterns_detected > 0, "the analysis should still see the pattern");
}

#[test]
fn spectre_v4_full_secret_recovery_when_unsafe() {
    let outcome = run_spectre_v4(MitigationPolicy::Unprotected, SECRET).unwrap();
    assert_eq!(outcome.recovered, SECRET, "{outcome}");
    assert!(outcome.rollbacks as usize >= SECRET.len(), "every attack round must roll back");
}

#[test]
fn every_countermeasure_stops_both_variants() {
    for policy in
        [MitigationPolicy::FineGrained, MitigationPolicy::Fence, MitigationPolicy::NoSpeculation]
    {
        let v1 = run_spectre_v1(policy, SECRET).unwrap();
        assert_eq!(v1.correct_bytes(), 0, "{v1}");
        let v4 = run_spectre_v4(policy, SECRET).unwrap();
        assert_eq!(v4.correct_bytes(), 0, "{v4}");
    }
}

#[test]
fn fine_grained_mitigation_does_not_disable_benign_speculation() {
    // The fine-grained policy must keep speculating on code without the
    // Spectre pattern: the v4 attack still exhibits MCB rollbacks (the
    // first, benign speculative load keeps bypassing the store) even though
    // nothing is leaked.
    let outcome = run_spectre_v4(MitigationPolicy::FineGrained, SECRET).unwrap();
    assert!(outcome.rollbacks > 0);
    assert_eq!(outcome.correct_bytes(), 0);
}
