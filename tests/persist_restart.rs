//! End-to-end tests of the durable cache tier (`dbt-persist`) under the
//! real daemon over real TCP: a restarted daemon on a warm cache dir
//! answers byte-identically without simulating, two daemons sharing one
//! directory never corrupt each other, and corrupted or incompatible
//! cache contents are quarantined and recomputed — never surfaced as
//! request errors.

use dbt_lab::{strip_stats, LabDaemon};
use dbt_serve::{serve, Client, JsonValue, Request, Response, ServerConfig, ServerHandle};
use dbt_workloads::WorkloadSize;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty cache root per test.
fn fresh_dir(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "dbt-persist-restart-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&root);
    root
}

/// Starts a daemon over `dir` on an ephemeral port.
fn start_cached(dir: &Path) -> ServerHandle {
    let dir = dir.display().to_string();
    let daemon = LabDaemon::with_cache_dir(WorkloadSize::Mini, 1, Some(&dir))
        .expect("a writable cache dir must open");
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        cache_dir: Some(dir),
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", Arc::new(daemon), config).expect("ephemeral port must bind")
}

fn ok_body(response: Response) -> String {
    match response {
        Response::Ok { body, .. } => body,
        other => panic!("expected ok, got {other:?}"),
    }
}

/// The request list every test drives: two distinct runs and a sweep, so
/// the run memo, the translation service and the analysis verdicts all
/// exercise the durable tier.
fn mix() -> Vec<Request> {
    vec![
        Request::Run { scenario: "figure4/gemm/our-approach/default".to_string() },
        Request::Run { scenario: "figure4/atax/fence/default".to_string() },
        Request::Sweep { name: "ptr-matmul".to_string(), threads: 1 },
    ]
}

/// Asks `addr` every mix request once, returning the raw bodies.
fn drive_mix(addr: std::net::SocketAddr) -> Vec<String> {
    let mut client = Client::connect(addr).expect("connect");
    mix().iter().map(|request| ok_body(client.request(request).expect("transport"))).collect()
}

/// The `lab.persist.<member>` counter out of a daemon's `stats` body.
fn persist_stat(addr: std::net::SocketAddr, member: &str) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    let stats = JsonValue::parse(&ok_body(client.request(&Request::Stats).expect("transport")))
        .expect("stats body parses");
    stats
        .get("lab")
        .and_then(|lab| lab.get("persist"))
        .and_then(|persist| persist.get(member))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("stats lacks lab.persist.{member}: {stats}"))
}

fn shutdown(handle: ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("connect");
    ok_body(client.request(&Request::Shutdown).expect("transport"));
    handle.wait();
}

/// Every published entry file under `objects/`, sorted for determinism.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in fs::read_dir(dir.join("objects")).expect("objects dir exists") {
        let shard = shard.expect("readable shard").path();
        if shard.is_dir() {
            for file in fs::read_dir(&shard).expect("readable shard dir") {
                let file = file.expect("readable entry").path();
                if file.is_file() {
                    files.push(file);
                }
            }
        }
    }
    files.sort();
    files
}

#[test]
fn restarted_daemon_on_a_warm_dir_matches_the_cold_daemon_byte_for_byte() {
    let dir = fresh_dir("warm");
    let cold_handle = start_cached(&dir);
    let cold = drive_mix(cold_handle.addr());
    assert!(persist_stat(cold_handle.addr(), "misses") > 0, "a fresh dir answers nothing");
    assert!(persist_stat(cold_handle.addr(), "writes") > 0, "cold runs publish entries");
    shutdown(cold_handle);

    let warm_handle = start_cached(&dir);
    let warm = drive_mix(warm_handle.addr());
    for (cold_body, warm_body) in cold.iter().zip(&warm) {
        assert_eq!(
            strip_stats(cold_body),
            strip_stats(warm_body),
            "a warm restart must answer byte-identically outside `stats`"
        );
        assert!(
            warm_body.contains("\"simulations\": 0"),
            "a warm restart must never simulate: {warm_body}"
        );
    }
    assert_eq!(
        persist_stat(warm_handle.addr(), "misses"),
        0,
        "every warm lookup must be answered from disk"
    );
    assert!(persist_stat(warm_handle.addr(), "hits") > 0);
    shutdown(warm_handle);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_daemons_sharing_one_cache_dir_never_corrupt_each_other() {
    let dir = fresh_dir("shared");
    // Both daemons race cold over the same directory: every publish of
    // every entry happens from both sides, concurrently, onto the same
    // paths. Atomic rename is the only publish point, so readers on
    // either side may see the entry or miss it — never a torn file.
    let a = start_cached(&dir);
    let b = start_cached(&dir);
    let (addr_a, addr_b) = (a.addr(), b.addr());
    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let addr = if i % 2 == 0 { addr_a } else { addr_b };
                scope.spawn(move || drive_mix(addr))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });
    let reference: Vec<String> = bodies[0].iter().map(|body| strip_stats(body)).collect();
    for client_bodies in &bodies {
        let stripped: Vec<String> = client_bodies.iter().map(|body| strip_stats(body)).collect();
        assert_eq!(stripped, reference, "both daemons must answer identically");
    }
    for addr in [addr_a, addr_b] {
        assert_eq!(
            persist_stat(addr, "corrupt_quarantined"),
            0,
            "concurrent same-key publishes must never produce a torn entry"
        );
    }
    shutdown(a);
    shutdown(b);

    // A third daemon inherits the directory the two raced over cleanly.
    let c = start_cached(&dir);
    let warm = drive_mix(c.addr());
    for (warm_body, reference_body) in warm.iter().zip(&reference) {
        assert_eq!(&strip_stats(warm_body), reference_body);
        assert!(warm_body.contains("\"simulations\": 0"), "{warm_body}");
    }
    assert_eq!(persist_stat(c.addr(), "misses"), 0);
    shutdown(c);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_quarantined_and_recomputed_not_errors() {
    let dir = fresh_dir("corrupt");
    let cold_handle = start_cached(&dir);
    let cold = drive_mix(cold_handle.addr());
    shutdown(cold_handle);

    // Sabotage two published entries the warm daemon will read: truncate
    // one mid-payload and flip a bit in another. Both frauds are caught
    // by the length/checksum framing.
    let files = entry_files(&dir);
    assert!(files.len() >= 2, "the mix must publish at least two entries: {files:?}");
    let truncated = fs::read(&files[0]).expect("readable entry");
    fs::write(&files[0], &truncated[..truncated.len() / 2]).expect("truncate entry");
    let mut flipped = fs::read(&files[1]).expect("readable entry");
    let middle = flipped.len() / 2;
    flipped[middle] ^= 0x40;
    fs::write(&files[1], &flipped).expect("bit-flip entry");

    let warm_handle = start_cached(&dir);
    let warm = drive_mix(warm_handle.addr());
    for (cold_body, warm_body) in cold.iter().zip(&warm) {
        assert_eq!(
            strip_stats(cold_body),
            strip_stats(warm_body),
            "corruption must be invisible in the answers"
        );
    }
    assert_eq!(
        persist_stat(warm_handle.addr(), "corrupt_quarantined"),
        2,
        "both sabotaged entries must be quarantined"
    );
    // The quarantines surface in the daemon's own event log, interleaved
    // with the server lifecycle events in the one `logs` stream.
    let mut client = Client::connect(warm_handle.addr()).expect("connect");
    let logs =
        ok_body(client.request(&Request::Logs { level: Some("warn".to_string()) }).expect("logs"));
    assert!(logs.contains("corrupt entry quarantined"), "{logs}");
    shutdown(warm_handle);

    // The recomputed entries were re-published: a third daemon is fully
    // warm again.
    let third = start_cached(&dir);
    let again = drive_mix(third.addr());
    for body in &again {
        assert!(body.contains("\"simulations\": 0"), "{body}");
    }
    assert_eq!(persist_stat(third.addr(), "corrupt_quarantined"), 0);
    shutdown(third);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn an_incompatible_manifest_is_quarantined_wholesale_never_read() {
    let dir = fresh_dir("manifest");
    let cold_handle = start_cached(&dir);
    let cold = drive_mix(cold_handle.addr());
    shutdown(cold_handle);

    // A manifest from some other schema: the entries under it — however
    // well-formed — must be ignored wholesale and the daemon must start
    // cold, not crash and not read a single stale byte.
    fs::write(dir.join("manifest.json"), "{\"schema\": \"dbt-persist/entry/v999\"}\n")
        .expect("plant foreign manifest");

    let reset_handle = start_cached(&dir);
    let reset = drive_mix(reset_handle.addr());
    for (cold_body, reset_body) in cold.iter().zip(&reset) {
        assert_eq!(
            strip_stats(cold_body),
            strip_stats(reset_body),
            "a wholesale reset recomputes the same answers"
        );
    }
    assert_eq!(
        persist_stat(reset_handle.addr(), "hits"),
        0,
        "nothing under an incompatible manifest may be read"
    );
    assert!(
        persist_stat(reset_handle.addr(), "quarantined") > 0,
        "the incompatible cache is preserved under corrupt/ for forensics"
    );
    // The daemon logged the reset.
    let mut client = Client::connect(reset_handle.addr()).expect("connect");
    let logs =
        ok_body(client.request(&Request::Logs { level: Some("warn".to_string()) }).expect("logs"));
    assert!(logs.contains("incompatible cache"), "{logs}");
    shutdown(reset_handle);
    let _ = fs::remove_dir_all(&dir);
}
