//! The Figure-4 shape, asserted as an integration test at the mini problem
//! size: the fine-grained countermeasure costs (almost) nothing, disabling
//! speculation costs real performance, and the fence variant sits in
//! between (or equal) on pattern-free code.

use dbt_platform::PolicyComparison;
use dbt_workloads::{pointer_matmul, suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

#[test]
fn fine_grained_is_free_on_polybench_and_no_speculation_is_not() {
    let mut total_fine = 0.0;
    let mut total_nospec = 0.0;
    // A representative subset at the default problem size (the mini size
    // leaves several kernels below the hot threshold, where speculation —
    // and therefore the cost of disabling it — never kicks in).
    let workloads: Vec<_> = suite(WorkloadSize::Small)
        .into_iter()
        .filter(|w| matches!(w.name, "gemm" | "atax" | "syrk" | "jacobi-1d"))
        .collect();
    let count = workloads.len() as f64;
    for workload in workloads {
        let comparison = PolicyComparison::measure(workload.name, &workload.program).unwrap();
        let fine = comparison.slowdown(MitigationPolicy::FineGrained);
        let fence = comparison.slowdown(MitigationPolicy::Fence);
        let nospec = comparison.slowdown(MitigationPolicy::NoSpeculation);
        assert!(
            fine <= 1.02,
            "{}: our approach should not slow down pattern-free code (got {:.3})",
            comparison.name,
            fine
        );
        assert!(
            fence <= 1.02,
            "{}: the fence variant should not slow down pattern-free code (got {:.3})",
            comparison.name,
            fence
        );
        // At the mini problem size a couple of kernels can land within noise
        // of each other; allow a 3 % tolerance on the per-kernel ordering.
        assert!(
            nospec >= fine * 0.97,
            "{}: disabling speculation should not be cheaper (nospec {:.3} vs fine {:.3})",
            comparison.name,
            nospec,
            fine
        );
        total_fine += fine;
        total_nospec += nospec;
    }
    // Average shape of Figure 4: ~1.0 for the countermeasure, clearly above
    // 1.0 for the naive approach (the paper reports +16 % on its board; the
    // exact number depends on the machine model).
    assert!(total_fine / count < 1.02);
    assert!(total_nospec / count > 1.05);
}

#[test]
fn pointer_matmul_pays_more_with_the_fence_than_with_fine_grained() {
    // The Spectre pattern only shows up in the hot loop once the kernel is
    // large enough for its superblocks to be built from a well-trained
    // profile, so this experiment uses the default (Small) size, as the
    // benchmark harness does.
    let workload = pointer_matmul(WorkloadSize::Small);
    let comparison = PolicyComparison::measure(workload.name, &workload.program).unwrap();
    let fine = comparison.slowdown(MitigationPolicy::FineGrained);
    let fence = comparison.slowdown(MitigationPolicy::Fence);
    // With the Spectre pattern in the hot loop both countermeasures now have
    // a visible cost, and the fence is at least as expensive as the
    // fine-grained constraint (the paper reports 15 % vs 4 %).
    assert!(fine > 1.0, "fine-grained should have a measurable cost here (got {fine:.3})");
    assert!(
        fence >= fine,
        "fence must not be cheaper than fine-grained (got {fence:.3} vs {fine:.3})"
    );
}
