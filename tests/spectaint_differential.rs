//! Differential validation of the speculative taint analysis against the
//! attack harness, over the seeded gadget corpus:
//!
//! * **soundness (dynamic)** — every corpus program whose translations the
//!   analyzer marks entirely leak-free must also fail to leak on the
//!   unprotected simulated processor;
//! * **coverage** — every program with a marked gadget is hardened under
//!   `MitigationPolicy::Selective`: edges get constrained and the attack
//!   recovers nothing;
//! * **corpus sanity** — the planted gadget shapes really leak when
//!   unprotected (otherwise the corpus would prove nothing).

use dbt_platform::Session;
use ghostbusters::MitigationPolicy;
use spectaint::corpus::generate;
use spectaint::PlantedShape;

const CORPUS_SEED: u64 = 0xdead_beef_cafe_f00d;
const CORPUS_SIZE: usize = 8;

struct RunOutcome {
    recovered: Vec<u8>,
    flagged_blocks: usize,
    hardened_edges: usize,
}

fn run(program: &dbt_riscv::Program, secret_len: usize, policy: MitigationPolicy) -> RunOutcome {
    let mut session = Session::builder().program(program).policy(policy).build().unwrap();
    session.run().unwrap();
    let engine = session.engine();
    RunOutcome {
        recovered: session.load_symbol_bytes("recovered", secret_len).unwrap(),
        flagged_blocks: engine.verdicts().iter().filter(|(_, v)| !v.is_leak_free()).count(),
        hardened_edges: engine.mitigation_summary().hardened_edges,
    }
}

fn leaked(secret: &[u8], recovered: &[u8]) -> usize {
    secret.iter().zip(recovered).filter(|(a, b)| a == b).count()
}

#[test]
fn leak_free_verdicts_imply_no_leak_when_unprotected() {
    for program in generate(CORPUS_SEED, CORPUS_SIZE) {
        let outcome = run(&program.program, program.secret.len(), MitigationPolicy::Unprotected);
        if outcome.flagged_blocks == 0 {
            assert_eq!(
                leaked(&program.secret, &outcome.recovered),
                0,
                "{}: marked leak-free but leaked {:?} (secret {:?})",
                program.name,
                outcome.recovered,
                program.secret
            );
        }
    }
}

#[test]
fn benign_shapes_are_marked_leak_free() {
    // The benign shapes are the precision claim: the blanket analysis
    // flags them (it poisons every speculative load), the taint analysis
    // must not.
    for program in generate(CORPUS_SEED, CORPUS_SIZE) {
        if program.shape.is_gadget() {
            continue;
        }
        let outcome = run(&program.program, program.secret.len(), MitigationPolicy::Unprotected);
        assert_eq!(
            outcome.flagged_blocks, 0,
            "{}: benign shape must analyse leak-free",
            program.name
        );
    }
}

#[test]
fn gadget_shapes_leak_when_unprotected_and_are_marked() {
    for program in generate(CORPUS_SEED, CORPUS_SIZE) {
        if !program.shape.is_gadget() {
            continue;
        }
        let outcome = run(&program.program, program.secret.len(), MitigationPolicy::Unprotected);
        assert_eq!(
            leaked(&program.secret, &outcome.recovered),
            program.secret.len(),
            "{}: the planted gadget must actually leak",
            program.name
        );
        assert!(
            outcome.flagged_blocks > 0,
            "{}: a leaking program must carry a marked gadget",
            program.name
        );
    }
}

#[test]
fn marked_gadgets_are_hardened_under_selective() {
    for program in generate(CORPUS_SEED, CORPUS_SIZE) {
        let unprotected =
            run(&program.program, program.secret.len(), MitigationPolicy::Unprotected);
        let selective = run(&program.program, program.secret.len(), MitigationPolicy::Selective);
        if unprotected.flagged_blocks > 0 {
            assert!(
                selective.hardened_edges > 0,
                "{}: flagged blocks must be constrained under Selective",
                program.name
            );
        }
        assert_eq!(
            leaked(&program.secret, &selective.recovered),
            0,
            "{}: Selective must stop any leak",
            program.name
        );
    }
}

#[test]
fn corpus_covers_all_shapes_deterministically() {
    let corpus = generate(CORPUS_SEED, CORPUS_SIZE);
    for shape in PlantedShape::ALL {
        assert!(corpus.iter().any(|p| p.shape == shape), "missing shape {}", shape.label());
    }
    let names: Vec<_> = corpus.iter().map(|p| p.name.clone()).collect();
    let again: Vec<_> = generate(CORPUS_SEED, CORPUS_SIZE).iter().map(|p| p.name.clone()).collect();
    assert_eq!(names, again);
}
