//! Cross-crate integration tests for the GhostBusters reproduction.
//!
//! The actual tests live in the sibling `*.rs` files (declared as `[[test]]`
//! targets): end-to-end Spectre attacks and mitigations, differential
//! execution of every workload against the reference interpreter, and the
//! Figure-4 slowdown shape.
