//! Differential testing: whatever speculation and mitigation configuration
//! the DBT engine uses, the architectural result of every workload must be
//! identical to the reference RISC-V interpreter.
//!
//! This is the core correctness invariant of the whole system (speculation
//! and its mitigation may only change *timing* and cache state, never
//! guest-visible results).

use dbt_platform::{Session, TranslationService};
use dbt_riscv::{ExitReason, Interpreter};
use dbt_workloads::{pointer_matmul, suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

fn reference_checksum(program: &dbt_riscv::Program) -> u64 {
    let mut interp = Interpreter::new(program);
    assert_eq!(interp.run(500_000_000).unwrap(), ExitReason::Ecall);
    interp.memory().load_u64(program.symbol("checksum").unwrap()).unwrap()
}

#[test]
fn every_workload_matches_the_reference_under_every_policy() {
    let mut workloads = suite(WorkloadSize::Mini);
    workloads.push(pointer_matmul(WorkloadSize::Mini));
    // Shared across every run: memoized translations must never change
    // architectural results, whatever policy produced them first.
    let service = TranslationService::new();
    for workload in workloads {
        let expected = reference_checksum(&workload.program);
        for policy in MitigationPolicy::ALL {
            let mut session = Session::builder()
                .program(&workload.program)
                .policy(policy)
                .service(&service)
                .build()
                .unwrap();
            let summary = session.run().unwrap();
            assert!(summary.halted, "{} under {policy} did not halt", workload.name);
            let got = session.load_symbol_u64("checksum").unwrap();
            assert_eq!(
                got, expected,
                "{} under {policy}: DBT result diverges from the reference",
                workload.name
            );
        }
    }
}

/// Minimal deterministic pseudo-random source (splitmix64), so the
/// randomized differential test needs no external dependency and replays
/// identically on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Random short straight-line-and-loop programs produce the same
/// architectural result on the DBT processor (any policy) and on the
/// reference interpreter.
#[test]
fn random_programs_execute_equivalently() {
    let mut rng = Rng(0x6b05_7265_6e74_u64);
    for case in 0..16 {
        let len = 4 + (rng.next() % 12) as usize;
        let seed_values: Vec<u64> = (0..len).map(|_| rng.next() % 1000).collect();
        let policy_index = (rng.next() as usize) % MitigationPolicy::ALL.len();
        check_random_program(case, &seed_values, policy_index);
    }
}

fn check_random_program(case: usize, seed_values: &[u64], policy_index: usize) {
    use dbt_riscv::{Assembler, Reg};
    let mut asm = Assembler::new();
    let data = asm.alloc_data_u64("data", seed_values);
    let out = asm.alloc_data("out", 8);
    let n = seed_values.len() as i64;
    let head = asm.new_label();
    let skip = asm.new_label();
    asm.li(Reg::S0, 0);
    asm.li(Reg::S1, 1);
    asm.la(Reg::S2, data);
    asm.li(Reg::S3, n);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S0, 3);
    asm.add(Reg::T0, Reg::S2, Reg::T0);
    asm.ld(Reg::T1, Reg::T0, 0);
    // Data-dependent branch plus a store, so both speculation mechanisms
    // have something to chew on.
    asm.andi(Reg::T2, Reg::T1, 1);
    asm.beqz(Reg::T2, skip);
    asm.mul(Reg::S1, Reg::S1, Reg::T1);
    asm.sd(Reg::S1, Reg::T0, 0);
    asm.bind(skip);
    asm.add(Reg::S1, Reg::S1, Reg::T1);
    asm.addi(Reg::S0, Reg::S0, 1);
    asm.blt(Reg::S0, Reg::S3, head);
    asm.la(Reg::T0, out);
    asm.sd(Reg::S1, Reg::T0, 0);
    asm.ecall();
    let program = asm.assemble().unwrap();

    let mut interp = Interpreter::new(&program);
    assert_eq!(interp.run(10_000_000).unwrap(), ExitReason::Ecall, "case {case}");
    let expected = interp.memory().load_u64(program.symbol("out").unwrap()).unwrap();

    let policy = MitigationPolicy::ALL[policy_index];
    let mut session = Session::builder().program(&program).policy(policy).build().unwrap();
    let summary = session.run().unwrap();
    assert!(summary.halted, "case {case} under {policy} did not halt");
    assert_eq!(
        session.load_symbol_u64("out").unwrap(),
        expected,
        "case {case} under {policy}: DBT result diverges from the reference"
    );
}
