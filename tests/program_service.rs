//! End-to-end tests of the program-as-data pipeline: the image codec, the
//! text-assembly frontend, and ad-hoc programs travelling over TCP into
//! the daemon's content-addressed `ProgramStore`.
//!
//! The acceptance contract: a program submitted over the wire — as text
//! assembly or as an image document — runs and analyzes **byte-identically**
//! to the same program built in-process, and a second identical submission
//! is answered from the store/run-memo instead of re-doing anything.

use dbt_lab::{
    adhoc_scenario, analyze_built, resolve_program, run_sweep, strip_stats, ExecOptions, LabDaemon,
    PlatformOverrides,
};
use dbt_riscv::{parse_asm, Program};
use dbt_serve::{
    serve, Client, JsonValue, ProgramSource, Request, Response, RunKnobs, ServerConfig,
};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;
use std::sync::Arc;

/// The committed `.s` twin of `spectre_v1::build(b"GhostBusters")`.
const GADGET_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/spectre_v1_gadget.s");

fn gadget_source() -> String {
    std::fs::read_to_string(GADGET_PATH).expect("committed gadget source")
}

/// Every program in the analyzable registry namespace.
fn registry_programs() -> Vec<(String, Program)> {
    dbt_workloads::SUITE_NAMES
        .iter()
        .copied()
        .chain(["ptr-matmul", "spectre-v1", "spectre-v4"])
        .map(|label| {
            let program = resolve_program(label, WorkloadSize::Mini)
                .expect("registry label resolves")
                .build()
                .expect("registry program builds");
            (label.to_string(), program)
        })
        .collect()
}

#[test]
fn image_codec_round_trips_the_whole_registry() {
    for (label, program) in registry_programs() {
        let image = program.to_image();
        let back = Program::from_image(&image)
            .unwrap_or_else(|e| panic!("{label}: image does not parse back: {e}"));
        assert_eq!(back, program, "{label}: image round trip must be lossless");
        assert_eq!(back.fingerprint(), program.fingerprint(), "{label}");
        assert_eq!(back.to_image(), image, "{label}: re-serialisation is byte-stable");
    }
}

#[test]
fn the_committed_gadget_reassembles_its_builder_twin_byte_identically() {
    let parsed = parse_asm(&gadget_source()).expect("committed gadget parses");
    let built = dbt_attacks::spectre_v1::build(b"GhostBusters").expect("PoC builds");
    assert_eq!(
        parsed, built,
        "the .s file must mirror the Rust builder's emission sequence exactly"
    );
    assert_eq!(parsed.fingerprint(), built.fingerprint());
    // Identical guest images too (belt and braces: Program::Eq already
    // covers code, data, bases, entry, memory size and symbols).
    let a = parsed.build_memory().expect("image builds");
    let b = built.build_memory().expect("image builds");
    assert_eq!(a.len(), b.len());
}

fn ok_body(response: Response) -> String {
    match response {
        Response::Ok { body, .. } => body,
        other => panic!("expected ok, got {other:?}"),
    }
}

fn upload(client: &mut Client, source: ProgramSource) -> (String, bool) {
    let body = ok_body(client.request(&Request::Upload { source }).expect("transport"));
    let stats = JsonValue::parse(&body).expect("upload body parses");
    let fingerprint = stats
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .expect("upload body carries the fingerprint")
        .to_string();
    let dedup = stats.get("dedup").and_then(JsonValue::as_bool).expect("dedup member");
    (fingerprint, dedup)
}

#[test]
fn uploaded_programs_run_and_analyze_byte_identically_to_in_process_builds() {
    let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
    let handle = serve("127.0.0.1:0", Arc::new(daemon), ServerConfig::default())
        .expect("ephemeral port must bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Upload the gadget as text assembly; its image form must land on the
    // same content address, and repeats must be dedup hits.
    let source = gadget_source();
    let program = parse_asm(&source).expect("gadget parses");
    let (fp, dedup) = upload(&mut client, ProgramSource::Asm(source.clone()));
    assert!(!dedup, "first upload stores the program");
    assert_eq!(fp, format!("fp:{:016x}", program.fingerprint()));
    let (fp_again, dedup) = upload(&mut client, ProgramSource::Asm(source));
    assert!(dedup, "identical source is a store dedup hit");
    assert_eq!(fp, fp_again);
    let (fp_image, dedup) = upload(&mut client, ProgramSource::Image(program.to_image()));
    assert!(dedup, "the image form of the same program shares the content address");
    assert_eq!(fp, fp_image);

    // `run` by fingerprint ref: byte-identical to the in-process run of
    // the same program under the same ad-hoc scenario.
    let request = Request::RunProgram {
        program: fp.clone(),
        policy: "selective".to_string(),
        knobs: RunKnobs::default(),
    };
    let remote = ok_body(client.request(&request).expect("transport"));
    let scenario = adhoc_scenario(
        &fp,
        Arc::new(program.clone()),
        MitigationPolicy::Selective,
        PlatformOverrides::default(),
        None,
    );
    let local = run_sweep(
        &scenario.name,
        std::slice::from_ref(&scenario),
        ExecOptions { threads: 1, verbose: false },
    );
    assert_eq!(
        strip_stats(&remote),
        strip_stats(&local.to_json()),
        "an uploaded program must run byte-identically to the in-process build"
    );
    assert!(remote.contains("\"status\": \"ok\""), "{remote}");

    // The repeat is answered from the run memo: same observables, zero
    // simulations.
    let repeat = ok_body(client.request(&request).expect("transport"));
    assert_eq!(strip_stats(&remote), strip_stats(&repeat));
    assert!(repeat.contains("\"simulations\": 0"), "warm repeats never simulate: {repeat}");

    // `analyze` by fingerprint ref: byte-identical to the local analysis
    // of the same program, and the verdict flags the leak.
    let remote =
        ok_body(client.request(&Request::Analyze { program: fp.clone() }).expect("transport"));
    let local = analyze_built(&fp, &program).expect("gadget analyzes").to_json();
    assert_eq!(remote, local, "analysis is pure; daemon and in-process agree to the byte");
    assert!(remote.contains("\"leak_free\": false"), "the gadget must be flagged: {remote}");

    // The daemon's stats surface the store counters.
    let stats = JsonValue::parse(&ok_body(client.request(&Request::Stats).expect("transport")))
        .expect("stats parse");
    let store = stats.get("lab").and_then(|lab| lab.get("store")).expect("lab.store");
    assert_eq!(store.get("uploads").and_then(JsonValue::as_u64), Some(3), "{stats}");
    assert_eq!(store.get("dedup_hits").and_then(JsonValue::as_u64), Some(2), "{stats}");

    ok_body(client.request(&Request::Shutdown).expect("transport"));
    handle.wait();
}

#[test]
fn bad_uploads_and_unknown_refs_answer_error_frames() {
    let daemon = LabDaemon::new(WorkloadSize::Mini);
    let handle = serve("127.0.0.1:0", Arc::new(daemon), ServerConfig::default())
        .expect("ephemeral port must bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let bad = client
        .request(&Request::Upload { source: ProgramSource::Asm("frobnicate a0".to_string()) })
        .expect("transport");
    assert!(
        matches!(&bad, Response::Error { error, .. } if error.contains("frobnicate")),
        "{bad:?}"
    );

    let missing = client
        .request(&Request::Analyze { program: "fp:0000000000000001".to_string() })
        .expect("transport");
    assert!(
        matches!(&missing, Response::Error { error, .. } if error.contains("upload")),
        "{missing:?}"
    );

    let bad_policy = client
        .request(&Request::RunProgram {
            program: "gemm".to_string(),
            policy: "warp-drive".to_string(),
            knobs: RunKnobs::default(),
        })
        .expect("transport");
    assert!(
        matches!(&bad_policy, Response::Error { error, .. } if error.contains("warp-drive")),
        "{bad_policy:?}"
    );

    handle.shutdown();
    handle.wait();
}
