//! End-to-end tests of the `dbt-router` fleet front door over real TCP
//! with real [`LabDaemon`] backends: routed answers are byte-identical to
//! asking one daemon directly, shard assignment is deterministic, uploads
//! resolve on every shard, and killing a backend mid-load loses no
//! requests.

use dbt_lab::{strip_stats, LabDaemon};
use dbt_router::{serve_router, RouterConfig, RouterHandle};
use dbt_serve::{
    drive, serve, Client, JsonValue, LoadOptions, ProgramSource, Request, Response, RunKnobs,
    ServerConfig, ServerHandle,
};
use dbt_workloads::WorkloadSize;
use std::sync::Arc;
use std::time::Duration;

/// `n` daemons on ephemeral ports behind a router with `config`.
fn fleet(n: usize, config: RouterConfig) -> (Vec<ServerHandle>, RouterHandle) {
    let daemons: Vec<ServerHandle> = (0..n)
        .map(|_| {
            serve(
                "127.0.0.1:0",
                Arc::new(LabDaemon::with_threads(WorkloadSize::Mini, 1)),
                ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() },
            )
            .expect("ephemeral port must bind")
        })
        .collect();
    let backends = daemons.iter().map(ServerHandle::addr).collect();
    let router = serve_router("127.0.0.1:0", backends, config).expect("router must bind");
    (daemons, router)
}

fn stop(daemons: Vec<ServerHandle>, router: RouterHandle) {
    router.shutdown();
    router.wait();
    for daemon in daemons {
        daemon.shutdown();
        daemon.wait();
    }
}

fn ok_body(response: Response) -> String {
    match response {
        Response::Ok { body, .. } => body,
        other => panic!("expected ok, got {other:?}"),
    }
}

/// The loadgen request mix (`lab loadgen`'s, minus nothing): scenario
/// runs across policies plus one full sweep.
fn request_mix() -> Vec<Request> {
    vec![
        Request::Run { scenario: "figure4/gemm/our-approach/default".to_string() },
        Request::Run { scenario: "figure4/gemm/selective/default".to_string() },
        Request::Run { scenario: "figure4/atax/fence/default".to_string() },
        Request::Run { scenario: "attack-table/spectre-v1/selective/default".to_string() },
        Request::Sweep { name: "ptr-matmul".to_string(), threads: 1 },
    ]
}

#[test]
fn a_three_backend_router_answers_byte_identical_to_one_daemon() {
    // The reference: every mix request asked of a single bare daemon.
    let reference_daemon = serve(
        "127.0.0.1:0",
        Arc::new(LabDaemon::with_threads(WorkloadSize::Mini, 1)),
        ServerConfig::default(),
    )
    .expect("ephemeral port must bind");
    let mut direct = Client::connect(reference_daemon.addr()).expect("connect");
    let reference: Vec<String> = request_mix()
        .iter()
        .map(|request| strip_stats(&ok_body(direct.request(request).expect("transport"))))
        .collect();
    reference_daemon.shutdown();
    reference_daemon.wait();

    let (daemons, router) = fleet(3, RouterConfig::default());
    let mut client = Client::connect(router.addr()).expect("connect");
    for (request, expected) in request_mix().iter().zip(&reference) {
        let routed = strip_stats(&ok_body(client.request(request).expect("transport")));
        assert_eq!(&routed, expected, "a routed answer must match the bare daemon byte for byte");
    }

    // Under concurrency the same holds (drive() cross-checks responses per
    // request), and the per-backend split is the deterministic ring
    // assignment: re-asking the whole mix moves every count by the same
    // per-backend delta.
    let outcome = drive(
        router.addr(),
        &request_mix(),
        LoadOptions { clients: 4, iterations: 2 },
        &|_, body| strip_stats(body),
    )
    .expect("loadgen through the router");
    assert_eq!(outcome.errors, 0, "no request may fail");
    assert_eq!(outcome.mismatches, 0, "routed responses must agree byte for byte");
    assert_eq!(outcome.ok + outcome.busy, outcome.requests);

    let forwarded_after_drive = forwarded(&mut client);
    for request in request_mix() {
        ok_body(client.request(&request).expect("transport"));
    }
    let forwarded_after_mix = forwarded(&mut client);
    let moved: Vec<u64> = forwarded_after_mix
        .iter()
        .zip(&forwarded_after_drive)
        // The stats scrape itself fans out one frame per backend.
        .map(|(now, before)| now - before - 1)
        .collect();
    assert_eq!(moved.iter().sum::<u64>(), request_mix().len() as u64, "{moved:?}");
    // Shard assignment is a pure function of the routing key, so one pass
    // of the mix distributes exactly like the 9 passes before the first
    // scrape (the serial zip pass plus 4 clients x 2 drive iterations).
    let per_pass: Vec<u64> = forwarded_after_drive
        .iter()
        .map(|count| (count - 1) / 9) // minus the first stats scrape
        .collect();
    assert_eq!(moved, per_pass, "the drive passes and the direct pass must shard identically");

    stop(daemons, router);
}

#[test]
fn uploads_through_the_router_resolve_on_every_shard() {
    let (daemons, router) = fleet(3, RouterConfig::default());
    let mut client = Client::connect(router.addr()).expect("connect");
    let source = "\
        .word table, 5, 6\n\
        la t0, table\n\
        ld a0, 0(t0)\n\
        ld a1, 8(t0)\n\
        mul a2, a0, a1\n\
        ecall\n";
    let body = ok_body(
        client
            .request(&Request::Upload { source: ProgramSource::Asm(source.to_string()) })
            .expect("transport"),
    );
    let fp = body
        .split("\"fp:")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("fingerprint in upload body");
    let fp = format!("fp:{fp}");

    // Replication means the ref resolves on *every* backend directly, not
    // just the shard the router would pick.
    for daemon in &daemons {
        let mut direct = Client::connect(daemon.addr()).expect("connect");
        let report = ok_body(
            direct
                .request(&Request::RunProgram {
                    program: fp.clone(),
                    policy: "selective".to_string(),
                    knobs: RunKnobs::default(),
                })
                .expect("transport"),
        );
        assert!(report.contains(&format!("adhoc/{fp}/selective")), "{report}");
    }
    stop(daemons, router);
}

#[test]
fn killing_a_backend_mid_load_loses_no_requests() {
    let (mut daemons, router) = fleet(
        2,
        RouterConfig {
            retry_backoff: Duration::from_millis(2),
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    );
    let addr = router.addr();
    let victim = daemons.remove(0);

    // Kill one backend while four clients hammer the router. The router
    // retries refused connections and shutdown refusals on the surviving
    // backend, so the clients see only `ok` (or honest `busy`) — never a
    // transport error or a divergent body.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        victim.shutdown();
        victim.wait();
    });
    let outcome =
        drive(addr, &request_mix(), LoadOptions { clients: 4, iterations: 6 }, &|_, body| {
            strip_stats(body)
        })
        .expect("loadgen through the router");
    killer.join().expect("killer thread");

    assert_eq!(outcome.errors, 0, "failover must hide the dead backend: {outcome:?}");
    assert_eq!(outcome.mismatches, 0, "failover answers must stay byte-identical");
    assert_eq!(outcome.ok + outcome.busy, outcome.requests, "every request answers: {outcome:?}");

    // The survivor still answers through the router afterwards.
    let mut client = Client::connect(addr).expect("connect");
    let health = ok_body(client.request(&Request::Health).expect("transport"));
    assert!(health.contains("\"up\": 1"), "{health}");

    stop(daemons, router);
}

/// The router's per-backend forwarded counters, via the fleet stats body.
fn forwarded(client: &mut Client) -> Vec<u64> {
    let stats = JsonValue::parse(&ok_body(client.request(&Request::Stats).expect("transport")))
        .expect("stats body parses");
    stats
        .get("router")
        .and_then(|router| router.get("forwarded"))
        .and_then(JsonValue::as_array)
        .expect("router.forwarded")
        .iter()
        .map(|count| count.as_u64().expect("forwarded count"))
        .collect()
}
