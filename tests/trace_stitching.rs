//! Deterministic distributed tracing, end to end over real TCP: with
//! scripted span clocks injected into both daemon and router, a routed
//! `run` yields a stitched span tree that is **byte-stable** across runs,
//! and whose structure (stage labels, parent edges, ordering) is
//! identical to tracing the same request against a bare daemon — modulo
//! the router's own relay spans and the reparenting they cause.
//!
//! This is the observability face of the repo's determinism invariant:
//! wall-clock readings exist only inside span records, and once the clock
//! is scripted nothing else in the pipeline introduces nondeterminism.

use dbt_lab::LabDaemon;
use dbt_obs::TraceClock;
use dbt_router::{serve_router_with_clock, RouterConfig, RouterHandle};
use dbt_serve::{serve_with_clock, Client, JsonValue, Request, Response, ServerConfig};
use dbt_workloads::WorkloadSize;
use std::sync::Arc;
use std::time::Duration;

const SCENARIO: &str = "figure4/gemm/selective/default";
const TRACE_ID: &str = "det-1";

fn scripted_daemon() -> dbt_serve::ServerHandle {
    serve_with_clock(
        "127.0.0.1:0",
        Arc::new(LabDaemon::with_threads(WorkloadSize::Mini, 1)),
        ServerConfig { workers: 1, queue_depth: 16, ..ServerConfig::default() },
        TraceClock::scripted(10),
    )
    .expect("ephemeral port must bind")
}

fn scripted_router(backend: std::net::SocketAddr) -> RouterHandle {
    serve_router_with_clock(
        "127.0.0.1:0",
        vec![backend],
        // Keep the prober quiet so no probe spans interleave with the
        // request's clock readings.
        RouterConfig { probe_interval: Duration::from_secs(3600), ..RouterConfig::default() },
        TraceClock::scripted(10),
    )
    .expect("router must bind")
}

/// Runs [`SCENARIO`] under [`TRACE_ID`] against `addr` and fetches the
/// resulting span tree from the same endpoint.
fn run_and_fetch_tree(addr: std::net::SocketAddr) -> String {
    let mut client = Client::connect(addr).expect("connect");
    let (reply, echoed) = client
        .request_traced(&Request::Run { scenario: SCENARIO.to_string() }, Some(TRACE_ID))
        .expect("transport");
    assert!(matches!(reply, Response::Ok { .. }), "{reply:?}");
    assert_eq!(echoed.as_deref(), Some(TRACE_ID));
    match client.request(&Request::Trace { target: TRACE_ID.to_string() }).expect("transport") {
        Response::Ok { body, .. } => body,
        other => panic!("trace fetch failed: {other:?}"),
    }
}

/// One routed run under fully scripted clocks; returns the stitched tree.
fn routed_tree() -> String {
    let daemon = scripted_daemon();
    let router = scripted_router(daemon.addr());
    let tree = run_and_fetch_tree(router.addr());
    router.shutdown();
    router.wait();
    daemon.shutdown();
    daemon.wait();
    tree
}

/// The same run traced against a bare scripted daemon.
fn direct_tree() -> String {
    let daemon = scripted_daemon();
    let tree = run_and_fetch_tree(daemon.addr());
    daemon.shutdown();
    daemon.wait();
    tree
}

/// Collapses a tree body to its structure — `(span_id, parent, stage)`
/// rows in recording order, the wall-clock members dropped.
fn structure(tree: &str) -> Vec<(String, Option<String>, String)> {
    let value = JsonValue::parse(tree).expect("tree body parses");
    value
        .get("spans")
        .and_then(JsonValue::as_array)
        .expect("tree body has spans")
        .iter()
        .map(|span| {
            (
                span.get("span_id").and_then(JsonValue::as_str).expect("span_id").to_string(),
                span.get("parent").and_then(JsonValue::as_str).map(str::to_string),
                span.get("stage").and_then(JsonValue::as_str).expect("stage").to_string(),
            )
        })
        .collect()
}

#[test]
fn stitched_trees_are_byte_stable_and_match_direct_tracing() {
    // Byte-stability: two completely independent fleets, same scripted
    // clocks, same request — the stitched tree must not differ by a
    // single byte (span ids, parents, ordering AND scripted timings).
    let first = routed_tree();
    let second = routed_tree();
    assert_eq!(first, second, "scripted stitched trees must be byte-stable");

    // The stitched tree covers the whole request path.
    for needle in [
        "\"span_id\": \"r:request\", \"parent\": null",
        "\"span_id\": \"r:relay\", \"parent\": \"r:request\"",
        "\"span_id\": \"d:request\", \"parent\": \"r:relay\"",
        "\"span_id\": \"d:decode\"",
        "\"span_id\": \"d:queue-wait\"",
        "\"stage\": \"simulate\"",
        "\"span_id\": \"d:encode\"",
    ] {
        assert!(first.contains(needle), "stitched tree lacks {needle}: {first}");
    }

    // Router vs. direct: drop the router's own spans and undo the one
    // reparenting stitching performs (the daemon root hangs under the
    // relay span) — what remains must be identical, row for row.
    let routed_backend_rows: Vec<(String, Option<String>, String)> = structure(&first)
        .into_iter()
        .filter(|(span_id, _, _)| span_id.starts_with("d:"))
        .map(|(span_id, parent, stage)| {
            let parent = if parent.as_deref() == Some("r:relay") { None } else { parent };
            (span_id, parent, stage)
        })
        .collect();
    let direct_rows = structure(&direct_tree());
    assert_eq!(
        routed_backend_rows, direct_rows,
        "the backend's half of a stitched trace must equal direct tracing"
    );
}
