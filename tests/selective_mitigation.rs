//! End-to-end properties of the `selective-vs-blanket` sweep — the
//! acceptance criteria of the `spectaint` extension, asserted at the mini
//! problem size (the same configuration that produces the committed
//! `artifacts/BENCH_selective-vs-blanket.json`):
//!
//! 1. the `selective` policy blocks both Spectre variants (attack rows
//!    recover nothing);
//! 2. its geo-mean slowdown on the leak-free workloads is strictly below
//!    the blanket fine-grained mitigation's;
//! 3. the sweep's JSON is byte-stable across ≥4-thread runs.

use dbt_lab::{
    geometric_mean, run_sweep, ExecOptions, JobOutcome, ProgramSpec, Registry, ScenarioKind,
};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;

fn short_secret_sweep() -> dbt_lab::Sweep {
    let registry = Registry::standard(WorkloadSize::Mini);
    let mut sweep = registry.find("selective-vs-blanket").unwrap().clone();
    // A short secret keeps the attack rows fast in debug builds; the
    // committed artifact uses the full default secret.
    for program in &mut sweep.programs {
        if let ProgramSpec::Attack { secret, .. } = &mut program.spec {
            *secret = b"GB".to_vec();
        }
    }
    sweep
}

#[test]
fn selective_blocks_both_attacks_and_beats_fine_grained_on_leak_free_code() {
    let sweep = short_secret_sweep();
    let report = run_sweep(&sweep.name, &sweep.expand(), ExecOptions::default());

    // --- attack rows: unprotected leaks everything, every protective
    // policy (selective included) recovers nothing.
    let mut attack_rows = 0;
    for result in &report.results {
        let JobOutcome::Attack(metrics) = &result.outcome else { continue };
        attack_rows += 1;
        if result.scenario.policy == MitigationPolicy::Unprotected {
            assert_eq!(
                metrics.correct_bytes(),
                metrics.secret.len(),
                "{} must leak the full secret",
                result.scenario.name
            );
        } else {
            assert_eq!(metrics.correct_bytes(), 0, "{} must stop the leak", result.scenario.name);
        }
    }
    assert_eq!(attack_rows, 2 * MitigationPolicy::ALL.len());

    // --- perf rows: on the leak-free workloads, selective is never more
    // expensive than fine-grained and strictly cheaper in geo-mean.
    let table = report.slowdown_table();
    let selective_index =
        table.policies.iter().position(|p| *p == MitigationPolicy::Selective).unwrap();
    let fine_index =
        table.policies.iter().position(|p| *p == MitigationPolicy::FineGrained).unwrap();
    let mut selective_samples = Vec::new();
    let mut fine_samples = Vec::new();
    for row in &table.rows {
        let selective = row.slowdown[selective_index];
        let fine = row.slowdown[fine_index];
        assert!(selective.is_finite() && fine.is_finite(), "{}: missing measurement", row.name);
        assert!(
            selective <= fine + 1e-9,
            "{}: selective ({selective:.4}) must not exceed fine-grained ({fine:.4})",
            row.name
        );
        selective_samples.push(selective);
        fine_samples.push(fine);
    }
    let selective_geo = geometric_mean(&selective_samples);
    let fine_geo = geometric_mean(&fine_samples);
    assert!(
        selective_geo < fine_geo,
        "selective geo-mean ({selective_geo:.4}) must be strictly below \
         fine-grained's ({fine_geo:.4})"
    );

    // The gap comes from the leak-free-but-blanket-flagged kernels.
    for name in ["histogram", "stream-lut"] {
        let row = table.rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            (row.slowdown[selective_index] - 1.0).abs() < 1e-9,
            "{name}: selective must be free on a leak-free kernel"
        );
        assert!(
            row.slowdown[fine_index] > 1.0,
            "{name}: the blanket mitigation must pay here ({})",
            row.slowdown[fine_index]
        );
    }
}

#[test]
fn selective_sweep_is_byte_stable_across_thread_counts() {
    let sweep = short_secret_sweep();
    let scenarios = sweep.expand();
    let four = run_sweep(&sweep.name, &scenarios, ExecOptions { threads: 4, verbose: false });
    let again = run_sweep(&sweep.name, &scenarios, ExecOptions { threads: 4, verbose: false });
    assert_eq!(four.to_json(), again.to_json(), "same thread count, same bytes");
    let serial = run_sweep(&sweep.name, &scenarios, ExecOptions { threads: 1, verbose: false });
    assert_eq!(four.to_json(), serial.to_json(), "thread count must not leak into the JSON");
}

/// The committed artifact must embody the acceptance criteria: selective
/// blocks both attacks and beats fine-grained's geo-mean on the leak-free
/// workloads. Parsing is intentionally naive — the artifact's format is the
/// stable hand-rolled JSON of `dbt-lab`.
#[test]
fn committed_selective_artifact_embodies_the_acceptance_criteria() {
    // The sweep emitter writes `BENCH_<sweep name>.json`; the historic
    // short `BENCH_selective.json` alias has been collapsed into this one
    // canonical artifact.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../artifacts/BENCH_selective-vs-blanket.json"
    ))
    .expect("artifacts/BENCH_selective-vs-blanket.json is committed");

    let mut selective = Vec::new();
    let mut fine = Vec::new();
    let mut attack_ok = 0;
    for job in text.split("\n    {").skip(1) {
        let field = |key: &str| -> Option<&str> {
            let tail = job.split(&format!("\"{key}\": ")).nth(1)?;
            Some(tail.split([',', '\n']).next().unwrap().trim_matches('"'))
        };
        let policy = field("policy").unwrap();
        match field("kind").unwrap() {
            "attack" => {
                let correct: usize = field("correct_bytes").unwrap().parse().unwrap();
                let total: usize = field("secret_bytes").unwrap().parse().unwrap();
                if policy == "unsafe" {
                    assert_eq!(correct, total, "the committed unsafe rows must leak");
                } else {
                    assert_eq!(correct, 0, "a committed {policy} attack row leaks");
                    if policy == "selective" {
                        attack_ok += 1;
                    }
                }
            }
            "perf" => {
                let slowdown: f64 = field("slowdown").unwrap().parse().unwrap();
                match policy {
                    "selective" => selective.push(slowdown),
                    "our-approach" => fine.push(slowdown),
                    _ => {}
                }
            }
            other => panic!("unexpected scenario kind {other}"),
        }
    }
    assert_eq!(attack_ok, 2, "both attacks must appear under selective");
    assert!(!selective.is_empty() && selective.len() == fine.len());
    let (s, f) = (geometric_mean(&selective), geometric_mean(&fine));
    assert!(s < f, "committed artifact: selective geo-mean {s:.4} !< fine-grained {f:.4}");
}

#[test]
fn analyze_cli_surface_is_wired() {
    // The library entry point behind `lab analyze` — the CLI is a thin
    // argument parser over this.
    let report = dbt_lab::analyze_program("stream-lut", WorkloadSize::Mini).unwrap();
    assert!(!report.blocks.is_empty());
    assert_eq!(report.flagged_blocks(), 0);
    assert!(report.to_json().starts_with("{\n  \"schema\": \"dbt-lab/analyze/v1\""));

    let flagged = dbt_lab::analyze_program("spectre-v4", WorkloadSize::Mini).unwrap();
    assert!(flagged.flagged_blocks() > 0);
    assert!(flagged.to_dot().contains("digraph"));
}

#[test]
fn scenario_kind_mix_is_visible_in_the_report() {
    let sweep = short_secret_sweep();
    let report = run_sweep(&sweep.name, &sweep.expand(), ExecOptions::default());
    let perf = report.results.iter().filter(|r| r.scenario.kind == ScenarioKind::Perf).count();
    let attack = report.results.iter().filter(|r| r.scenario.kind == ScenarioKind::Attack).count();
    assert!(perf > 0 && attack > 0, "the sweep must mix both kinds");
    assert_eq!(perf + attack, report.results.len());
}
