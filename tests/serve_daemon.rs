//! End-to-end tests of the `dbt-serve` daemon over real TCP with the real
//! [`LabDaemon`] backend: concurrent clients get byte-identical reports,
//! the run-summary memo counts deterministically, and a full queue answers
//! `busy` instead of hanging.

use dbt_lab::{run_sweep, strip_stats, ExecOptions, LabDaemon, Registry};
use dbt_serve::{serve, Client, JsonValue, Request, Response, ServerConfig, ServerHandle};
use dbt_workloads::WorkloadSize;
use std::sync::Arc;

fn start(daemon: LabDaemon, config: ServerConfig) -> ServerHandle {
    serve("127.0.0.1:0", Arc::new(daemon), config).expect("ephemeral port must bind")
}

fn ok_body(response: Response) -> String {
    match response {
        Response::Ok { body, .. } => body,
        other => panic!("expected ok, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_get_reports_byte_identical_to_a_serial_sweep() {
    let handle = start(
        LabDaemon::with_threads(WorkloadSize::Mini, 1),
        ServerConfig { workers: 3, queue_depth: 16, ..ServerConfig::default() },
    );
    let addr = handle.addr();

    // The serial reference: what `lab sweep ptr-matmul` prints locally.
    let registry = Registry::standard(WorkloadSize::Mini);
    let sweep = registry.find("ptr-matmul").expect("registered sweep");
    let serial =
        run_sweep(&sweep.name, &sweep.expand(), ExecOptions { threads: 1, verbose: false });
    let reference = strip_stats(&serial.to_json());

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let request = Request::Sweep { name: "ptr-matmul".to_string(), threads: 1 };
                    ok_body(client.request(&request).expect("transport"))
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    for body in &bodies {
        assert_eq!(
            strip_stats(body),
            reference,
            "every client's cycle data must match the serial lab sweep byte for byte"
        );
    }

    // The memo really was shared: four identical sweeps can't all miss.
    let mut client = Client::connect(addr).expect("connect");
    let stats = JsonValue::parse(&ok_body(client.request(&Request::Stats).expect("transport")))
        .expect("stats body parses");
    let hits = stats
        .get("lab")
        .and_then(|lab| lab.get("run_memo"))
        .and_then(|memo| memo.get("hits"))
        .and_then(JsonValue::as_u64)
        .expect("lab.run_memo.hits");
    assert!(hits > 0, "repeated identical sweeps must hit the run memo: {stats}");

    ok_body(client.request(&Request::Shutdown).expect("transport"));
    handle.wait();
}

#[test]
fn run_memo_counters_are_deterministic_for_a_fixed_job_list() {
    let handle = start(
        LabDaemon::with_threads(WorkloadSize::Mini, 1),
        ServerConfig { workers: 2, queue_depth: 8, ..ServerConfig::default() },
    );
    let mut client = Client::connect(handle.addr()).expect("connect");

    // One perf scenario = two simulations (baseline + policy run), so the
    // k-th repetition contributes exactly 2 hits after the first.
    let request = Request::Run { scenario: "ptr-matmul/gemm (flat)/fence/default".to_string() };
    let first = ok_body(client.request(&request).expect("transport"));
    for _ in 0..4 {
        let repeat = ok_body(client.request(&request).expect("transport"));
        assert_eq!(strip_stats(&repeat), strip_stats(&first));
    }

    let stats = JsonValue::parse(&ok_body(client.request(&Request::Stats).expect("transport")))
        .expect("stats body parses");
    let memo = stats.get("lab").and_then(|lab| lab.get("run_memo")).expect("lab.run_memo");
    assert_eq!(memo.get("misses").and_then(JsonValue::as_u64), Some(2), "{stats}");
    assert_eq!(memo.get("hits").and_then(JsonValue::as_u64), Some(8), "{stats}");
    assert_eq!(memo.get("entries").and_then(JsonValue::as_u64), Some(2), "{stats}");

    ok_body(client.request(&Request::Shutdown).expect("transport"));
    handle.wait();
}

#[test]
fn full_queue_answers_busy_instead_of_hanging() {
    // Depth 0 means admission control rejects every heavy job up front —
    // the deterministic way to pin the backpressure path end-to-end (the
    // worker-occupancy variant lives in dbt-serve's own tests).
    let handle = start(
        LabDaemon::with_threads(WorkloadSize::Mini, 1),
        ServerConfig { workers: 1, queue_depth: 0, ..ServerConfig::default() },
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    let request = Request::Sweep { name: "ptr-matmul".to_string(), threads: 1 };
    for _ in 0..3 {
        let response = client.request(&request).expect("transport");
        assert_eq!(response, Response::Busy { op: "sweep".to_string() });
    }
    // Cheap requests bypass the queue and still answer.
    let health = ok_body(client.request(&Request::Health).expect("transport"));
    assert!(health.contains("\"queue_depth\": 0"), "{health}");

    handle.shutdown();
    handle.wait();
}

#[test]
fn analyze_through_the_daemon_matches_the_local_cli_output() {
    let handle = start(LabDaemon::new(WorkloadSize::Mini), ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = ok_body(
        client.request(&Request::Analyze { program: "histogram".to_string() }).expect("transport"),
    );
    let local = dbt_lab::analyze_program("histogram", WorkloadSize::Mini)
        .expect("histogram analyzes")
        .to_json();
    assert_eq!(body, local, "analyze is pure, so daemon and CLI agree to the byte");

    let error = client
        .request(&Request::Run { scenario: "no/such/scenario".to_string() })
        .expect("transport");
    assert!(matches!(error, Response::Error { .. }), "{error:?}");

    handle.shutdown();
    handle.wait();
}
