//! Dependency graph over an IR block, with speculation metadata.
//!
//! Edges encode "must not execute before" constraints. Some constraints can
//! be *relaxed* by the DBT engine — that relaxation is precisely the
//! speculation the paper attacks and mitigates:
//!
//! * a relaxable [`DepKind::Memory`] edge (store → later load whose address
//!   cannot be statically disambiguated) corresponds to Memory Conflict
//!   Buffer speculation (Spectre v4 analogue);
//! * a relaxable [`DepKind::Control`] edge (side exit → later load or
//!   computation) corresponds to trace-scheduling speculation over a biased
//!   branch (Spectre v1 analogue).
//!
//! The scheduler honours every edge whose `relaxable` flag is `false` and is
//! free to ignore relaxable edges (generating the appropriate run-time check
//! for ignored memory edges). The GhostBusters mitigation *hardens* selected
//! relaxable edges before scheduling.

use crate::block::IrBlock;
use crate::inst::IrOp;
use crate::value::{InstId, Operand};

/// The kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True data dependency (value flows from producer to consumer).
    Data,
    /// Memory ordering between a store (or flush) and a later access that
    /// may alias it.
    Memory,
    /// Control dependency from a side exit to a later instruction.
    Control,
    /// Program-order chain between architecturally committing instructions.
    Order,
}

/// A dependency edge `from → to`: `to` must not execute before `from`
/// unless the edge is relaxable and the engine chooses to speculate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source instruction (the one that must come first).
    pub from: InstId,
    /// Destination instruction (the dependent one).
    pub to: InstId,
    /// Kind of constraint.
    pub kind: DepKind,
    /// Whether the DBT engine may ignore the edge (speculate).
    pub relaxable: bool,
}

/// Which speculation mechanisms the DBT engine has enabled.
///
/// Turning both off is the paper's naive "No speculation" countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DfgOptions {
    /// Allow loads and computations to be hoisted above biased conditional
    /// branches (side exits) during trace scheduling.
    pub branch_speculation: bool,
    /// Allow loads to be hoisted above stores they may alias, backed by the
    /// Memory Conflict Buffer at run time.
    pub memory_speculation: bool,
}

impl DfgOptions {
    /// Both speculation mechanisms enabled (the unsafe baseline).
    pub fn aggressive() -> DfgOptions {
        DfgOptions { branch_speculation: true, memory_speculation: true }
    }

    /// Both speculation mechanisms disabled (the paper's naive mitigation).
    pub fn no_speculation() -> DfgOptions {
        DfgOptions { branch_speculation: false, memory_speculation: false }
    }
}

impl Default for DfgOptions {
    fn default() -> Self {
        DfgOptions::aggressive()
    }
}

/// Result of the static alias check between two memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alias {
    /// The accesses provably touch disjoint bytes.
    Disjoint,
    /// The accesses provably overlap.
    Same,
    /// Nothing can be proven at translation time.
    Unknown,
}

fn access_range(op: &IrOp) -> Option<(Operand, i64, u8)> {
    match op {
        IrOp::Load { width, base, offset } => Some((*base, *offset, width.bytes)),
        IrOp::Store { width, base, offset, .. } => Some((*base, *offset, width.bytes)),
        IrOp::CacheFlush { base, offset } => Some((*base, *offset, 1)),
        _ => None,
    }
}

fn alias(a: &IrOp, b: &IrOp) -> Alias {
    let (base_a, off_a, len_a) = match access_range(a) {
        Some(x) => x,
        None => return Alias::Unknown,
    };
    let (base_b, off_b, len_b) = match access_range(b) {
        Some(x) => x,
        None => return Alias::Unknown,
    };
    // Same symbolic base: compare offsets.
    let comparable = match (base_a, base_b) {
        (Operand::Imm(x), Operand::Imm(y)) => Some((x + off_a, y + off_b)),
        _ if base_a == base_b => Some((off_a, off_b)),
        _ => None,
    };
    match comparable {
        Some((start_a, start_b)) => {
            let end_a = start_a + len_a as i64;
            let end_b = start_b + len_b as i64;
            if end_a <= start_b || end_b <= start_a {
                Alias::Disjoint
            } else {
                Alias::Same
            }
        }
        None => Alias::Unknown,
    }
}

/// The dependency graph of one IR block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    node_count: usize,
    edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Builds the dependency graph of `block` under the given speculation
    /// options.
    ///
    /// The construction rules are:
    ///
    /// * **Data** edges from each value operand's definition (never
    ///   relaxable);
    /// * **Memory** edges from every store/flush to every later load, store
    ///   or flush that may alias it. Store→load edges are relaxable when
    ///   `memory_speculation` is enabled and the pair cannot be statically
    ///   disambiguated; provably-disjoint pairs get no edge at all; all
    ///   other combinations are hard;
    /// * **Control** edges from every side exit to every later
    ///   non-committing instruction, relaxable when `branch_speculation` is
    ///   enabled;
    /// * **Order** edges chaining committing instructions (stores, register
    ///   commits, exits, flushes, fences, halts) and cycle-counter reads in
    ///   program order (never relaxable).
    pub fn build(block: &IrBlock, options: DfgOptions) -> DepGraph {
        let insts = block.insts();
        let mut edges = Vec::new();

        // Data dependencies.
        for inst in insts {
            for operand in inst.op.operands() {
                if let Some(def) = operand.def() {
                    edges.push(DepEdge {
                        from: def,
                        to: inst.id,
                        kind: DepKind::Data,
                        relaxable: false,
                    });
                }
            }
        }

        // Memory dependencies.
        for (i, earlier) in insts.iter().enumerate() {
            let earlier_writes =
                earlier.op.is_store() || matches!(earlier.op, IrOp::CacheFlush { .. });
            let earlier_reads = earlier.op.is_load();
            if !earlier_writes && !earlier_reads {
                continue;
            }
            for later in &insts[i + 1..] {
                let later_writes =
                    later.op.is_store() || matches!(later.op, IrOp::CacheFlush { .. });
                let later_reads = later.op.is_load();
                if !later_writes && !later_reads {
                    continue;
                }
                // read-after-read never needs ordering.
                if earlier_reads && !earlier_writes && later_reads && !later_writes {
                    continue;
                }
                match alias(&earlier.op, &later.op) {
                    Alias::Disjoint => {}
                    Alias::Same => {
                        edges.push(DepEdge {
                            from: earlier.id,
                            to: later.id,
                            kind: DepKind::Memory,
                            relaxable: false,
                        });
                    }
                    Alias::Unknown => {
                        // Only a true store → later load pair is a speculation
                        // candidate (cache flushes are never bypassed).
                        let relaxable = options.memory_speculation
                            && earlier.op.is_store()
                            && later_reads
                            && !later_writes;
                        edges.push(DepEdge {
                            from: earlier.id,
                            to: later.id,
                            kind: DepKind::Memory,
                            relaxable,
                        });
                    }
                }
            }
        }

        // Control dependencies from side exits.
        for (i, exit) in insts.iter().enumerate() {
            if !exit.op.is_side_exit() {
                continue;
            }
            for later in &insts[i + 1..] {
                if later.op.is_committing() || matches!(later.op, IrOp::RdCycle) {
                    // Ordering with committing instructions is handled by the
                    // Order chain, which is never relaxable.
                    continue;
                }
                edges.push(DepEdge {
                    from: exit.id,
                    to: later.id,
                    kind: DepKind::Control,
                    relaxable: options.branch_speculation,
                });
            }
        }

        // Cycle-counter reads serialise with memory accesses, as the CSR
        // read does on the real in-order core (the pipeline drains before
        // the counter is sampled). Without these edges the scheduler could
        // move a timed load outside its measurement window.
        for (i, inst) in insts.iter().enumerate() {
            if !matches!(inst.op, IrOp::RdCycle) {
                continue;
            }
            for earlier in &insts[..i] {
                if earlier.op.is_memory() {
                    edges.push(DepEdge {
                        from: earlier.id,
                        to: inst.id,
                        kind: DepKind::Order,
                        relaxable: false,
                    });
                }
            }
            for later in &insts[i + 1..] {
                if later.op.is_memory() {
                    edges.push(DepEdge {
                        from: inst.id,
                        to: later.id,
                        kind: DepKind::Order,
                        relaxable: false,
                    });
                }
            }
        }

        // Program-order chain over committing instructions (and rdcycle).
        let mut previous: Option<InstId> = None;
        for inst in insts {
            if inst.op.is_committing() || matches!(inst.op, IrOp::RdCycle) {
                if let Some(prev) = previous {
                    edges.push(DepEdge {
                        from: prev,
                        to: inst.id,
                        kind: DepKind::Order,
                        relaxable: false,
                    });
                }
                previous = Some(inst.id);
            }
        }

        DepGraph { node_count: insts.len(), edges }
    }

    /// Number of instructions the graph spans.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges into `to`.
    pub fn preds(&self, to: InstId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.to == to)
    }

    /// Edges out of `from`.
    pub fn succs(&self, from: InstId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == from)
    }

    /// Relaxable edges into `to` (the speculation opportunities affecting it).
    pub fn relaxable_preds(&self, to: InstId) -> impl Iterator<Item = &DepEdge> {
        self.preds(to).filter(|e| e.relaxable)
    }

    /// Returns `true` if `id` has at least one relaxable incoming edge, i.e.
    /// the engine may execute it speculatively.
    pub fn is_speculation_candidate(&self, id: InstId) -> bool {
        self.relaxable_preds(id).next().is_some()
    }

    /// Hardens (makes non-relaxable) every relaxable edge into `to` coming
    /// from `from`. Returns the number of edges hardened.
    ///
    /// This is the primitive the GhostBusters mitigation uses to re-insert
    /// a control dependency between a risky speculative access and the
    /// instruction that causes the speculation.
    pub fn harden(&mut self, from: InstId, to: InstId) -> usize {
        let mut count = 0;
        for edge in &mut self.edges {
            if edge.from == from && edge.to == to && edge.relaxable {
                edge.relaxable = false;
                count += 1;
            }
        }
        count
    }

    /// Hardens every relaxable edge into `to`. Returns the number hardened.
    pub fn harden_all_preds(&mut self, to: InstId) -> usize {
        let mut count = 0;
        for edge in &mut self.edges {
            if edge.to == to && edge.relaxable {
                edge.relaxable = false;
                count += 1;
            }
        }
        count
    }

    /// Adds an explicit hard control edge (used by the fence mitigation).
    pub fn add_hard_edge(&mut self, from: InstId, to: InstId, kind: DepKind) {
        self.edges.push(DepEdge { from, to, kind, relaxable: false });
    }

    /// Number of relaxable edges remaining.
    pub fn relaxable_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.relaxable).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::inst::MemWidth;
    use dbt_riscv::inst::AluOp;
    use dbt_riscv::{BranchCond, Reg};

    /// Builds the Spectre-v4-like block of the paper's Figure 3:
    ///
    /// ```text
    /// store addrBuf[k] <- ...         (unknown k)
    /// v_a   = load addrBuf[0]
    /// v_b   = load buffer[v_a]
    /// v_c   = load probe[v_b << 7]
    /// halt
    /// ```
    fn figure3_block() -> IrBlock {
        let mut b = IrBlock::new(0x1000, BlockKind::Superblock { merged_blocks: 2 });
        let addr_buf = b.push(IrOp::Const(0x2000), 0x1000, 0);
        let unknown_slot = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(addr_buf), b: Operand::LiveIn(Reg::A3) },
            0x1004,
            1,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::LiveIn(Reg::A4),
                base: Operand::Value(unknown_slot),
                offset: 0,
            },
            0x1008,
            2,
        );
        let a = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr_buf), offset: 0 },
            0x100c,
            3,
        );
        let buffer = b.push(IrOp::Const(0x3000), 0x1010, 4);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::Value(a) },
            0x1014,
            5,
        );
        let bval = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            0x1018,
            6,
        );
        let shifted = b.push(
            IrOp::Alu { op: AluOp::Sll, a: Operand::Value(bval), b: Operand::Imm(7) },
            0x101c,
            7,
        );
        let probe = b.push(IrOp::Const(0x8000), 0x1020, 8);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(shifted) },
            0x1024,
            9,
        );
        b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            0x1028,
            10,
        );
        b.push(IrOp::Halt, 0x102c, 11);
        b
    }

    #[test]
    fn figure3_loads_are_relaxable_under_memory_speculation() {
        let block = figure3_block();
        assert_eq!(block.validate(), Ok(()));
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let loads = block.loads();
        assert_eq!(loads.len(), 3);
        for load in &loads {
            assert!(graph.is_speculation_candidate(*load), "{load} should be relaxable");
        }
        // The relaxable edges all come from the store.
        let store = block.stores()[0];
        for load in &loads {
            assert!(graph
                .relaxable_preds(*load)
                .any(|e| e.from == store && e.kind == DepKind::Memory));
        }
    }

    #[test]
    fn figure3_without_memory_speculation_has_hard_edges() {
        let block = figure3_block();
        let graph = DepGraph::build(&block, DfgOptions::no_speculation());
        assert_eq!(graph.relaxable_edge_count(), 0);
        let store = block.stores()[0];
        for load in block.loads() {
            assert!(graph
                .preds(load)
                .any(|e| e.from == store && e.kind == DepKind::Memory && !e.relaxable));
        }
    }

    #[test]
    fn harden_removes_relaxability() {
        let block = figure3_block();
        let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
        let store = block.stores()[0];
        let last_load = *block.loads().last().unwrap();
        assert!(graph.is_speculation_candidate(last_load));
        assert_eq!(graph.harden(store, last_load), 1);
        assert!(graph.preds(last_load).all(|e| e.from != store || !e.relaxable));
    }

    #[test]
    fn control_edges_from_side_exits() {
        let mut b = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        let size = b.push(IrOp::Const(16), 0, 0);
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Geu,
                a: Operand::LiveIn(Reg::A0),
                b: Operand::Value(size),
                target: 0x9000,
            },
            4,
            1,
        );
        let buffer = b.push(IrOp::Const(0x3000), 8, 2);
        let addr = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::LiveIn(Reg::A0) },
            8,
            2,
        );
        let load = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr), offset: 0 },
            12,
            3,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(load) }, 12, 3);
        b.push(IrOp::Jump { target: 0x10 }, 16, 4);
        assert_eq!(b.validate(), Ok(()));

        let exit = b.side_exits()[0];
        let graph = DepGraph::build(&b, DfgOptions::aggressive());
        assert!(graph
            .preds(load)
            .any(|e| e.from == exit && e.kind == DepKind::Control && e.relaxable));

        let graph =
            DepGraph::build(&b, DfgOptions { branch_speculation: false, memory_speculation: true });
        assert!(graph
            .preds(load)
            .any(|e| e.from == exit && e.kind == DepKind::Control && !e.relaxable));

        // The register commit is protected by the order chain, not by a
        // relaxable control edge.
        let commit = InstId(5);
        assert!(DepGraph::build(&b, DfgOptions::aggressive()).preds(commit).all(|e| !e.relaxable));
    }

    #[test]
    fn provably_disjoint_accesses_get_no_memory_edge() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let base = b.push(IrOp::Const(0x1000), 0, 0);
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::Value(base),
                offset: 0,
            },
            0,
            1,
        );
        let load = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(base), offset: 8 },
            4,
            2,
        );
        b.push(IrOp::WriteReg { reg: Reg::A0, value: Operand::Value(load) }, 4, 2);
        b.push(IrOp::Halt, 8, 3);
        let graph = DepGraph::build(&b, DfgOptions::no_speculation());
        assert!(graph.preds(load).all(|e| e.kind != DepKind::Memory));
    }

    #[test]
    fn provably_overlapping_accesses_get_hard_memory_edge() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let base = b.push(IrOp::Const(0x1000), 0, 0);
        let store = b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::Value(base),
                offset: 0,
            },
            0,
            1,
        );
        let load = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(base), offset: 0 },
            4,
            2,
        );
        b.push(IrOp::WriteReg { reg: Reg::A0, value: Operand::Value(load) }, 4, 2);
        b.push(IrOp::Halt, 8, 3);
        let graph = DepGraph::build(&b, DfgOptions::aggressive());
        assert!(graph
            .preds(load)
            .any(|e| e.from == store && e.kind == DepKind::Memory && !e.relaxable));
    }

    #[test]
    fn order_chain_links_committing_instructions() {
        let block = figure3_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        // store (id 2) and halt (last) are chained.
        let store = block.stores()[0];
        let halt = InstId(block.len() - 1);
        assert!(graph.preds(halt).any(|e| e.from == store && e.kind == DepKind::Order));
    }

    #[test]
    fn stores_to_unknown_addresses_stay_ordered() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let s1 = b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            0,
            0,
        );
        let s2 = b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(2),
                base: Operand::LiveIn(Reg::A1),
                offset: 0,
            },
            4,
            1,
        );
        b.push(IrOp::Halt, 8, 2);
        let graph = DepGraph::build(&b, DfgOptions::aggressive());
        // store→store must never be relaxable.
        assert!(graph.preds(s2).any(|e| e.from == s1 && !e.relaxable));
    }
}
