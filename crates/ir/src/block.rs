//! IR blocks: the unit of translation, optimization and — per the paper —
//! the *scope of speculation*.

use crate::inst::{IrInst, IrOp};
use crate::value::{InstId, Operand};
use std::fmt;

/// How the block was formed by the DBT engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A single guest basic block, translated one-to-one.
    Basic,
    /// A superblock/trace built by merging `merged_blocks` guest basic
    /// blocks along the profiled hot path (conditional branches along the
    /// path become side exits).
    Superblock {
        /// Number of guest basic blocks merged into the trace.
        merged_blocks: usize,
    },
}

/// How control leaves the block when no side exit fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Continue at a known guest address.
    Jump(u64),
    /// Continue at an address computed at run time (`jalr`).
    Indirect,
    /// The guest program terminates (`ecall`).
    Halt,
}

/// A block of IR instructions in original guest order.
///
/// Blocks are built by the DBT front end
/// and consumed by the GhostBusters analysis and the VLIW scheduler. The
/// instruction list is append-only; instruction ids are stable indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrBlock {
    entry_pc: u64,
    kind: BlockKind,
    insts: Vec<IrInst>,
}

impl IrBlock {
    /// Creates an empty block starting at guest address `entry_pc`.
    pub fn new(entry_pc: u64, kind: BlockKind) -> IrBlock {
        IrBlock { entry_pc, kind, insts: Vec::new() }
    }

    /// Guest address of the first instruction of the block.
    pub fn entry_pc(&self) -> u64 {
        self.entry_pc
    }

    /// How the block was formed.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Appends an instruction and returns its id.
    pub fn push(&mut self, op: IrOp, guest_pc: u64, original_seq: usize) -> InstId {
        let id = InstId(self.insts.len());
        self.insts.push(IrInst::new(id, op, guest_pc, original_seq));
        id
    }

    /// The instructions, in original guest order.
    pub fn insts(&self) -> &[IrInst] {
        &self.insts
    }

    /// Looks up one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this block.
    pub fn inst(&self, id: InstId) -> &IrInst {
        &self.insts[id.0]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Ids of all side exits, in original order.
    pub fn side_exits(&self) -> Vec<InstId> {
        self.insts.iter().filter(|i| i.op.is_side_exit()).map(|i| i.id).collect()
    }

    /// Ids of all loads, in original order.
    pub fn loads(&self) -> Vec<InstId> {
        self.insts.iter().filter(|i| i.op.is_load()).map(|i| i.id).collect()
    }

    /// Ids of all stores, in original order.
    pub fn stores(&self) -> Vec<InstId> {
        self.insts.iter().filter(|i| i.op.is_store()).map(|i| i.id).collect()
    }

    /// The block's fall-through exit, determined by its terminator.
    ///
    /// Returns `None` if the block is not (yet) terminated.
    pub fn exit(&self) -> Option<BlockExit> {
        match self.insts.last().map(|i| &i.op) {
            Some(IrOp::Jump { target }) => Some(BlockExit::Jump(*target)),
            Some(IrOp::JumpIndirect { .. }) => Some(BlockExit::Indirect),
            Some(IrOp::Halt) => Some(BlockExit::Halt),
            _ => None,
        }
    }

    /// Checks structural invariants:
    ///
    /// * every [`Operand::Value`] refers to an earlier, value-producing
    ///   instruction;
    /// * only the last instruction is a terminator, and the block ends with
    ///   one;
    /// * `original_seq` is non-decreasing.
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts.is_empty() {
            return Err("block is empty".to_string());
        }
        let mut prev_seq = 0usize;
        for (index, inst) in self.insts.iter().enumerate() {
            if inst.id.0 != index {
                return Err(format!("instruction at index {index} has id {}", inst.id));
            }
            if inst.original_seq < prev_seq {
                return Err(format!("original_seq decreases at {}", inst.id));
            }
            prev_seq = inst.original_seq;
            for operand in inst.op.operands() {
                if let Operand::Value(def) = operand {
                    if def.0 >= index {
                        return Err(format!("{} uses {} before it is defined", inst.id, def));
                    }
                    if !self.insts[def.0].op.produces_value() {
                        return Err(format!("{} uses non-value {}", inst.id, def));
                    }
                }
            }
            let is_last = index + 1 == self.insts.len();
            if inst.op.is_terminator() && !is_last {
                return Err(format!("terminator {} is not the last instruction", inst.id));
            }
            if is_last && !inst.op.is_terminator() {
                return Err("block does not end with a terminator".to_string());
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "block @{:#x} ({:?}):", self.entry_pc, self.kind)?;
        for inst in &self.insts {
            writeln!(f, "  [{:3}] {inst}", inst.original_seq)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MemWidth;
    use dbt_riscv::inst::AluOp;
    use dbt_riscv::Reg;

    fn sample_block() -> IrBlock {
        let mut b = IrBlock::new(0x1000, BlockKind::Basic);
        let c = b.push(IrOp::Const(8), 0x1000, 0);
        let a = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::LiveIn(Reg::A0), b: Operand::Value(c) },
            0x1004,
            1,
        );
        let l = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(a), offset: 0 },
            0x1008,
            2,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(l) }, 0x1008, 2);
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Value(l),
                base: Operand::LiveIn(Reg::A2),
                offset: 16,
            },
            0x100c,
            3,
        );
        b.push(IrOp::Jump { target: 0x1010 }, 0x100c, 4);
        b
    }

    #[test]
    fn sample_block_is_valid() {
        let b = sample_block();
        assert_eq!(b.validate(), Ok(()));
        assert_eq!(b.exit(), Some(BlockExit::Jump(0x1010)));
        assert_eq!(b.loads().len(), 1);
        assert_eq!(b.stores().len(), 1);
        assert!(b.side_exits().is_empty());
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn use_before_def_is_rejected() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(InstId(5)), b: Operand::Imm(0) },
            0,
            0,
        );
        b.push(IrOp::Halt, 0, 1);
        assert!(b.validate().is_err());
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        b.push(IrOp::Const(1), 0, 0);
        assert!(b.validate().is_err());
        assert_eq!(b.exit(), None);
    }

    #[test]
    fn use_of_non_value_is_rejected() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let s = b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(0),
                base: Operand::Imm(64),
                offset: 0,
            },
            0,
            0,
        );
        b.push(IrOp::WriteReg { reg: Reg::A0, value: Operand::Value(s) }, 0, 1);
        b.push(IrOp::Halt, 0, 2);
        assert!(b.validate().is_err());
    }

    #[test]
    fn empty_block_is_invalid() {
        let b = IrBlock::new(0, BlockKind::Basic);
        assert!(b.validate().is_err());
    }

    #[test]
    fn display_contains_instructions() {
        let text = sample_block().to_string();
        assert!(text.contains("load.8"));
        assert!(text.contains("jump"));
    }
}
