//! Graphviz rendering of IR blocks and their dependency graphs.
//!
//! Useful for debugging the scheduler and for reproducing the data-flow
//! figures of the paper (Figure 3 shows exactly such a graph, with the
//! poisoned edges highlighted).

use crate::block::IrBlock;
use crate::dfg::{DepGraph, DepKind};
use crate::value::InstId;
use std::fmt::Write as _;

/// Optional taint coloring applied on top of the structural rendering.
///
/// The overlay is deliberately analysis-agnostic: it names instruction ids,
/// not analysis types, so any client (the `spectaint` verdicts being the
/// intended one) can project its result onto the graph without this crate
/// depending on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintOverlay {
    /// Taint sources: filled gold.
    pub sources: Vec<InstId>,
    /// Values carrying taint: filled orange.
    pub tainted: Vec<InstId>,
    /// Transmitting accesses (confirmed gadgets): filled red, bold border.
    pub transmitters: Vec<InstId>,
}

impl TaintOverlay {
    /// Returns `true` if the overlay colors nothing.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty() && self.tainted.is_empty() && self.transmitters.is_empty()
    }
}

/// Renders `block` and `graph` as a Graphviz `digraph`.
///
/// Data edges are solid, memory edges dashed, control edges dotted and
/// order edges grey; relaxable (speculation) edges are drawn in blue.
///
/// # Example
///
/// ```
/// use dbt_ir::{IrBlock, BlockKind, IrOp, DepGraph, DfgOptions, dot};
/// let mut block = IrBlock::new(0, BlockKind::Basic);
/// block.push(IrOp::Const(1), 0, 0);
/// block.push(IrOp::Halt, 4, 1);
/// let graph = DepGraph::build(&block, DfgOptions::aggressive());
/// let text = dot::render(&block, &graph);
/// assert!(text.starts_with("digraph"));
/// ```
pub fn render(block: &IrBlock, graph: &DepGraph) -> String {
    render_with_overlay(block, graph, &TaintOverlay::default())
}

/// [`render`], coloring the nodes named by `overlay`: taint sources gold,
/// tainted values orange, transmitters (gadgets) red with a bold border.
/// Relaxable edges into a transmitter — the edges a selective mitigation
/// hardens — are drawn bold red.
pub fn render_with_overlay(block: &IrBlock, graph: &DepGraph, overlay: &TaintOverlay) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph ir_block {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for inst in block.insts() {
        let label = format!("{inst}").replace('"', "'");
        // Transmitter wins over source wins over mere taint.
        let decoration = if overlay.transmitters.contains(&inst.id) {
            ", style=filled, fillcolor=\"#e57373\", penwidth=2"
        } else if overlay.sources.contains(&inst.id) {
            ", style=filled, fillcolor=\"#ffd54f\""
        } else if overlay.tainted.contains(&inst.id) {
            ", style=filled, fillcolor=\"#ffb74d\""
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"{}];", inst.id.index(), label, decoration);
    }
    for edge in graph.edges() {
        let (style, color) = match edge.kind {
            DepKind::Data => ("solid", "black"),
            DepKind::Memory => ("dashed", "darkred"),
            DepKind::Control => ("dotted", "darkgreen"),
            DepKind::Order => ("solid", "grey"),
        };
        let color = if edge.relaxable { "blue" } else { color };
        let feeds_transmitter = edge.relaxable && overlay.transmitters.contains(&edge.to);
        let color = if feeds_transmitter { "red" } else { color };
        let weight = if feeds_transmitter { ", penwidth=2" } else { "" };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={}, color={}{}];",
            edge.from.index(),
            edge.to.index(),
            style,
            color,
            weight
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::inst::{IrOp, MemWidth};
    use crate::value::Operand;
    use crate::DfgOptions;

    #[test]
    fn render_produces_nodes_and_edges() {
        let mut block = IrBlock::new(0, BlockKind::Basic);
        let c = block.push(IrOp::Const(0x100), 0, 0);
        let l = block.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            4,
            1,
        );
        block.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Value(l),
                base: Operand::Value(c),
                offset: 8,
            },
            8,
            2,
        );
        block.push(IrOp::Halt, 12, 3);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let text = render(&block, &graph);
        assert!(text.contains("digraph"));
        assert!(text.contains("n0 -> n1"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn overlay_colors_nodes_and_gadget_edges() {
        use crate::value::InstId;
        let mut block = IrBlock::new(0, BlockKind::Basic);
        let c = block.push(IrOp::Const(0x100), 0, 0);
        block.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::LiveIn(dbt_riscv::Reg::A0),
                offset: 0,
            },
            4,
            1,
        );
        let l = block.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            8,
            2,
        );
        block.push(IrOp::Halt, 12, 3);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());

        let plain = render_with_overlay(&block, &graph, &TaintOverlay::default());
        assert!(!plain.contains("fillcolor"));

        let overlay =
            TaintOverlay { sources: vec![l], tainted: vec![InstId(0)], transmitters: vec![l] };
        assert!(!overlay.is_empty());
        let colored = render_with_overlay(&block, &graph, &overlay);
        // The transmitter coloring wins over the source coloring on v2.
        assert!(colored.contains(
            "n2 [label=\"v2 = load.8 v0+0\", style=filled, fillcolor=\"#e57373\", penwidth=2]"
        ));
        assert!(colored.contains("fillcolor=\"#ffb74d\""), "tainted const is orange");
        // The relaxable store→load edge feeding the transmitter is bold red.
        assert!(colored.contains("n1 -> n2 [style=dashed, color=red, penwidth=2]"));
    }
}
