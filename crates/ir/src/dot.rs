//! Graphviz rendering of IR blocks and their dependency graphs.
//!
//! Useful for debugging the scheduler and for reproducing the data-flow
//! figures of the paper (Figure 3 shows exactly such a graph, with the
//! poisoned edges highlighted).

use crate::block::IrBlock;
use crate::dfg::{DepGraph, DepKind};
use std::fmt::Write as _;

/// Renders `block` and `graph` as a Graphviz `digraph`.
///
/// Data edges are solid, memory edges dashed, control edges dotted and
/// order edges grey; relaxable (speculation) edges are drawn in blue.
///
/// # Example
///
/// ```
/// use dbt_ir::{IrBlock, BlockKind, IrOp, DepGraph, DfgOptions, dot};
/// let mut block = IrBlock::new(0, BlockKind::Basic);
/// block.push(IrOp::Const(1), 0, 0);
/// block.push(IrOp::Halt, 4, 1);
/// let graph = DepGraph::build(&block, DfgOptions::aggressive());
/// let text = dot::render(&block, &graph);
/// assert!(text.starts_with("digraph"));
/// ```
pub fn render(block: &IrBlock, graph: &DepGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph ir_block {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for inst in block.insts() {
        let label = format!("{inst}").replace('"', "'");
        let _ = writeln!(out, "  n{} [label=\"{}\"];", inst.id.index(), label);
    }
    for edge in graph.edges() {
        let (style, color) = match edge.kind {
            DepKind::Data => ("solid", "black"),
            DepKind::Memory => ("dashed", "darkred"),
            DepKind::Control => ("dotted", "darkgreen"),
            DepKind::Order => ("solid", "grey"),
        };
        let color = if edge.relaxable { "blue" } else { color };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={}, color={}];",
            edge.from.index(),
            edge.to.index(),
            style,
            color
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::inst::{IrOp, MemWidth};
    use crate::value::Operand;
    use crate::DfgOptions;

    #[test]
    fn render_produces_nodes_and_edges() {
        let mut block = IrBlock::new(0, BlockKind::Basic);
        let c = block.push(IrOp::Const(0x100), 0, 0);
        let l = block.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            4,
            1,
        );
        block.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Value(l),
                base: Operand::Value(c),
                offset: 8,
            },
            8,
            2,
        );
        block.push(IrOp::Halt, 12, 3);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let text = render(&block, &graph);
        assert!(text.contains("digraph"));
        assert!(text.contains("n0 -> n1"));
        assert!(text.trim_end().ends_with('}'));
    }
}
