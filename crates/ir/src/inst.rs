//! IR instructions.

use crate::value::{InstId, Operand};
use dbt_riscv::inst::AluOp;
use dbt_riscv::{BranchCond, Reg};
use std::fmt;

/// Width of an IR memory access, with sign-extension information for loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemWidth {
    /// Number of bytes (1, 2, 4 or 8).
    pub bytes: u8,
    /// Whether a load of this width sign-extends to 64 bits.
    pub sign_extend: bool,
}

impl MemWidth {
    /// 1-byte access, zero-extended.
    pub const BYTE_U: MemWidth = MemWidth { bytes: 1, sign_extend: false };
    /// 8-byte access.
    pub const DOUBLE: MemWidth = MemWidth { bytes: 8, sign_extend: false };

    /// Builds a width descriptor.
    pub fn new(bytes: u8, sign_extend: bool) -> MemWidth {
        MemWidth { bytes, sign_extend }
    }
}

/// Operation performed by an IR instruction.
///
/// Each instruction produces at most one value, named by its [`InstId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrOp {
    /// Materialise a 64-bit constant.
    Const(i64),
    /// Two-operand ALU operation (same semantics as the guest [`AluOp`]).
    Alu { op: AluOp, a: Operand, b: Operand },
    /// Load `width` bytes from `base + offset`.
    Load { width: MemWidth, base: Operand, offset: i64 },
    /// Store `value` (`width` bytes) to `base + offset`.
    Store { width: MemWidth, value: Operand, base: Operand, offset: i64 },
    /// Commit a value to a guest architectural register.
    WriteReg { reg: Reg, value: Operand },
    /// Conditional side exit: if `cond(a, b)` holds, leave the block towards
    /// guest address `target`. Otherwise fall through to the next IR
    /// instruction.
    SideExit { cond: BranchCond, a: Operand, b: Operand, target: u64 },
    /// Unconditional end of the block, continuing at guest address `target`.
    Jump { target: u64 },
    /// Unconditional end of the block, continuing at the guest address held
    /// in `target` (translated from `jalr`).
    JumpIndirect { target: Operand },
    /// End of the whole program (guest `ecall`).
    Halt,
    /// Read the cycle CSR.
    RdCycle,
    /// Flush the data-cache line containing `base + offset`.
    CacheFlush { base: Operand, offset: i64 },
    /// Memory/speculation fence.
    Fence,
}

impl IrOp {
    /// Returns `true` if the operation produces a value.
    pub fn produces_value(&self) -> bool {
        matches!(self, IrOp::Const(_) | IrOp::Alu { .. } | IrOp::Load { .. } | IrOp::RdCycle)
    }

    /// Returns `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, IrOp::Load { .. })
    }

    /// Returns `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, IrOp::Store { .. })
    }

    /// Returns `true` for memory accesses (loads, stores, cache flushes).
    pub fn is_memory(&self) -> bool {
        matches!(self, IrOp::Load { .. } | IrOp::Store { .. } | IrOp::CacheFlush { .. })
    }

    /// Returns `true` for operations with architecturally visible effects
    /// that must stay in program order (stores, register commits, exits,
    /// halts, flushes, fences).
    pub fn is_committing(&self) -> bool {
        matches!(
            self,
            IrOp::Store { .. }
                | IrOp::WriteReg { .. }
                | IrOp::SideExit { .. }
                | IrOp::Jump { .. }
                | IrOp::JumpIndirect { .. }
                | IrOp::Halt
                | IrOp::CacheFlush { .. }
                | IrOp::Fence
        )
    }

    /// Returns `true` for side exits.
    pub fn is_side_exit(&self) -> bool {
        matches!(self, IrOp::SideExit { .. })
    }

    /// Returns `true` if this operation ends the block unconditionally.
    pub fn is_terminator(&self) -> bool {
        matches!(self, IrOp::Jump { .. } | IrOp::JumpIndirect { .. } | IrOp::Halt)
    }

    /// The operands read by this operation.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            IrOp::Const(_) | IrOp::RdCycle | IrOp::Fence | IrOp::Halt | IrOp::Jump { .. } => vec![],
            IrOp::JumpIndirect { target } => vec![*target],
            IrOp::Alu { a, b, .. } => vec![*a, *b],
            IrOp::Load { base, .. } => vec![*base],
            IrOp::Store { value, base, .. } => vec![*value, *base],
            IrOp::WriteReg { value, .. } => vec![*value],
            IrOp::SideExit { a, b, .. } => vec![*a, *b],
            IrOp::CacheFlush { base, .. } => vec![*base],
        }
    }

    /// Address operand of a memory operation (`Load`, `Store`, `CacheFlush`).
    pub fn address_base(&self) -> Option<Operand> {
        match self {
            IrOp::Load { base, .. } | IrOp::Store { base, .. } | IrOp::CacheFlush { base, .. } => {
                Some(*base)
            }
            _ => None,
        }
    }
}

/// An IR instruction: an operation plus its position in the original guest
/// instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrInst {
    /// Identifier (index) of this instruction in its block.
    pub id: InstId,
    /// The operation.
    pub op: IrOp,
    /// Guest PC of the instruction this IR op was translated from.
    pub guest_pc: u64,
    /// Position in the original (sequential) guest order. Several IR ops
    /// translated from the same guest instruction share the same sequence
    /// number.
    pub original_seq: usize,
}

impl IrInst {
    /// Creates an instruction.
    pub fn new(id: InstId, op: IrOp, guest_pc: u64, original_seq: usize) -> IrInst {
        IrInst { id, op, guest_pc, original_seq }
    }
}

impl fmt::Display for IrInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let id = self.id;
        match &self.op {
            IrOp::Const(v) => write!(f, "{id} = const {v:#x}"),
            IrOp::Alu { op, a, b } => write!(f, "{id} = {} {a}, {b}", op.mnemonic()),
            IrOp::Load { width, base, offset } => {
                write!(f, "{id} = load.{} {base}+{offset}", width.bytes)
            }
            IrOp::Store { width, value, base, offset } => {
                write!(f, "store.{} {value} -> {base}+{offset}", width.bytes)
            }
            IrOp::WriteReg { reg, value } => write!(f, "commit {reg} <- {value}"),
            IrOp::SideExit { cond, a, b, target } => {
                write!(f, "exit.{} {a}, {b} -> {target:#x}", cond.mnemonic())
            }
            IrOp::Jump { target } => write!(f, "jump -> {target:#x}"),
            IrOp::JumpIndirect { target } => write!(f, "jump -> [{target}]"),
            IrOp::Halt => write!(f, "halt"),
            IrOp::RdCycle => write!(f, "{id} = rdcycle"),
            IrOp::CacheFlush { base, offset } => write!(f, "cflush {base}+{offset}"),
            IrOp::Fence => write!(f, "fence"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_ops() {
        let load = IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Imm(0), offset: 0 };
        assert!(load.is_load());
        assert!(load.produces_value());
        assert!(!load.is_committing());

        let store = IrOp::Store {
            width: MemWidth::DOUBLE,
            value: Operand::Imm(1),
            base: Operand::Imm(0),
            offset: 0,
        };
        assert!(store.is_store());
        assert!(store.is_committing());
        assert!(!store.produces_value());

        assert!(IrOp::Halt.is_terminator());
        assert!(IrOp::Jump { target: 0 }.is_terminator());
        assert!(IrOp::SideExit {
            cond: BranchCond::Eq,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
            target: 0
        }
        .is_side_exit());
    }

    #[test]
    fn operands_are_enumerated() {
        let op = IrOp::Store {
            width: MemWidth::DOUBLE,
            value: Operand::Value(InstId(1)),
            base: Operand::LiveIn(Reg::A0),
            offset: 8,
        };
        assert_eq!(op.operands().len(), 2);
        assert_eq!(op.address_base(), Some(Operand::LiveIn(Reg::A0)));
        assert_eq!(IrOp::Halt.operands(), vec![]);
        assert_eq!(IrOp::Halt.address_base(), None);
    }

    #[test]
    fn display_is_readable() {
        let inst = IrInst::new(
            InstId(4),
            IrOp::Alu { op: AluOp::Add, a: Operand::LiveIn(Reg::A0), b: Operand::Imm(3) },
            0x1000,
            2,
        );
        assert_eq!(inst.to_string(), "v4 = add in:a0, 3");
    }
}
