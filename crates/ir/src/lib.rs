//! Intermediate representation of the Dynamic Binary Translation engine.
//!
//! The DBT engine translates guest (RISC-V) basic blocks and superblocks
//! into a small, block-scoped IR before scheduling them onto the VLIW
//! back-end. This crate defines that IR and — crucially for the paper being
//! reproduced — the **dependency graph** over it, including which
//! dependencies the engine is allowed to *relax* (speculate on):
//!
//! * control dependencies from a side exit (conditional branch) to the
//!   loads that follow it — relaxing them is the trace-scheduling
//!   speculation behind the Spectre v1 analogue;
//! * memory dependencies from a store to the loads that follow it —
//!   relaxing them is the Memory-Conflict-Buffer speculation behind the
//!   Spectre v4 analogue.
//!
//! The GhostBusters countermeasure (crate `ghostbusters`) operates purely on
//! this representation: it inspects the relaxable edges, runs its poisoning
//! analysis, and turns dangerous relaxable edges back into hard ones before
//! the scheduler sees them.
//!
//! No speculation ever crosses an [`IrBlock`] boundary, mirroring the paper:
//! temporary values die at the end of the block, so the analysis is local.

pub mod block;
pub mod dfg;
pub mod dot;
pub mod inst;
pub mod value;

pub use block::{BlockExit, BlockKind, IrBlock};
pub use dfg::{DepEdge, DepGraph, DepKind, DfgOptions};
pub use dot::TaintOverlay;
pub use inst::{IrInst, IrOp, MemWidth};
pub use value::{InstId, Operand};
