//! IR values and operands.

use dbt_riscv::Reg;
use std::fmt;

/// Identifier of an IR instruction inside its block.
///
/// The instruction at index `i` in [`IrBlock::insts`](crate::IrBlock::insts)
/// has `InstId(i)`; value-producing instructions define exactly one value,
/// which is named by the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub usize);

impl InstId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An operand of an IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The value produced by another instruction in the same block.
    Value(InstId),
    /// The value of a guest architectural register at block entry
    /// (a live-in). Live-ins are never redefined inside a block: once a
    /// guest register is written, later uses refer to the producing
    /// [`Operand::Value`].
    LiveIn(Reg),
    /// An immediate constant.
    Imm(i64),
}

impl Operand {
    /// The defining instruction, if the operand is a block-local value.
    pub fn def(self) -> Option<InstId> {
        match self {
            Operand::Value(id) => Some(id),
            _ => None,
        }
    }

    /// Returns `true` for immediate operands.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(id) => write!(f, "{id}"),
            Operand::LiveIn(r) => write!(f, "in:{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<InstId> for Operand {
    fn from(id: InstId) -> Self {
        Operand::Value(id)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_def_only_for_values() {
        assert_eq!(Operand::Value(InstId(3)).def(), Some(InstId(3)));
        assert_eq!(Operand::LiveIn(Reg::A0).def(), None);
        assert_eq!(Operand::Imm(5).def(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::Value(InstId(2)).to_string(), "v2");
        assert_eq!(Operand::LiveIn(Reg::A0).to_string(), "in:a0");
        assert_eq!(Operand::Imm(-7).to_string(), "-7");
    }

    #[test]
    fn conversions() {
        let o: Operand = InstId(1).into();
        assert_eq!(o, Operand::Value(InstId(1)));
        let o: Operand = 42i64.into();
        assert!(o.is_imm());
    }
}
