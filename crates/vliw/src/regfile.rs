//! Architectural guest register state held by the VLIW core.

use dbt_riscv::Reg;

/// The guest-visible architectural state: the 32 integer registers and the
/// program counter.
///
/// Physical (hidden) registers are *not* part of this state — they are
/// block-local scratch inside the core and die at block boundaries, which is
/// why the paper's analysis can stay block-local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; Reg::COUNT],
    pc: u64,
}

impl ArchState {
    /// Creates a zeroed architectural state with the given entry PC.
    pub fn new(entry_pc: u64) -> ArchState {
        ArchState { regs: [0; Reg::COUNT], pc: entry_pc }
    }

    /// Reads a register (`x0` always reads zero).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index() as usize]
    }

    /// Writes a register (`x0` writes are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Updates the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// All registers as a slice, indexed by architectural number.
    pub fn regs(&self) -> &[u64; Reg::COUNT] {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_to_zero() {
        let mut s = ArchState::new(0x100);
        s.set_reg(Reg::ZERO, 42);
        assert_eq!(s.reg(Reg::ZERO), 0);
        s.set_reg(Reg::A0, 42);
        assert_eq!(s.reg(Reg::A0), 42);
    }

    #[test]
    fn pc_tracks_updates() {
        let mut s = ArchState::new(0x100);
        assert_eq!(s.pc(), 0x100);
        s.set_pc(0x200);
        assert_eq!(s.pc(), 0x200);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = ArchState::new(0);
        s.set_reg(Reg::A1, 7);
        let snapshot = s.clone();
        s.set_reg(Reg::A1, 9);
        assert_ne!(s, snapshot);
        s = snapshot;
        assert_eq!(s.reg(Reg::A1), 7);
    }
}
