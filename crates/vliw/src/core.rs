//! The in-order VLIW core.
//!
//! The core executes [`TranslatedBlock`]s bundle by bundle. Timing follows a
//! simple scoreboarded in-order model:
//!
//! * one bundle issues per cycle, but a bundle whose operands are not ready
//!   (typically because they come from an outstanding load) stalls until
//!   they are;
//! * load results become available after the data-cache latency (hit or
//!   miss);
//! * `rdcycle` waits for all outstanding memory accesses, like the
//!   serialising CSR read of the real core.
//!
//! Speculation support is limited to the two mechanisms the paper
//! describes: results of operations hoisted above a side exit live in
//! physical (hidden) registers and are dropped when the exit is taken, and
//! speculative loads are checked by the [`MemoryConflictBuffer`]; a conflict
//! rolls the block back and re-executes its sequential recovery code.
//! In both cases the data cache keeps whatever lines the misspeculated
//! accesses fetched — the micro-architectural trace the attacks exploit.

use crate::isa::{AccessWidth, Op, Operand, TranslatedBlock};
use crate::mcb::MemoryConflictBuffer;
use crate::regfile::ArchState;
use crate::stats::CoreStats;
use dbt_cache::{CacheConfig, DataCache};
use dbt_obs::{Phase, Profiler};
use dbt_riscv::inst::AluOp;
use dbt_riscv::GuestMemory;
#[cfg(test)]
use dbt_riscv::Reg;
use std::fmt;

/// Configuration of the VLIW core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Maximum operations per bundle (checked when executing).
    pub issue_width: usize,
    /// Capacity of the Memory Conflict Buffer.
    pub mcb_capacity: usize,
    /// Fixed penalty, in cycles, charged when a memory conflict forces a
    /// rollback (pipeline flush + recovery dispatch).
    pub rollback_penalty: u64,
    /// Data-cache configuration.
    pub cache: CacheConfig,
}

impl CoreConfig {
    /// A 4-wide core with a 16-entry MCB and the default cache.
    pub fn new() -> CoreConfig {
        CoreConfig {
            issue_width: 4,
            mcb_capacity: 16,
            rollback_penalty: 24,
            cache: CacheConfig::default(),
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::new()
    }
}

/// Why executing a block failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A non-speculative memory access touched an address outside guest
    /// memory.
    MemFault {
        /// Faulting guest address.
        addr: u64,
        /// Size of the access.
        bytes: u8,
    },
    /// The block ran out of bundles without reaching a terminator.
    MissingTerminator {
        /// Entry PC of the offending block.
        entry_pc: u64,
    },
    /// A bundle exceeds the configured issue width.
    IssueWidthExceeded {
        /// Entry PC of the offending block.
        entry_pc: u64,
        /// Number of slots in the offending bundle.
        slots: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MemFault { addr, bytes } => {
                write!(f, "memory fault: {bytes}-byte access at {addr:#x}")
            }
            CoreError::MissingTerminator { entry_pc } => {
                write!(f, "translated block at {entry_pc:#x} has no terminator")
            }
            CoreError::IssueWidthExceeded { entry_pc, slots } => {
                write!(f, "bundle with {slots} slots in block at {entry_pc:#x} exceeds issue width")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Result of executing one translated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOutcome {
    /// Guest address to continue at, or `None` if the program halted.
    pub next_pc: Option<u64>,
    /// Cycles spent in the block (including any rollback and recovery).
    pub cycles: u64,
    /// Whether a Memory Conflict Buffer rollback occurred.
    pub rolled_back: bool,
}

/// The in-order VLIW core with its data cache, MCB and architectural state.
#[derive(Debug, Clone)]
pub struct VliwCore {
    config: CoreConfig,
    arch: ArchState,
    dcache: DataCache,
    mcb: MemoryConflictBuffer,
    cycles: u64,
    stats: CoreStats,
    profiler: Profiler,
}

fn alu_latency(op: AluOp) -> u64 {
    match op {
        AluOp::Mul | AluOp::Mulh | AluOp::Mulw => 3,
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
        _ => 1,
    }
}

/// Folds one operand's readiness into the bundle's stall deadlines:
/// memory-produced operands raise the memory deadline (`t_mem`, charged
/// to the execute phase), everything else raises the scoreboard deadline
/// (`t_alu`, charged to the issue phase).
fn wait_operand(
    ready: &[u64],
    from_mem: &[bool],
    operand: Operand,
    t_alu: &mut u64,
    t_mem: &mut u64,
) {
    if let Operand::Phys(p) = operand {
        let i = p.index();
        let deadline = if from_mem[i] { t_mem } else { t_alu };
        *deadline = (*deadline).max(ready[i]);
    }
}

fn sign_extend_load(raw: u64, width: AccessWidth) -> u64 {
    if width.sign_extend {
        let bits = width.bytes as u32 * 8;
        (((raw << (64 - bits)) as i64) >> (64 - bits)) as u64
    } else {
        raw
    }
}

impl VliwCore {
    /// Creates a core with zeroed architectural state and a cold cache.
    pub fn new(config: CoreConfig, entry_pc: u64) -> VliwCore {
        VliwCore {
            config,
            arch: ArchState::new(entry_pc),
            dcache: DataCache::new(config.cache),
            mcb: MemoryConflictBuffer::new(config.mcb_capacity),
            cycles: 0,
            stats: CoreStats::new(),
            profiler: Profiler::new(),
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Architectural state (registers + PC).
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Mutable architectural state (used by the platform to seed arguments).
    pub fn arch_mut(&mut self) -> &mut ArchState {
        &mut self.arch
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The deterministic cycle-domain profiler: per-phase cycle
    /// attribution, speculation event counts, and the flight-recorder
    /// ring of recent block/rollback/mispredict events.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The data cache (exposed for statistics and residency checks).
    pub fn dcache(&self) -> &DataCache {
        &self.dcache
    }

    /// Mutable access to the data cache (used by tests and by the platform
    /// to pre-warm or flush lines).
    pub fn dcache_mut(&mut self) -> &mut DataCache {
        &mut self.dcache
    }

    fn read_operand(&self, phys: &[u64], operand: Operand) -> u64 {
        match operand {
            Operand::Phys(p) => phys[p.index()],
            Operand::Arch(r) => self.arch.reg(r),
            Operand::Imm(v) => v as u64,
        }
    }

    /// Counts one data-cache access outcome into the profiler; the
    /// counts stay exactly equal to the cache's own hit/miss stats
    /// because this is called at every access site.
    fn profile_access(&mut self, hit: bool) {
        if hit {
            self.profiler.events.l1d_hits += 1;
        } else {
            self.profiler.events.l1d_misses += 1;
        }
    }

    /// Executes one translated block against `mem`.
    ///
    /// On return the architectural state reflects every commit the guest
    /// program performed up to the exit that was taken; the data cache
    /// additionally reflects every speculative access, successful or not.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if a non-speculative access faults, a bundle
    /// exceeds the issue width, or the block is malformed.
    pub fn execute_block(
        &mut self,
        block: &TranslatedBlock,
        mem: &mut GuestMemory,
    ) -> Result<BlockOutcome, CoreError> {
        let entry_snapshot = self.arch.clone();
        let mut phys = vec![0u64; block.phys_reg_count as usize];
        let mut ready = vec![0u64; block.phys_reg_count as usize];
        // Producer kind per physical register: memory-produced values
        // charge their consumers' stalls to the execute phase, everything
        // else to the issue (scoreboard interlock) phase. Pure profiling
        // state — timing reads only `ready`.
        let mut from_mem = vec![false; block.phys_reg_count as usize];
        let mut last_mem_complete = 0u64;
        let mut issue_time = 0u64;
        let mut first = true;
        let block_start = self.cycles;
        self.mcb.clear();
        self.stats.blocks_executed += 1;

        for bundle in &block.bundles {
            if bundle.slots.len() > self.config.issue_width {
                return Err(CoreError::IssueWidthExceeded {
                    entry_pc: block.entry_pc,
                    slots: bundle.slots.len(),
                });
            }
            // In-order issue with scoreboard stalls. `t_alu` and `t_mem`
            // track the same deadline the pre-profiler code folded into a
            // single `t`, split by what produced the awaited operand so
            // every stall cycle is attributed to exactly one phase.
            let earliest = if first { 0 } else { issue_time + 1 };
            if !first {
                self.profiler.attribute(Phase::Fetch, 1);
            }
            first = false;
            let mut t_alu = earliest;
            let mut t_mem = earliest;
            for op in &bundle.slots {
                match op {
                    Op::Alu { a, b, .. } => {
                        wait_operand(&ready, &from_mem, *a, &mut t_alu, &mut t_mem);
                        wait_operand(&ready, &from_mem, *b, &mut t_alu, &mut t_mem);
                    }
                    Op::Load { base, .. } | Op::CacheFlush { base, .. } => {
                        wait_operand(&ready, &from_mem, *base, &mut t_alu, &mut t_mem);
                    }
                    Op::Store { value, base, .. } => {
                        wait_operand(&ready, &from_mem, *value, &mut t_alu, &mut t_mem);
                        wait_operand(&ready, &from_mem, *base, &mut t_alu, &mut t_mem);
                    }
                    Op::CommitReg { src, .. } => {
                        wait_operand(&ready, &from_mem, *src, &mut t_alu, &mut t_mem);
                    }
                    Op::SideExit { a, b, .. } => {
                        wait_operand(&ready, &from_mem, *a, &mut t_alu, &mut t_mem);
                        wait_operand(&ready, &from_mem, *b, &mut t_alu, &mut t_mem);
                    }
                    Op::RdCycle { .. } => t_mem = t_mem.max(last_mem_complete),
                    Op::JumpIndirect { target } => {
                        wait_operand(&ready, &from_mem, *target, &mut t_alu, &mut t_mem);
                    }
                    Op::Nop | Op::Jump { .. } | Op::Halt | Op::Fence => {}
                }
            }
            let t = t_alu.max(t_mem);
            self.profiler.attribute(Phase::Issue, t_alu - earliest);
            self.profiler.attribute(Phase::Execute, t - t_alu.max(earliest));
            issue_time = t;
            self.stats.bundles_issued += 1;

            for op in &bundle.slots {
                match op {
                    Op::Nop => {}
                    Op::Fence => {
                        self.profiler.events.fence_stalls += 1;
                    }
                    Op::Alu { op: alu, dst, a, b } => {
                        let va = self.read_operand(&phys, *a);
                        let vb = self.read_operand(&phys, *b);
                        phys[dst.index()] = alu.apply(va, vb);
                        ready[dst.index()] = t + alu_latency(*alu);
                        from_mem[dst.index()] = false;
                        self.stats.ops_executed += 1;
                    }
                    Op::RdCycle { dst } => {
                        phys[dst.index()] = self.cycles + t;
                        ready[dst.index()] = t + 1;
                        from_mem[dst.index()] = false;
                        self.stats.ops_executed += 1;
                    }
                    Op::Load { width, dst, base, offset, speculative, original_seq } => {
                        self.stats.ops_executed += 1;
                        let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                        let in_bounds = addr
                            .checked_add(width.bytes as u64)
                            .is_some_and(|end| end <= mem.len() as u64);
                        if !in_bounds {
                            if *speculative {
                                // Faults raised by misspeculated loads are
                                // squashed; the destination gets a dummy
                                // value and the cache is untouched.
                                phys[dst.index()] = 0;
                                ready[dst.index()] = t + 1;
                                from_mem[dst.index()] = false;
                                continue;
                            }
                            return Err(CoreError::MemFault { addr, bytes: width.bytes });
                        }
                        let outcome = self.dcache.access(addr, false);
                        self.profile_access(outcome.hit);
                        let raw = mem.load(addr, width.bytes as u64).expect("bounds checked");
                        phys[dst.index()] = sign_extend_load(raw, *width);
                        let done = t + outcome.latency;
                        ready[dst.index()] = done;
                        from_mem[dst.index()] = true;
                        last_mem_complete = last_mem_complete.max(done);
                        if *speculative {
                            self.stats.speculative_loads += 1;
                            self.profiler.events.speculative_loads += 1;
                            self.mcb.record_load(addr, width.bytes, *original_seq);
                        }
                    }
                    Op::Store { width, value, base, offset, checks_mcb, original_seq } => {
                        self.stats.ops_executed += 1;
                        let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                        if *checks_mcb && self.mcb.store_conflicts(addr, width.bytes, *original_seq)
                        {
                            // Memory-dependency misspeculation: roll back and
                            // re-execute sequentially. Cache contents are
                            // intentionally NOT restored.
                            self.stats.rollbacks += 1;
                            self.profiler.events.mcb_hits += 1;
                            self.arch = entry_snapshot;
                            self.mcb.clear();
                            let penalty = t + self.config.rollback_penalty;
                            let (next_pc, recovery_cycles) = self.execute_recovery(block, mem)?;
                            let total = penalty + recovery_cycles;
                            self.profiler.attribute(Phase::Rollback, total - t);
                            self.profiler.record("block", block.entry_pc, block_start, total);
                            self.profiler.record(
                                "rollback",
                                block.entry_pc,
                                block_start + t,
                                total - t,
                            );
                            self.cycles += total;
                            return Ok(BlockOutcome { next_pc, cycles: total, rolled_back: true });
                        }
                        let in_bounds = addr
                            .checked_add(width.bytes as u64)
                            .is_some_and(|end| end <= mem.len() as u64);
                        if !in_bounds {
                            return Err(CoreError::MemFault { addr, bytes: width.bytes });
                        }
                        let value = self.read_operand(&phys, *value);
                        mem.store(addr, width.bytes as u64, value).expect("bounds checked");
                        let outcome = self.dcache.access(addr, true);
                        self.profile_access(outcome.hit);
                    }
                    Op::CacheFlush { base, offset } => {
                        self.stats.ops_executed += 1;
                        let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                        self.dcache.flush_line(addr);
                    }
                    Op::CommitReg { reg, src } => {
                        self.stats.ops_executed += 1;
                        let value = self.read_operand(&phys, *src);
                        self.arch.set_reg(*reg, value);
                    }
                    Op::SideExit { cond, a, b, target } => {
                        self.stats.ops_executed += 1;
                        let va = self.read_operand(&phys, *a);
                        let vb = self.read_operand(&phys, *b);
                        if cond.eval(va, vb) {
                            self.stats.side_exits_taken += 1;
                            self.profiler.events.mispredicts += 1;
                            let total = t + 1;
                            self.profiler.attribute(Phase::Commit, 1);
                            self.profiler.record("block", block.entry_pc, block_start, total);
                            self.profiler.record("mispredict", block.entry_pc, block_start + t, 1);
                            self.cycles += total;
                            self.mcb.clear();
                            return Ok(BlockOutcome {
                                next_pc: Some(*target),
                                cycles: total,
                                rolled_back: false,
                            });
                        }
                    }
                    Op::Jump { target } => {
                        self.stats.ops_executed += 1;
                        let total = t + 1;
                        self.profiler.attribute(Phase::Commit, 1);
                        self.profiler.record("block", block.entry_pc, block_start, total);
                        self.cycles += total;
                        self.mcb.clear();
                        return Ok(BlockOutcome {
                            next_pc: Some(*target),
                            cycles: total,
                            rolled_back: false,
                        });
                    }
                    Op::JumpIndirect { target } => {
                        self.stats.ops_executed += 1;
                        let target = self.read_operand(&phys, *target);
                        let total = t + 1;
                        self.profiler.attribute(Phase::Commit, 1);
                        self.profiler.record("block", block.entry_pc, block_start, total);
                        self.cycles += total;
                        self.mcb.clear();
                        return Ok(BlockOutcome {
                            next_pc: Some(target),
                            cycles: total,
                            rolled_back: false,
                        });
                    }
                    Op::Halt => {
                        self.stats.ops_executed += 1;
                        let total = t + 1;
                        self.profiler.attribute(Phase::Commit, 1);
                        self.profiler.record("block", block.entry_pc, block_start, total);
                        self.cycles += total;
                        self.mcb.clear();
                        return Ok(BlockOutcome {
                            next_pc: None,
                            cycles: total,
                            rolled_back: false,
                        });
                    }
                }
            }
        }
        Err(CoreError::MissingTerminator { entry_pc: block.entry_pc })
    }

    /// Sequentially executes the recovery code of `block` (original program
    /// order, no speculation), returning the continuation PC and the cycles
    /// spent.
    fn execute_recovery(
        &mut self,
        block: &TranslatedBlock,
        mem: &mut GuestMemory,
    ) -> Result<(Option<u64>, u64), CoreError> {
        let mut phys = vec![0u64; block.phys_reg_count as usize];
        let mut t = 0u64;
        for op in &block.recovery {
            self.stats.recovery_ops += 1;
            self.profiler.events.squashed_insts += 1;
            t += 1;
            match op {
                Op::Nop => {}
                Op::Fence => {
                    self.profiler.events.fence_stalls += 1;
                }
                Op::Alu { op: alu, dst, a, b } => {
                    let va = self.read_operand(&phys, *a);
                    let vb = self.read_operand(&phys, *b);
                    phys[dst.index()] = alu.apply(va, vb);
                    t += alu_latency(*alu) - 1;
                }
                Op::RdCycle { dst } => {
                    phys[dst.index()] = self.cycles + t;
                }
                Op::Load { width, dst, base, offset, .. } => {
                    let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                    let in_bounds = addr
                        .checked_add(width.bytes as u64)
                        .is_some_and(|end| end <= mem.len() as u64);
                    if !in_bounds {
                        return Err(CoreError::MemFault { addr, bytes: width.bytes });
                    }
                    let outcome = self.dcache.access(addr, false);
                    self.profile_access(outcome.hit);
                    t += outcome.latency;
                    let raw = mem.load(addr, width.bytes as u64).expect("bounds checked");
                    phys[dst.index()] = sign_extend_load(raw, *width);
                }
                Op::Store { width, value, base, offset, .. } => {
                    let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                    let in_bounds = addr
                        .checked_add(width.bytes as u64)
                        .is_some_and(|end| end <= mem.len() as u64);
                    if !in_bounds {
                        return Err(CoreError::MemFault { addr, bytes: width.bytes });
                    }
                    let value = self.read_operand(&phys, *value);
                    mem.store(addr, width.bytes as u64, value).expect("bounds checked");
                    let outcome = self.dcache.access(addr, true);
                    self.profile_access(outcome.hit);
                }
                Op::CacheFlush { base, offset } => {
                    let addr = self.read_operand(&phys, *base).wrapping_add(*offset as u64);
                    self.dcache.flush_line(addr);
                }
                Op::CommitReg { reg, src } => {
                    let value = self.read_operand(&phys, *src);
                    self.arch.set_reg(*reg, value);
                }
                Op::SideExit { cond, a, b, target } => {
                    let va = self.read_operand(&phys, *a);
                    let vb = self.read_operand(&phys, *b);
                    if cond.eval(va, vb) {
                        self.stats.side_exits_taken += 1;
                        self.profiler.events.mispredicts += 1;
                        return Ok((Some(*target), t));
                    }
                }
                Op::Jump { target } => return Ok((Some(*target), t)),
                Op::JumpIndirect { target } => {
                    let target = self.read_operand(&phys, *target);
                    return Ok((Some(target), t));
                }
                Op::Halt => return Ok((None, t)),
            }
        }
        Err(CoreError::MissingTerminator { entry_pc: block.entry_pc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Bundle, PhysReg};
    use dbt_riscv::BranchCond;

    fn mk_core() -> (VliwCore, GuestMemory) {
        (VliwCore::new(CoreConfig::default(), 0x1000), GuestMemory::new(0x10000))
    }

    fn bundle(slots: Vec<Op>) -> Bundle {
        Bundle { slots }
    }

    #[test]
    fn straight_line_block_commits_registers() {
        let (mut core, mut mem) = mk_core();
        let block = TranslatedBlock {
            entry_pc: 0x1000,
            bundles: vec![
                bundle(vec![Op::Alu {
                    op: AluOp::Add,
                    dst: PhysReg(0),
                    a: Operand::Imm(40),
                    b: Operand::Imm(2),
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(0)) },
                    Op::Jump { target: 0x2000 },
                ]),
            ],
            phys_reg_count: 1,
            recovery: vec![],
            guest_inst_count: 2,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert_eq!(outcome.next_pc, Some(0x2000));
        assert!(!outcome.rolled_back);
        assert_eq!(core.arch().reg(Reg::A0), 42);
        assert!(outcome.cycles >= 2);
    }

    #[test]
    fn load_latency_stalls_consumer() {
        let (mut core, mut mem) = mk_core();
        mem.store_u64(0x100, 7).unwrap();
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x100),
                    offset: 0,
                    speculative: false,
                    original_seq: 0,
                }]),
                bundle(vec![Op::Alu {
                    op: AluOp::Add,
                    dst: PhysReg(1),
                    a: Operand::Phys(PhysReg(0)),
                    b: Operand::Imm(1),
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(1)) },
                    Op::Halt,
                ]),
            ],
            phys_reg_count: 2,
            recovery: vec![],
            guest_inst_count: 3,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert_eq!(core.arch().reg(Reg::A0), 8);
        // A cold-cache miss (60 cycles by default) must be visible.
        assert!(outcome.cycles >= CacheConfig::default().miss_latency);
    }

    #[test]
    fn cache_hits_are_faster_than_misses() {
        let (mut core, mut mem) = mk_core();
        let make_block = || TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x200),
                    offset: 0,
                    speculative: false,
                    original_seq: 0,
                }]),
                bundle(vec![Op::Alu {
                    op: AluOp::Add,
                    dst: PhysReg(1),
                    a: Operand::Phys(PhysReg(0)),
                    b: Operand::Imm(0),
                }]),
                bundle(vec![Op::Halt]),
            ],
            phys_reg_count: 2,
            recovery: vec![],
            guest_inst_count: 2,
        };
        let cold = core.execute_block(&make_block(), &mut mem).unwrap();
        let warm = core.execute_block(&make_block(), &mut mem).unwrap();
        assert!(cold.cycles > warm.cycles);
    }

    #[test]
    fn taken_side_exit_skips_later_commits() {
        let (mut core, mut mem) = mk_core();
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::SideExit {
                    cond: BranchCond::Eq,
                    a: Operand::Imm(1),
                    b: Operand::Imm(1),
                    target: 0x3000,
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Imm(99) },
                    Op::Jump { target: 0x4000 },
                ]),
            ],
            phys_reg_count: 0,
            recovery: vec![],
            guest_inst_count: 2,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert_eq!(outcome.next_pc, Some(0x3000));
        assert_eq!(core.arch().reg(Reg::A0), 0, "commit after a taken exit must not happen");
        assert_eq!(core.stats().side_exits_taken, 1);
    }

    #[test]
    fn speculative_load_leaves_cache_trace_even_when_exit_taken() {
        let (mut core, mut mem) = mk_core();
        // The load is scheduled before the exit (hoisted), the exit is taken:
        // architecturally nothing happens, but the line stays in the cache.
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::BYTE_U,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x5000),
                    offset: 0,
                    speculative: false,
                    original_seq: 2,
                }]),
                bundle(vec![Op::SideExit {
                    cond: BranchCond::Eq,
                    a: Operand::Imm(0),
                    b: Operand::Imm(0),
                    target: 0x9000,
                }]),
                bundle(vec![Op::Halt]),
            ],
            phys_reg_count: 1,
            recovery: vec![],
            guest_inst_count: 3,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert_eq!(outcome.next_pc, Some(0x9000));
        assert!(core.dcache().is_resident(0x5000));
    }

    #[test]
    fn mcb_conflict_triggers_rollback_and_recovery() {
        let (mut core, mut mem) = mk_core();
        mem.store_u64(0x800, 111).unwrap();
        // Guest order: store 222 -> [0x800] (seq 1); load [0x800] (seq 2);
        // commit a0 <- load. The schedule hoists the load above the store.
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    speculative: true,
                    original_seq: 2,
                }]),
                bundle(vec![Op::Store {
                    width: AccessWidth::DOUBLE,
                    value: Operand::Imm(222),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    checks_mcb: true,
                    original_seq: 1,
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(0)) },
                    Op::Halt,
                ]),
            ],
            phys_reg_count: 1,
            recovery: vec![
                Op::Store {
                    width: AccessWidth::DOUBLE,
                    value: Operand::Imm(222),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    checks_mcb: false,
                    original_seq: 1,
                },
                Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    speculative: false,
                    original_seq: 2,
                },
                Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(0)) },
                Op::Halt,
            ],
            guest_inst_count: 3,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert!(outcome.rolled_back);
        assert_eq!(outcome.next_pc, None);
        // Recovery re-executed in order: the commit sees the stored value.
        assert_eq!(core.arch().reg(Reg::A0), 222);
        assert_eq!(core.stats().rollbacks, 1);
        assert_eq!(mem.load_u64(0x800).unwrap(), 222);
        // The rollback penalty makes this much slower than a plain block.
        assert!(outcome.cycles >= core.config().rollback_penalty);
    }

    #[test]
    fn speculative_load_fault_is_squashed() {
        let (mut core, mut mem) = mk_core();
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(-64i64),
                    offset: 0,
                    speculative: true,
                    original_seq: 1,
                }]),
                bundle(vec![Op::Halt]),
            ],
            phys_reg_count: 1,
            recovery: vec![Op::Halt],
            guest_inst_count: 1,
        };
        assert!(core.execute_block(&block, &mut mem).is_ok());
    }

    #[test]
    fn non_speculative_fault_is_an_error() {
        let (mut core, mut mem) = mk_core();
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(-64i64),
                    offset: 0,
                    speculative: false,
                    original_seq: 1,
                }]),
                bundle(vec![Op::Halt]),
            ],
            phys_reg_count: 1,
            recovery: vec![Op::Halt],
            guest_inst_count: 1,
        };
        assert!(matches!(core.execute_block(&block, &mut mem), Err(CoreError::MemFault { .. })));
    }

    #[test]
    fn rdcycle_observes_memory_latency() {
        let (mut core, mut mem) = mk_core();
        // rdcycle ; load (miss) ; rdcycle ; commit the difference.
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::RdCycle { dst: PhysReg(0) }]),
                bundle(vec![Op::Load {
                    width: AccessWidth::BYTE_U,
                    dst: PhysReg(1),
                    base: Operand::Imm(0x900),
                    offset: 0,
                    speculative: false,
                    original_seq: 1,
                }]),
                bundle(vec![Op::RdCycle { dst: PhysReg(2) }]),
                bundle(vec![Op::Alu {
                    op: AluOp::Sub,
                    dst: PhysReg(3),
                    a: Operand::Phys(PhysReg(2)),
                    b: Operand::Phys(PhysReg(0)),
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(3)) },
                    Op::Halt,
                ]),
            ],
            phys_reg_count: 4,
            recovery: vec![],
            guest_inst_count: 5,
        };
        core.execute_block(&block, &mut mem).unwrap();
        let miss_delta = core.arch().reg(Reg::A0);
        assert!(miss_delta >= CacheConfig::default().miss_latency);

        // Run again: the line is now cached, the delta must be small.
        let mut warm = core.clone();
        warm.execute_block(&block, &mut mem).unwrap();
        let hit_delta = warm.arch().reg(Reg::A0);
        assert!(hit_delta < miss_delta);
    }

    #[test]
    fn issue_width_is_enforced() {
        let (mut core, mut mem) = mk_core();
        let too_wide = bundle(vec![Op::Nop, Op::Nop, Op::Nop, Op::Nop, Op::Halt]);
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![too_wide],
            phys_reg_count: 0,
            recovery: vec![],
            guest_inst_count: 1,
        };
        assert!(matches!(
            core.execute_block(&block, &mut mem),
            Err(CoreError::IssueWidthExceeded { .. })
        ));
    }

    #[test]
    fn missing_terminator_is_detected() {
        let (mut core, mut mem) = mk_core();
        let block = TranslatedBlock {
            entry_pc: 0x42,
            bundles: vec![bundle(vec![Op::Nop])],
            phys_reg_count: 0,
            recovery: vec![],
            guest_inst_count: 1,
        };
        assert!(matches!(
            core.execute_block(&block, &mut mem),
            Err(CoreError::MissingTerminator { entry_pc: 0x42 })
        ));
    }

    /// A block that stalls on both a load (execute phase) and a slow ALU
    /// result (issue phase), ending in a halt.
    fn stall_block() -> TranslatedBlock {
        TranslatedBlock {
            entry_pc: 0x1000,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x100),
                    offset: 0,
                    speculative: false,
                    original_seq: 0,
                }]),
                bundle(vec![Op::Alu {
                    op: AluOp::Mul,
                    dst: PhysReg(1),
                    a: Operand::Phys(PhysReg(0)),
                    b: Operand::Imm(3),
                }]),
                bundle(vec![Op::Alu {
                    op: AluOp::Add,
                    dst: PhysReg(2),
                    a: Operand::Phys(PhysReg(1)),
                    b: Operand::Imm(1),
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(2)) },
                    Op::Halt,
                ]),
            ],
            phys_reg_count: 3,
            recovery: vec![],
            guest_inst_count: 4,
        }
    }

    #[test]
    fn profiler_phases_sum_to_total_cycles() {
        let (mut core, mut mem) = mk_core();
        core.execute_block(&stall_block(), &mut mem).unwrap();
        core.execute_block(&stall_block(), &mut mem).unwrap();
        let phases = core.profiler().phases;
        assert_eq!(phases.total(), core.cycles(), "{phases:?}");
        // The cold-run load miss stalls its consumer: execute cycles must
        // dominate; the multiply interlock shows up as issue cycles; one
        // commit cycle per block exit.
        assert!(phases.execute >= CacheConfig::default().miss_latency - 1, "{phases:?}");
        assert!(phases.issue >= 2, "the 3-cycle multiply interlocks: {phases:?}");
        assert_eq!(phases.commit, 2);
        assert_eq!(phases.rollback, 0);
    }

    #[test]
    fn profiler_phases_include_rollback_and_events_match_stats() {
        let (mut core, mut mem) = mk_core();
        mem.store_u64(0x800, 111).unwrap();
        // Reuse the MCB-conflict shape: hoisted load, conflicting store,
        // sequential recovery.
        let block = TranslatedBlock {
            entry_pc: 0,
            bundles: vec![
                bundle(vec![Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    speculative: true,
                    original_seq: 2,
                }]),
                bundle(vec![Op::Store {
                    width: AccessWidth::DOUBLE,
                    value: Operand::Imm(222),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    checks_mcb: true,
                    original_seq: 1,
                }]),
                bundle(vec![
                    Op::CommitReg { reg: Reg::A0, src: Operand::Phys(PhysReg(0)) },
                    Op::Halt,
                ]),
            ],
            phys_reg_count: 1,
            recovery: vec![
                Op::Fence,
                Op::Load {
                    width: AccessWidth::DOUBLE,
                    dst: PhysReg(0),
                    base: Operand::Imm(0x800),
                    offset: 0,
                    speculative: false,
                    original_seq: 2,
                },
                Op::Halt,
            ],
            guest_inst_count: 3,
        };
        let outcome = core.execute_block(&block, &mut mem).unwrap();
        assert!(outcome.rolled_back);
        let profiler = core.profiler();
        assert_eq!(profiler.phases.total(), core.cycles());
        assert!(profiler.phases.rollback >= core.config().rollback_penalty);
        // Every event counter agrees exactly with its CoreStats /
        // CacheStats twin.
        let stats = *core.stats();
        assert_eq!(profiler.events.mcb_hits, stats.rollbacks);
        assert_eq!(profiler.events.squashed_insts, stats.recovery_ops);
        assert_eq!(profiler.events.mispredicts, stats.side_exits_taken);
        assert_eq!(profiler.events.speculative_loads, stats.speculative_loads);
        assert_eq!(profiler.events.fence_stalls, 1, "the recovery fence is counted");
        let cache = core.dcache().stats();
        assert_eq!(profiler.events.l1d_hits, cache.read_hits + cache.write_hits);
        assert_eq!(profiler.events.l1d_misses, cache.read_misses + cache.write_misses);
    }

    #[test]
    fn flight_recorder_captures_block_and_rollback_events() {
        let (mut core, mut mem) = mk_core();
        core.execute_block(&stall_block(), &mut mem).unwrap();
        let kinds: Vec<&str> = core.profiler().trace_events().map(|e| e.kind).collect();
        assert_eq!(kinds, ["block"]);
        let event = *core.profiler().trace_events().next().unwrap();
        assert_eq!(event.pc, 0x1000);
        assert_eq!(event.start_cycle, 0);
        assert_eq!(event.cycles, core.cycles());
        // A second execution starts where the first ended.
        core.execute_block(&stall_block(), &mut mem).unwrap();
        let second = *core.profiler().trace_events().nth(1).unwrap();
        assert_eq!(second.start_cycle, event.cycles);
        assert_eq!(second.start_cycle + second.cycles, core.cycles());
    }
}
