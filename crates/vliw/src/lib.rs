//! Target-side model of the DBT-based processor: the VLIW ISA produced by
//! the DBT engine and the in-order core that executes it.
//!
//! The architecture mirrors the machines the paper studies (Transmeta
//! Crusoe/Efficeon, NVidia Denver, Hybrid-DBT):
//!
//! * a wide **in-order** core executes instruction [`Bundle`]s, one bundle
//!   per cycle (plus memory stalls resolved through a scoreboard);
//! * results of instructions hoisted above a side exit live in **hidden
//!   registers** ([`PhysReg`]s beyond the 32 architectural ones) and are
//!   simply discarded if the exit is taken — the hardware never rolls back
//!   for branch speculation;
//! * loads hoisted above stores are emitted as **speculative loads** and
//!   checked by the [`MemoryConflictBuffer`]: when a later store touches the
//!   same bytes, the block is rolled back and re-executed sequentially from
//!   its recovery sequence;
//! * crucially, the data cache keeps every line fetched by a misspeculated
//!   access — this is the micro-architectural state the Spectre attacks
//!   convert into an architectural leak.
//!
//! The crate knows nothing about RISC-V translation or scheduling; it only
//! executes already-translated blocks ([`TranslatedBlock`]).

pub mod core;
pub mod isa;
pub mod mcb;
pub mod regfile;
pub mod stats;

pub use crate::core::{BlockOutcome, CoreConfig, CoreError, VliwCore};
pub use isa::{AccessWidth, Bundle, Op, Operand, PhysReg, TranslatedBlock};
pub use mcb::MemoryConflictBuffer;
pub use regfile::ArchState;
pub use stats::CoreStats;
