//! Execution statistics of the VLIW core.

/// Counters accumulated by [`VliwCore`](crate::VliwCore) across block
/// executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Translated blocks executed (including re-executions after rollback).
    pub blocks_executed: u64,
    /// Bundles issued.
    pub bundles_issued: u64,
    /// Non-nop operations executed.
    pub ops_executed: u64,
    /// Speculative loads executed (recorded in the MCB).
    pub speculative_loads: u64,
    /// Memory Conflict Buffer rollbacks.
    pub rollbacks: u64,
    /// Side exits taken.
    pub side_exits_taken: u64,
    /// Operations re-executed sequentially from recovery code.
    pub recovery_ops: u64,
}

impl CoreStats {
    /// Creates zeroed counters.
    pub fn new() -> CoreStats {
        CoreStats::default()
    }

    /// Average useful operations per bundle (0 when nothing was issued).
    pub fn ops_per_bundle(&self) -> f64 {
        if self.bundles_issued == 0 {
            0.0
        } else {
            self.ops_executed as f64 / self.bundles_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_bundle_handles_zero() {
        assert_eq!(CoreStats::new().ops_per_bundle(), 0.0);
        let s = CoreStats { bundles_issued: 4, ops_executed: 10, ..CoreStats::default() };
        assert!((s.ops_per_bundle() - 2.5).abs() < 1e-12);
    }
}
