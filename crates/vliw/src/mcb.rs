//! Memory Conflict Buffer.
//!
//! The MCB is the hardware support for memory-dependency speculation
//! (Gallagher et al., ASPLOS'94), as used by Transmeta, NVidia Denver and
//! Hybrid-DBT: speculative loads record the bytes they read; when a store
//! later touches the same bytes *and* the load originally came after the
//! store, the speculation was wrong and the block must be rolled back.

/// One recorded speculative load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    addr: u64,
    bytes: u8,
    original_seq: u32,
}

/// The Memory Conflict Buffer of the VLIW core.
///
/// # Example
///
/// ```
/// use dbt_vliw::MemoryConflictBuffer;
/// let mut mcb = MemoryConflictBuffer::new(8);
/// mcb.record_load(0x1000, 8, 5);          // speculative load, guest seq 5
/// assert!(mcb.store_conflicts(0x1000, 8, 2));  // store with seq 2 was bypassed
/// assert!(!mcb.store_conflicts(0x2000, 8, 2)); // different bytes: fine
/// assert!(!mcb.store_conflicts(0x1000, 8, 9)); // store after the load: fine
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryConflictBuffer {
    entries: Vec<Entry>,
    capacity: usize,
    overflowed: bool,
}

impl MemoryConflictBuffer {
    /// Creates an empty buffer with room for `capacity` speculative loads.
    pub fn new(capacity: usize) -> MemoryConflictBuffer {
        MemoryConflictBuffer { entries: Vec::with_capacity(capacity), capacity, overflowed: false }
    }

    /// Records a speculative load of `bytes` bytes at `addr`, originating
    /// from the guest instruction at position `original_seq`.
    ///
    /// If the buffer is full the overflow flag is set; a conservative core
    /// treats any subsequent checked store as conflicting.
    pub fn record_load(&mut self, addr: u64, bytes: u8, original_seq: u32) {
        if self.entries.len() >= self.capacity {
            self.overflowed = true;
            return;
        }
        self.entries.push(Entry { addr, bytes, original_seq });
    }

    /// Returns `true` if a store of `bytes` bytes at `addr`, originating from
    /// guest position `store_seq`, conflicts with a recorded speculative
    /// load that originally came *after* the store.
    pub fn store_conflicts(&self, addr: u64, bytes: u8, store_seq: u32) -> bool {
        if self.overflowed {
            return true;
        }
        let store_end = addr + bytes as u64;
        self.entries.iter().any(|e| {
            let load_end = e.addr + e.bytes as u64;
            e.original_seq > store_seq && addr < load_end && e.addr < store_end
        })
    }

    /// Number of recorded speculative loads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no speculative load is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer overflowed since the last clear.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Clears all entries (called at block boundaries and after rollback).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.overflowed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_requires_overlap_and_order() {
        let mut mcb = MemoryConflictBuffer::new(4);
        mcb.record_load(0x100, 8, 10);
        // Overlapping bytes, store originally earlier: conflict.
        assert!(mcb.store_conflicts(0x104, 4, 3));
        // Overlapping bytes, store originally later: no conflict.
        assert!(!mcb.store_conflicts(0x104, 4, 11));
        // Disjoint bytes: no conflict.
        assert!(!mcb.store_conflicts(0x108, 8, 3));
        // Adjacent but non-overlapping below.
        assert!(!mcb.store_conflicts(0xf8, 8, 3));
        // One byte overlap at the start.
        assert!(mcb.store_conflicts(0xf9, 8, 3));
    }

    #[test]
    fn clear_resets_state() {
        let mut mcb = MemoryConflictBuffer::new(1);
        mcb.record_load(0, 1, 1);
        mcb.record_load(8, 1, 2); // overflow
        assert!(mcb.overflowed());
        assert!(mcb.store_conflicts(0x9999, 1, 0));
        mcb.clear();
        assert!(!mcb.overflowed());
        assert!(mcb.is_empty());
        assert!(!mcb.store_conflicts(0, 1, 0));
    }

    #[test]
    fn overflow_is_conservative() {
        let mut mcb = MemoryConflictBuffer::new(2);
        mcb.record_load(0, 8, 1);
        mcb.record_load(8, 8, 2);
        assert_eq!(mcb.len(), 2);
        mcb.record_load(16, 8, 3);
        assert_eq!(mcb.len(), 2);
        assert!(mcb.overflowed());
        // Even a store that would not overlap any entry reports a conflict.
        assert!(mcb.store_conflicts(0x4000, 8, 0));
    }
}
