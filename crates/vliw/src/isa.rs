//! The explicitly parallel (VLIW) instruction set produced by the DBT
//! engine.

use dbt_riscv::inst::AluOp;
use dbt_riscv::{BranchCond, Reg};
use std::fmt;

/// A physical register of the VLIW core.
///
/// Registers `0..32` are not used directly; architectural guest registers
/// are accessed through [`Operand::Arch`]. Physical registers hold
/// block-local temporaries, including the *hidden registers* the paper
/// mentions: results of speculatively hoisted instructions that are simply
/// dropped when the speculation turns out to be wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// Index of the register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Width (and sign treatment) of a VLIW memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessWidth {
    /// Number of bytes accessed (1, 2, 4 or 8).
    pub bytes: u8,
    /// Whether a load of this width sign-extends into 64 bits.
    pub sign_extend: bool,
}

impl AccessWidth {
    /// 8-byte access.
    pub const DOUBLE: AccessWidth = AccessWidth { bytes: 8, sign_extend: false };
    /// 1-byte zero-extended access.
    pub const BYTE_U: AccessWidth = AccessWidth { bytes: 1, sign_extend: false };

    /// Builds an access width.
    pub fn new(bytes: u8, sign_extend: bool) -> AccessWidth {
        AccessWidth { bytes, sign_extend }
    }
}

/// An operand of a VLIW operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A physical (block-local) register.
    Phys(PhysReg),
    /// A guest architectural register, read as of the last commit.
    Arch(Reg),
    /// An immediate.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Phys(p) => write!(f, "{p}"),
            Operand::Arch(r) => write!(f, "${r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// One VLIW operation (one slot of a bundle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Empty slot.
    Nop,
    /// ALU operation into a physical register.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: PhysReg,
        /// First operand.
        a: Operand,
        /// Second operand.
        b: Operand,
    },
    /// Load from `base + offset`.
    Load {
        /// Access width.
        width: AccessWidth,
        /// Destination register.
        dst: PhysReg,
        /// Base address operand.
        base: Operand,
        /// Constant offset.
        offset: i64,
        /// `true` if the load was hoisted above a store it may alias; the
        /// core records it in the Memory Conflict Buffer.
        speculative: bool,
        /// Position of the originating guest instruction; used by the MCB to
        /// decide whether a store conflicts with an already-executed load.
        original_seq: u32,
    },
    /// Store to `base + offset`.
    Store {
        /// Access width.
        width: AccessWidth,
        /// Value operand.
        value: Operand,
        /// Base address operand.
        base: Operand,
        /// Constant offset.
        offset: i64,
        /// `true` if speculative loads may have bypassed this store, in
        /// which case the core must check the Memory Conflict Buffer.
        checks_mcb: bool,
        /// Position of the originating guest instruction.
        original_seq: u32,
    },
    /// Commit a value to a guest architectural register.
    CommitReg {
        /// Destination architectural register.
        reg: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Conditional side exit towards `target` (guest address).
    SideExit {
        /// Branch condition.
        cond: BranchCond,
        /// First compared operand.
        a: Operand,
        /// Second compared operand.
        b: Operand,
        /// Guest address to continue at when the exit is taken.
        target: u64,
    },
    /// Unconditional end of the block, continuing at guest address `target`.
    Jump {
        /// Guest address to continue at.
        target: u64,
    },
    /// Unconditional end of the block, continuing at the guest address held
    /// in `target`.
    JumpIndirect {
        /// Operand holding the continuation address.
        target: Operand,
    },
    /// Terminate the guest program.
    Halt,
    /// Read the core cycle counter. Serialising with respect to outstanding
    /// memory accesses, like the CSR read on the real core.
    RdCycle {
        /// Destination register.
        dst: PhysReg,
    },
    /// Flush the data-cache line containing `base + offset`.
    CacheFlush {
        /// Base address operand.
        base: Operand,
        /// Constant offset.
        offset: i64,
    },
    /// Memory fence (no effect at run time; constrains the schedule).
    Fence,
}

impl Op {
    /// Destination physical register, if any.
    pub fn dst(&self) -> Option<PhysReg> {
        match self {
            Op::Alu { dst, .. } | Op::Load { dst, .. } | Op::RdCycle { dst } => Some(*dst),
            _ => None,
        }
    }

    /// Returns `true` for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Returns `true` if the op ends block execution when reached (taken
    /// side exits end it dynamically).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Jump { .. } | Op::JumpIndirect { .. } | Op::Halt)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Nop => write!(f, "nop"),
            Op::Alu { op, dst, a, b } => write!(f, "{dst} = {} {a}, {b}", op.mnemonic()),
            Op::Load { width, dst, base, offset, speculative, .. } => {
                let tag = if *speculative { "spec.load" } else { "load" };
                write!(f, "{dst} = {tag}.{} {base}+{offset}", width.bytes)
            }
            Op::Store { width, value, base, offset, checks_mcb, .. } => {
                let tag = if *checks_mcb { "store.chk" } else { "store" };
                write!(f, "{tag}.{} {value} -> {base}+{offset}", width.bytes)
            }
            Op::CommitReg { reg, src } => write!(f, "commit ${reg} <- {src}"),
            Op::SideExit { cond, a, b, target } => {
                write!(f, "exit.{} {a}, {b} -> {target:#x}", cond.mnemonic())
            }
            Op::Jump { target } => write!(f, "jump -> {target:#x}"),
            Op::JumpIndirect { target } => write!(f, "jump -> [{target}]"),
            Op::Halt => write!(f, "halt"),
            Op::RdCycle { dst } => write!(f, "{dst} = rdcycle"),
            Op::CacheFlush { base, offset } => write!(f, "cflush {base}+{offset}"),
            Op::Fence => write!(f, "fence"),
        }
    }
}

/// One VLIW instruction bundle: up to `issue_width` operations issued in the
/// same cycle. Slot order is significant only for architectural commits
/// (they apply in slot order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bundle {
    /// The operations of the bundle.
    pub slots: Vec<Op>,
}

impl Bundle {
    /// Creates an empty bundle.
    pub fn new() -> Bundle {
        Bundle { slots: Vec::new() }
    }

    /// Number of non-nop operations.
    pub fn useful_ops(&self) -> usize {
        self.slots.iter().filter(|op| !matches!(op, Op::Nop)).count()
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ ")?;
        for (i, op) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, " }}")
    }
}

/// A block of VLIW code produced by the DBT engine for one guest (super)
/// block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedBlock {
    /// Guest address this block translates.
    pub entry_pc: u64,
    /// The scheduled bundles.
    pub bundles: Vec<Bundle>,
    /// Number of physical registers the block uses.
    pub phys_reg_count: u16,
    /// Sequential recovery code (original program order, no speculation),
    /// re-executed after a Memory Conflict Buffer rollback.
    pub recovery: Vec<Op>,
    /// Number of guest instructions this block covers.
    pub guest_inst_count: usize,
}

impl TranslatedBlock {
    /// Total number of operations across all bundles (excluding nops).
    pub fn op_count(&self) -> usize {
        self.bundles.iter().map(Bundle::useful_ops).sum()
    }

    /// Number of speculative loads in the scheduled code.
    pub fn speculative_load_count(&self) -> usize {
        self.bundles
            .iter()
            .flat_map(|b| b.slots.iter())
            .filter(|op| matches!(op, Op::Load { speculative: true, .. }))
            .count()
    }
}

impl fmt::Display for TranslatedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "translated block @{:#x} ({} bundles):", self.entry_pc, self.bundles.len())?;
        for (i, bundle) in self.bundles.iter().enumerate() {
            writeln!(f, "  c{i:3}: {bundle}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_dst_and_classification() {
        let alu =
            Op::Alu { op: AluOp::Add, dst: PhysReg(3), a: Operand::Imm(1), b: Operand::Imm(2) };
        assert_eq!(alu.dst(), Some(PhysReg(3)));
        assert!(!alu.is_memory());
        let ld = Op::Load {
            width: AccessWidth::DOUBLE,
            dst: PhysReg(4),
            base: Operand::Arch(Reg::A0),
            offset: 8,
            speculative: true,
            original_seq: 7,
        };
        assert!(ld.is_memory());
        assert_eq!(ld.dst(), Some(PhysReg(4)));
        assert!(Op::Halt.is_terminator());
        assert!(!Op::Fence.is_terminator());
        assert_eq!(Op::Fence.dst(), None);
    }

    #[test]
    fn bundle_counts_useful_ops() {
        let mut b = Bundle::new();
        b.slots.push(Op::Nop);
        b.slots.push(Op::Halt);
        assert_eq!(b.useful_ops(), 1);
    }

    #[test]
    fn display_shows_speculation_markers() {
        let ld = Op::Load {
            width: AccessWidth::BYTE_U,
            dst: PhysReg(1),
            base: Operand::Imm(0x1000),
            offset: 0,
            speculative: true,
            original_seq: 3,
        };
        assert!(ld.to_string().contains("spec.load"));
        let st = Op::Store {
            width: AccessWidth::DOUBLE,
            value: Operand::Phys(PhysReg(1)),
            base: Operand::Arch(Reg::A0),
            offset: 0,
            checks_mcb: true,
            original_seq: 1,
        };
        assert!(st.to_string().contains("store.chk"));
    }

    #[test]
    fn translated_block_counts() {
        let block = TranslatedBlock {
            entry_pc: 0x100,
            bundles: vec![
                Bundle {
                    slots: vec![
                        Op::Load {
                            width: AccessWidth::DOUBLE,
                            dst: PhysReg(0),
                            base: Operand::Imm(0),
                            offset: 0,
                            speculative: true,
                            original_seq: 2,
                        },
                        Op::Nop,
                    ],
                },
                Bundle { slots: vec![Op::Halt] },
            ],
            phys_reg_count: 1,
            recovery: vec![Op::Halt],
            guest_inst_count: 2,
        };
        assert_eq!(block.op_count(), 2);
        assert_eq!(block.speculative_load_count(), 1);
        assert!(block.to_string().contains("bundles"));
    }
}
