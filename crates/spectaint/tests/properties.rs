//! Property tests of the taint lattice and the analysis, over seeded random
//! IR blocks (no external property-testing crate: the corpus PRNG drives
//! the case generation, so failures are reproducible from the seed).

use dbt_ir::{DepGraph, DfgOptions, InstId};
use spectaint::corpus::{random_block, XorShift64};
use spectaint::{analyze, Taint, TaintAnalysis};

const CASES: usize = 128;
const SEED: u64 = 0x5eed_5eed_5eed_5eed;

#[test]
fn analysis_is_idempotent_and_byte_stable() {
    let mut rng = XorShift64::new(SEED);
    for case in 0..CASES {
        let block = random_block(&mut rng);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let first = analyze(&block, &graph);
        let second = analyze(&block, &graph);
        assert_eq!(first, second, "case {case}: verdicts must be identical");
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "case {case}: serialised verdicts must be byte-identical"
        );
    }
}

#[test]
fn propagation_is_monotone_in_the_sources() {
    // Forcing extra taint sources must never shrink any value's taint:
    // the transfer functions are monotone over the source-set lattice.
    let mut rng = XorShift64::new(SEED ^ 0xa5a5);
    for case in 0..CASES {
        let block = random_block(&mut rng);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let plain = TaintAnalysis::run(&block, &graph);
        let extra: Vec<InstId> = (0..block.len())
            .map(InstId)
            .filter(|id| block.inst(*id).op.produces_value() && rng.next_below(3) == 0)
            .collect();
        let forced = TaintAnalysis::run_with_extra_sources(&block, &graph, &extra);
        for id in (0..block.len()).map(InstId) {
            assert!(
                plain.taint(id).le(forced.taint(id)),
                "case {case}: taint of {id} shrank when sources were added\n\
                 plain: {}\nforced: {}",
                plain.taint(id),
                forced.taint(id)
            );
        }
    }
}

#[test]
fn join_laws_hold_on_random_elements() {
    let mut rng = XorShift64::new(SEED ^ 0x1234);
    let random_taint = |rng: &mut XorShift64| {
        let mut taint = Taint::clean();
        for _ in 0..rng.next_below(5) {
            taint.add_source(InstId(rng.next_below(16) as usize));
        }
        taint
    };
    for _ in 0..CASES {
        let a = random_taint(&mut rng);
        let b = random_taint(&mut rng);
        let c = random_taint(&mut rng);
        assert_eq!(a.join(&a), a, "idempotent");
        assert_eq!(a.join(&b), b.join(&a), "commutative");
        assert_eq!(a.join(&b.join(&c)), a.join(&b).join(&c), "associative");
        assert_eq!(a.join(&Taint::clean()), a, "bottom is the identity");
        assert!(a.le(&a.join(&b)), "join is an upper bound");
        assert!(b.le(&a.join(&b)), "join is an upper bound");
    }
}

#[test]
fn relaxing_nothing_means_no_taint_anywhere() {
    let mut rng = XorShift64::new(SEED ^ 0x9999);
    for _ in 0..CASES {
        let block = random_block(&mut rng);
        let graph = DepGraph::build(&block, DfgOptions::no_speculation());
        let verdict = analyze(&block, &graph);
        assert!(verdict.is_leak_free());
        assert!(verdict.tainted_values.is_empty());
    }
}

#[test]
fn taint_never_exceeds_the_speculative_frontier_roots() {
    // Every taint source reported in a verdict must be a load that the
    // graph actually allows to execute speculatively.
    let mut rng = XorShift64::new(SEED ^ 0x7777);
    for _ in 0..CASES {
        let block = random_block(&mut rng);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let verdict = analyze(&block, &graph);
        for source in &verdict.sources {
            assert!(block.inst(source.load).op.is_load());
            assert!(
                graph.is_speculation_candidate(source.load),
                "source {} is not even speculative",
                source.load
            );
        }
    }
}
