//! Deterministic gadget corpus: seeded generation of complete guest
//! programs (attack-harness shaped) and of random IR blocks.
//!
//! The corpus is the analysis' empirical ground truth. Each generated
//! program is a full side-channel harness — victim, training loop, probe
//! flush, attack call, timed reload, `recovered` output buffer — around one
//! of four planted shapes:
//!
//! * [`PlantedShape::V1Gadget`] / [`PlantedShape::V4Gadget`] — genuine
//!   Spectre v1 / v4 gadgets that leak the planted secret on the simulated
//!   processor when unprotected;
//! * [`PlantedShape::V1Benign`] / [`PlantedShape::V4Benign`] — the same
//!   code shapes with the attacker's handle removed (guard unrelated to the
//!   accessed index; bypassed store on a disjoint region). The blanket
//!   poisoning analysis still flags them; the taint analysis must prove
//!   them leak-free, and the differential test checks that they indeed do
//!   not leak.
//!
//! Everything is derived from a caller-provided seed through a xorshift
//! PRNG — no wall clock, no global state — so the corpus is byte-stable
//! across runs, threads and machines.

use dbt_ir::{BlockKind, InstId, IrBlock, IrOp, MemWidth, Operand};
use dbt_riscv::inst::AluOp;
use dbt_riscv::{AsmError, Assembler, BranchCond, DataRef, Program, Reg};

/// Number of distinct values a leaked byte can take.
const PROBE_ENTRIES: u64 = 256;
/// One probe entry per cache line (see `dbt_attacks::probe`).
const PROBE_STRIDE: u64 = 64;
/// log2 of [`PROBE_STRIDE`].
const PROBE_SHIFT: i64 = 6;

/// A tiny xorshift64 PRNG: deterministic, seedable, `no_std`-grade.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero is mapped away).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A value in `0..bound` (`bound` ≥ 1).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A value in `lo..=hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_below(hi - lo + 1)
    }
}

/// What a corpus program has planted in its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedShape {
    /// A real bound-check-bypass gadget (leaks when unprotected).
    V1Gadget,
    /// A guard unrelated to the accessed index (must not leak).
    V1Benign,
    /// A real store-bypass gadget (leaks when unprotected).
    V4Gadget,
    /// The bypassed store targets a disjoint region (must not leak).
    V4Benign,
}

impl PlantedShape {
    /// All shapes, in generation rotation order.
    pub const ALL: [PlantedShape; 4] = [
        PlantedShape::V1Gadget,
        PlantedShape::V1Benign,
        PlantedShape::V4Gadget,
        PlantedShape::V4Benign,
    ];

    /// Stable label used in corpus program names.
    pub fn label(self) -> &'static str {
        match self {
            PlantedShape::V1Gadget => "v1-gadget",
            PlantedShape::V1Benign => "v1-benign",
            PlantedShape::V4Gadget => "v4-gadget",
            PlantedShape::V4Benign => "v4-benign",
        }
    }

    /// Whether the planted shape is a genuine gadget.
    pub fn is_gadget(self) -> bool {
        matches!(self, PlantedShape::V1Gadget | PlantedShape::V4Gadget)
    }
}

/// One generated corpus program.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Stable name: `corpus-<index>-<shape>`.
    pub name: String,
    /// What the victim contains.
    pub shape: PlantedShape,
    /// The planted secret (what a successful attack recovers).
    pub secret: Vec<u8>,
    /// The assembled guest program (defines the `recovered` symbol).
    pub program: Program,
}

/// Generates `count` corpus programs from `seed`, rotating through the four
/// shapes so every prefix of the corpus covers gadgets and benign programs.
///
/// # Panics
///
/// Panics if a generated program fails to assemble (a corpus bug, not an
/// input condition).
pub fn generate(seed: u64, count: usize) -> Vec<CorpusProgram> {
    let mut rng = XorShift64::new(seed);
    (0..count)
        .map(|i| {
            let shape = PlantedShape::ALL[i % PlantedShape::ALL.len()];
            let secret_len = rng.next_range(1, 2) as usize;
            let secret: Vec<u8> =
                (0..secret_len).map(|_| rng.next_range(b'A' as u64, b'Z' as u64) as u8).collect();
            let program = build_program(shape, &secret, &mut rng).unwrap_or_else(|e| {
                panic!("corpus program {i} ({}) assembles: {e}", shape.label())
            });
            CorpusProgram { name: format!("corpus-{i}-{}", shape.label()), shape, secret, program }
        })
        .collect()
}

/// Builds one harness program around the given victim shape.
fn build_program(
    shape: PlantedShape,
    secret: &[u8],
    rng: &mut XorShift64,
) -> Result<Program, AsmError> {
    let mut asm = Assembler::new();
    let buffer_size = 1u64 << rng.next_range(4, 5); // 16 or 32 bytes
    let training_calls = rng.next_range(20, 32) as i64;
    let filler_adds = rng.next_below(3);

    let addr_buf = asm.alloc_data("addr_buf", 8 * 8);
    let scratch = asm.alloc_data("scratch", 8 * 8);
    let buffer = asm.alloc_data("buffer", buffer_size);
    let size_var = asm.alloc_data_u64("size", &[buffer_size]);
    let secret_ref = asm.alloc_data_init("secret", secret);
    let recovered = asm.alloc_data("recovered", secret.len() as u64);
    let probe = asm.alloc_data_aligned("probe", PROBE_ENTRIES * PROBE_STRIDE, PROBE_STRIDE);

    let victim = asm.new_label();
    let main = asm.new_label();
    asm.jump(main);

    // ------------------------------------------------------------------
    // The victim. Arguments: A0 = index, A1 = benign store value,
    // A5 = mode flag (always 0). Clobbers T0..T6.
    // ------------------------------------------------------------------
    asm.bind(victim);
    for _ in 0..filler_adds {
        asm.addi(Reg::T6, Reg::T6, 1);
    }
    match shape {
        PlantedShape::V1Gadget => {
            // if (index < size) { v = buffer[index]; probe[v << S]; }
            let skip = asm.new_label();
            asm.la(Reg::T0, size_var);
            asm.ld(Reg::T0, Reg::T0, 0);
            asm.bgeu(Reg::A0, Reg::T0, skip);
            asm.la(Reg::T1, buffer);
            asm.add(Reg::T1, Reg::T1, Reg::A0);
            asm.lbu(Reg::T2, Reg::T1, 0);
            asm.slli(Reg::T2, Reg::T2, PROBE_SHIFT);
            asm.la(Reg::T3, probe);
            asm.add(Reg::T3, Reg::T3, Reg::T2);
            asm.lbu(Reg::T4, Reg::T3, 0);
            asm.bind(skip);
        }
        PlantedShape::V1Benign => {
            // if (mode == 0) { v = buffer[index & mask]; probe[v << S]; }
            // The guard constrains the mode flag, not the index, and the
            // index is masked in-bounds: bypassing the guard reveals
            // nothing the architectural execution could not produce.
            let skip = asm.new_label();
            asm.bnez(Reg::A5, skip);
            asm.andi(Reg::T2, Reg::A0, (buffer_size - 1) as i64);
            asm.la(Reg::T1, buffer);
            asm.add(Reg::T1, Reg::T1, Reg::T2);
            asm.lbu(Reg::T2, Reg::T1, 0);
            asm.slli(Reg::T2, Reg::T2, PROBE_SHIFT);
            asm.la(Reg::T3, probe);
            asm.add(Reg::T3, Reg::T3, Reg::T2);
            asm.lbu(Reg::T4, Reg::T3, 0);
            asm.bind(skip);
        }
        PlantedShape::V4Gadget | PlantedShape::V4Benign => {
            // slot = A0 / 7 / 9 (slow); store <target>[slot] = A1;
            // a = addr_buf[0]; v = buffer[a]; probe[v << S];
            // The gadget stores into addr_buf (the store the load bypasses
            // can forward); the benign variant stores into a disjoint
            // scratch region, so the bypass cannot change the loaded value.
            let target = if shape == PlantedShape::V4Gadget { addr_buf } else { scratch };
            asm.li(Reg::T5, 7);
            asm.div(Reg::T0, Reg::A0, Reg::T5);
            asm.li(Reg::T5, 9);
            asm.div(Reg::T0, Reg::T0, Reg::T5);
            asm.slli(Reg::T0, Reg::T0, 3);
            asm.la(Reg::T6, target);
            asm.add(Reg::T0, Reg::T6, Reg::T0);
            asm.sd(Reg::A1, Reg::T0, 0);
            asm.la(Reg::T6, addr_buf);
            asm.ld(Reg::T1, Reg::T6, 0);
            asm.la(Reg::T2, buffer);
            asm.add(Reg::T2, Reg::T2, Reg::T1);
            asm.lbu(Reg::T3, Reg::T2, 0);
            asm.slli(Reg::T3, Reg::T3, PROBE_SHIFT);
            asm.la(Reg::T4, probe);
            asm.add(Reg::T4, Reg::T4, Reg::T3);
            asm.lbu(Reg::T4, Reg::T4, 0);
        }
    }
    asm.ret();

    // ------------------------------------------------------------------
    // main: per secret byte — train, plant, flush, attack, probe, record.
    // ------------------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::S0, 0);
    asm.li(Reg::S1, secret.len() as i64);
    let outer = asm.new_label();
    asm.bind(outer);

    // Benign value in addr_buf[0] before training.
    asm.la(Reg::T0, addr_buf);
    asm.li(Reg::T1, 3);
    asm.sd(Reg::T1, Reg::T0, 0);

    // Training loop: in-bounds calls make the victim hot and bias its
    // branch (for the v1 shapes). The training index is a *constant*: an
    // index derived from the loop counter would itself look like a
    // bound-check-bypass chain once the trace scheduler merges the loop
    // with the inlined victim (the loop exit constrains the counter), and
    // the benign shapes must stay leak-free end to end.
    {
        let head = asm.new_label();
        asm.li(Reg::S6, 0);
        asm.bind(head);
        asm.li(Reg::A0, 3);
        asm.li(Reg::A1, 3);
        asm.li(Reg::A5, 0);
        asm.call(victim);
        asm.addi(Reg::S6, Reg::S6, 1);
        asm.li(Reg::T0, training_calls);
        asm.blt(Reg::S6, Reg::T0, head);
    }

    // Plant the malicious value. The v1 shapes pass it as the index; the
    // v4 shapes write it into addr_buf[0] (the gadget's store then
    // architecturally overwrites it, the benign store does not need to —
    // its victim never exposes addr_buf contents to an attacker handle, so
    // planting would turn the run into an *architectural* disclosure, not a
    // speculation leak; the benign variant therefore keeps addr_buf benign).
    asm.li(Reg::T0, secret_ref.addr() as i64);
    asm.add(Reg::T0, Reg::T0, Reg::S0);
    asm.li(Reg::T1, buffer.addr() as i64);
    asm.sub(Reg::S7, Reg::T0, Reg::T1); // S7 = malicious index
    if shape == PlantedShape::V4Gadget {
        asm.la(Reg::T0, addr_buf);
        asm.sd(Reg::S7, Reg::T0, 0);
    }

    emit_flush_probe(&mut asm, probe);

    // The attack call.
    match shape {
        PlantedShape::V1Gadget | PlantedShape::V1Benign => {
            asm.mv(Reg::A0, Reg::S7);
        }
        PlantedShape::V4Gadget | PlantedShape::V4Benign => {
            asm.li(Reg::A0, 0);
        }
    }
    asm.li(Reg::A1, 3);
    asm.li(Reg::A5, 0);
    asm.call(victim);

    emit_probe_loop(&mut asm, probe);
    asm.la(Reg::T0, recovered);
    asm.add(Reg::T0, Reg::T0, Reg::S0);
    asm.sb(Reg::S4, Reg::T0, 0);

    asm.addi(Reg::S0, Reg::S0, 1);
    asm.blt(Reg::S0, Reg::S1, outer);
    asm.ecall();
    asm.assemble()
}

/// Flush every probe line. Clobbers `S2`, `S3`, `T0`, `T1`.
fn emit_flush_probe(asm: &mut Assembler, probe: DataRef) {
    let head = asm.new_label();
    asm.li(Reg::S2, 0);
    asm.la(Reg::S3, probe);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S2, PROBE_SHIFT);
    asm.add(Reg::T0, Reg::S3, Reg::T0);
    asm.cflush(Reg::T0, 0);
    asm.addi(Reg::S2, Reg::S2, 1);
    asm.li(Reg::T1, PROBE_ENTRIES as i64);
    asm.blt(Reg::S2, Reg::T1, head);
}

/// Timed reload of every probe entry; fastest index lands in `S4`.
/// Clobbers `S2`..=`S5`, `T0`..=`T3`.
fn emit_probe_loop(asm: &mut Assembler, probe: DataRef) {
    let head = asm.new_label();
    let next = asm.new_label();
    asm.li(Reg::S4, 0);
    asm.li(Reg::S5, 1 << 30);
    asm.li(Reg::S2, 1);
    asm.la(Reg::S3, probe);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S2, PROBE_SHIFT);
    asm.add(Reg::T0, Reg::S3, Reg::T0);
    asm.rdcycle(Reg::T1);
    asm.lbu(Reg::T2, Reg::T0, 0);
    asm.rdcycle(Reg::T3);
    asm.sub(Reg::T3, Reg::T3, Reg::T1);
    asm.bgeu(Reg::T3, Reg::S5, next);
    asm.mv(Reg::S5, Reg::T3);
    asm.mv(Reg::S4, Reg::S2);
    asm.bind(next);
    asm.addi(Reg::S2, Reg::S2, 1);
    asm.li(Reg::T1, PROBE_ENTRIES as i64);
    asm.blt(Reg::S2, Reg::T1, head);
}

/// Generates a random, structurally valid IR block for property tests:
/// a mix of constants, ALU chains, loads, stores and side exits, ending
/// with a terminator. Every `Operand::Value` refers to an earlier
/// value-producing instruction, so `IrBlock::validate` holds.
pub fn random_block(rng: &mut XorShift64) -> IrBlock {
    let mut block = IrBlock::new(0x1000 + rng.next_below(0x1000), BlockKind::Basic);
    let mut values: Vec<InstId> = Vec::new();
    let len = rng.next_range(4, 24);
    let mut pc = block.entry_pc();
    for seq in 0..len {
        let pick_operand = |rng: &mut XorShift64, values: &[InstId]| -> Operand {
            if values.is_empty() || rng.next_below(3) == 0 {
                if rng.next_below(2) == 0 {
                    const LIVE_INS: [Reg; 4] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];
                    Operand::LiveIn(LIVE_INS[rng.next_below(4) as usize])
                } else {
                    Operand::Imm(rng.next_below(0x4000) as i64)
                }
            } else {
                Operand::Value(values[rng.next_below(values.len() as u64) as usize])
            }
        };
        match rng.next_below(6) {
            0 => {
                let id = block.push(IrOp::Const(rng.next_below(0x8000) as i64), pc, seq as usize);
                values.push(id);
            }
            1 | 2 => {
                let a = pick_operand(rng, &values);
                let b = pick_operand(rng, &values);
                let op =
                    [AluOp::Add, AluOp::Xor, AluOp::Sll, AluOp::And][rng.next_below(4) as usize];
                let id = block.push(IrOp::Alu { op, a, b }, pc, seq as usize);
                values.push(id);
            }
            3 => {
                let base = pick_operand(rng, &values);
                let id = block.push(
                    IrOp::Load { width: MemWidth::DOUBLE, base, offset: 0 },
                    pc,
                    seq as usize,
                );
                values.push(id);
            }
            4 => {
                let value = pick_operand(rng, &values);
                let base = pick_operand(rng, &values);
                block.push(
                    IrOp::Store { width: MemWidth::DOUBLE, value, base, offset: 0 },
                    pc,
                    seq as usize,
                );
            }
            _ => {
                let a = pick_operand(rng, &values);
                let b = pick_operand(rng, &values);
                block.push(
                    IrOp::SideExit { cond: BranchCond::Geu, a, b, target: 0x9000 },
                    pc,
                    seq as usize,
                );
            }
        }
        pc += 4;
    }
    block.push(IrOp::Halt, pc, len as usize);
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{ExitReason, Interpreter};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 8);
        let b = generate(42, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.secret, y.secret);
            assert_eq!(x.shape, y.shape);
        }
        let c = generate(43, 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.secret != y.secret),
            "different seeds should vary the corpus"
        );
    }

    #[test]
    fn every_prefix_rotates_through_the_shapes() {
        let corpus = generate(7, 4);
        let shapes: Vec<_> = corpus.iter().map(|p| p.shape).collect();
        assert_eq!(shapes, PlantedShape::ALL);
    }

    #[test]
    fn corpus_programs_terminate_and_do_not_leak_architecturally() {
        for program in generate(11, 4) {
            let mut interp = Interpreter::new(&program.program);
            assert_eq!(
                interp.run(100_000_000).unwrap(),
                ExitReason::Ecall,
                "{} must terminate on the reference machine",
                program.name
            );
            let recovered_addr = program.program.symbol("recovered").unwrap();
            let recovered =
                interp.memory().read_bytes(recovered_addr, program.secret.len()).unwrap();
            assert_ne!(
                recovered, program.secret,
                "{}: the reference machine must never leak",
                program.name
            );
        }
    }

    #[test]
    fn random_blocks_are_valid() {
        let mut rng = XorShift64::new(0xfeed);
        for _ in 0..64 {
            let block = random_block(&mut rng);
            assert_eq!(block.validate(), Ok(()), "{block}");
        }
    }
}
