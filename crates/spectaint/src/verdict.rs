//! The per-block result of the speculative taint analysis.

use dbt_ir::InstId;
use std::fmt;

/// Why a speculative load is considered attacker-influencable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintSourceKind {
    /// The load sits behind a bypassable bound check (relaxable control
    /// dependency on a side exit) and its address is influenced by a value
    /// the bypassed guard constrains — bypassing the guard steers the load
    /// out of its architecturally-reachable range (Spectre v1 shape).
    BoundCheckBypass,
    /// The load may bypass an earlier store to the same region (relaxable
    /// memory dependency) — the speculative value can differ from the
    /// architectural one, handing the attacker a stale value (Spectre v4 /
    /// store-to-load-forwarding shape).
    StoreBypass,
}

impl TaintSourceKind {
    /// Stable lower-case label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            TaintSourceKind::BoundCheckBypass => "bound-check-bypass",
            TaintSourceKind::StoreBypass => "store-bypass",
        }
    }
}

/// One taint source: a speculative load whose result the attacker can
/// influence, together with the instruction enabling the influence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintSource {
    /// The influencable load.
    pub load: InstId,
    /// Why it is influencable.
    pub kind: TaintSourceKind,
    /// The bypassed instruction (the side exit for
    /// [`TaintSourceKind::BoundCheckBypass`], the store for
    /// [`TaintSourceKind::StoreBypass`]).
    pub cause: InstId,
}

/// A confirmed leakage gadget: a speculative memory access whose address
/// carries attacker-influenced data into the cache side channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// The transmitting access (load, store or flush) whose address is
    /// tainted and which may execute speculatively.
    pub transmitter: InstId,
    /// The taint sources reaching the transmitter's address, ascending.
    pub sources: Vec<InstId>,
}

/// The verdict of analysing one IR block.
///
/// A block is **leak-free** when no gadget was found: no attacker-influenced
/// value reaches the address of a speculative access, so no mitigation is
/// needed ([`MitigationPolicy::Selective`] leaves such blocks untouched).
///
/// [`MitigationPolicy::Selective`]: https://docs.rs/ghostbusters
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakageVerdict {
    /// Guest entry address of the analysed block.
    pub entry_pc: u64,
    /// Number of IR instructions analysed.
    pub block_len: usize,
    /// The discovered taint sources, in ascending load order.
    pub sources: Vec<TaintSource>,
    /// Every value with a non-clean taint, ascending.
    pub tainted_values: Vec<InstId>,
    /// The transmitting accesses, ascending (one per gadget).
    pub transmitters: Vec<InstId>,
    /// The confirmed gadgets, ascending by transmitter.
    pub gadgets: Vec<Gadget>,
}

impl LeakageVerdict {
    /// Returns `true` if the block cannot carry an attacker-influenced
    /// value into a speculative access.
    pub fn is_leak_free(&self) -> bool {
        self.gadgets.is_empty()
    }

    /// Renders the verdict as a stable JSON object (fixed key order, no
    /// whitespace variance), suitable for machine consumption and diffing.
    pub fn to_json(&self) -> String {
        let ids = |ids: &[InstId]| {
            let inner: Vec<String> = ids.iter().map(|id| id.index().to_string()).collect();
            format!("[{}]", inner.join(", "))
        };
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"entry_pc\": {},\n", self.entry_pc));
        out.push_str(&format!("  \"block_len\": {},\n", self.block_len));
        out.push_str(&format!("  \"leak_free\": {},\n", self.is_leak_free()));
        out.push_str("  \"sources\": [");
        for (i, source) in self.sources.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"value\": {}, \"kind\": \"{}\", \"cause\": {}}}",
                source.load.index(),
                source.kind.label(),
                source.cause.index()
            ));
        }
        out.push_str(if self.sources.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!("  \"tainted\": {},\n", ids(&self.tainted_values)));
        out.push_str(&format!("  \"transmitters\": {},\n", ids(&self.transmitters)));
        out.push_str("  \"gadgets\": [");
        for (i, gadget) in self.gadgets.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"transmitter\": {}, \"sources\": {}}}",
                gadget.transmitter.index(),
                ids(&gadget.sources)
            ));
        }
        out.push_str(if self.gadgets.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out
    }
}

impl fmt::Display for LeakageVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_leak_free() {
            return write!(
                f,
                "block @{:#x}: leak-free ({} source(s), {} tainted value(s), no transmitter)",
                self.entry_pc,
                self.sources.len(),
                self.tainted_values.len()
            );
        }
        writeln!(
            f,
            "block @{:#x}: {} gadget(s), {} source(s), {} tainted value(s)",
            self.entry_pc,
            self.gadgets.len(),
            self.sources.len(),
            self.tainted_values.len()
        )?;
        for source in &self.sources {
            writeln!(f, "  source {} ({} via {})", source.load, source.kind.label(), source.cause)?;
        }
        for gadget in &self.gadgets {
            let sources: Vec<String> = gadget.sources.iter().map(|s| s.to_string()).collect();
            writeln!(f, "  gadget: transmitter {} <- {}", gadget.transmitter, sources.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LeakageVerdict {
        LeakageVerdict {
            entry_pc: 0x1000,
            block_len: 9,
            sources: vec![TaintSource {
                load: InstId(3),
                kind: TaintSourceKind::BoundCheckBypass,
                cause: InstId(1),
            }],
            tainted_values: vec![InstId(3), InstId(4), InstId(6)],
            transmitters: vec![InstId(7)],
            gadgets: vec![Gadget { transmitter: InstId(7), sources: vec![InstId(3)] }],
        }
    }

    #[test]
    fn leak_free_reflects_gadgets() {
        let mut verdict = sample();
        assert!(!verdict.is_leak_free());
        verdict.gadgets.clear();
        assert!(verdict.is_leak_free());
    }

    #[test]
    fn json_is_stable_and_contains_the_fields() {
        let verdict = sample();
        let a = verdict.to_json();
        assert_eq!(a, verdict.to_json());
        assert!(a.contains("\"leak_free\": false"));
        assert!(a.contains("\"kind\": \"bound-check-bypass\""));
        assert!(a.contains("\"transmitter\": 7"));
    }

    #[test]
    fn display_mentions_the_gadget() {
        let text = sample().to_string();
        assert!(text.contains("gadget"));
        assert!(text.contains("v7"));
    }
}
