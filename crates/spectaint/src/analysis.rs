//! The speculative taint analysis.
//!
//! The GhostBusters poisoning analysis (crate `ghostbusters`) is
//! deliberately blanket: *every* speculative load poisons, so every
//! poisoned-address access is hardened. SPECTECTOR (Guarnieri et al.)
//! showed that speculative information flows can be characterised much more
//! precisely, and Venkman (Shen et al.) that mitigations can then be placed
//! selectively. This module is the corresponding refinement for the DBT IR:
//! it tracks **attacker influence**, not mere speculativeness.
//!
//! A speculative load is a *taint source* only when the speculation
//! mechanism actually hands the attacker a handle on its result:
//!
//! * **bound-check bypass** (Spectre v1 shape) — the load has a relaxable
//!   control dependency on a side exit *and* its address is influenced by a
//!   value that the bypassed guard constrains. Bypassing the guard then
//!   steers the load outside its architecturally-reachable range. A load
//!   whose address is unrelated to the guard reads the same location on
//!   both paths — speculative execution of it reveals nothing the
//!   architectural execution would not;
//! * **store bypass** (Spectre v4 shape) — the load has a relaxable memory
//!   dependency on a store that may actually forward to it. Address bases
//!   are resolved through the block's constant chains; a store and a load
//!   whose resolved static regions differ target distinct data-section
//!   allocations and cannot forward, so the load's speculative value equals
//!   its architectural one.
//!
//! Taint then propagates through data operands (and through loads with
//! tainted addresses: an attacker-steered address yields an
//! attacker-chosen value). A **gadget** is a speculative memory access
//! whose *address* is tainted — executing it early encodes the influenced
//! value into cache state.
//!
//! The region heuristic assumes the translator's `la`-materialised data
//! section bases denote disjoint allocations; the gadget-corpus
//! differential test (see `corpus`) validates the resulting verdicts
//! dynamically against the attack harness.

use crate::lattice::Taint;
use crate::verdict::{Gadget, LeakageVerdict, TaintSource, TaintSourceKind};
use dbt_ir::{DepGraph, DepKind, InstId, IrBlock, IrOp, Operand};
use dbt_riscv::inst::AluOp;
use dbt_riscv::Reg;
use std::collections::BTreeSet;

/// The root influencers of a value: the block inputs and opaque reads its
/// computation depends on. Constants have no roots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Roots {
    regs: BTreeSet<Reg>,
    insts: BTreeSet<InstId>,
}

impl Roots {
    fn union_with(&mut self, other: &Roots) {
        self.regs.extend(other.regs.iter().copied());
        self.insts.extend(other.insts.iter().copied());
    }

    fn intersects(&self, other: &Roots) -> bool {
        self.regs.intersection(&other.regs).next().is_some()
            || self.insts.intersection(&other.insts).next().is_some()
    }
}

/// Result of resolving an address expression through constant chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResolvedBase {
    /// Sum of the constant contributions (the static region base).
    const_part: i64,
    /// Whether any non-constant term remains (a dynamic index).
    dynamic: bool,
}

/// Per-instruction speculation facts read off the dependency graph.
#[derive(Debug, Clone, Default)]
struct SpecFacts {
    /// Side exits with a relaxable control edge into this instruction.
    bypassed_exits: Vec<InstId>,
    /// Stores with a relaxable memory edge into this instruction.
    bypassed_stores: Vec<InstId>,
}

impl SpecFacts {
    fn is_speculative(&self) -> bool {
        !self.bypassed_exits.is_empty() || !self.bypassed_stores.is_empty()
    }
}

/// The computed taint state of one block.
#[derive(Debug, Clone)]
pub struct TaintAnalysis {
    taints: Vec<Taint>,
    sources: Vec<TaintSource>,
    speculative: Vec<bool>,
}

impl TaintAnalysis {
    /// Runs the analysis on `block` under `graph`.
    pub fn run(block: &IrBlock, graph: &DepGraph) -> TaintAnalysis {
        TaintAnalysis::run_with_extra_sources(block, graph, &[])
    }

    /// Runs the analysis with additional forced taint sources (used by the
    /// monotonicity property tests: forcing extra sources must never shrink
    /// the tainted set).
    pub fn run_with_extra_sources(
        block: &IrBlock,
        graph: &DepGraph,
        extra_sources: &[InstId],
    ) -> TaintAnalysis {
        let n = block.len();
        let mut facts: Vec<SpecFacts> = vec![SpecFacts::default(); n];
        for edge in graph.edges() {
            if !edge.relaxable {
                continue;
            }
            match edge.kind {
                DepKind::Control => facts[edge.to.index()].bypassed_exits.push(edge.from),
                DepKind::Memory => facts[edge.to.index()].bypassed_stores.push(edge.from),
                _ => {}
            }
        }

        let roots = compute_roots(block);
        let mut taints: Vec<Taint> = vec![Taint::clean(); n];
        let mut sources: Vec<TaintSource> = Vec::new();

        // One forward pass reaches the fixed point: instructions are in
        // def-before-use order and taint only flows from defs to uses.
        for inst in block.insts() {
            let index = inst.id.index();
            let mut taint = Taint::clean();
            for operand in inst.op.operands() {
                if let Operand::Value(def) = operand {
                    let def_taint = taints[def.index()].clone();
                    taint.join_in_place(&def_taint);
                }
            }

            if inst.op.is_load() {
                // Bound-check bypass: the guard must constrain the address.
                let address_roots = inst
                    .op
                    .address_base()
                    .map(|base| operand_roots(&base, &roots))
                    .unwrap_or_default();
                for &exit in &facts[index].bypassed_exits {
                    let guard_roots = exit_roots(block, exit, &roots);
                    if address_roots.intersects(&guard_roots) {
                        taint.add_source(inst.id);
                        sources.push(TaintSource {
                            load: inst.id,
                            kind: TaintSourceKind::BoundCheckBypass,
                            cause: exit,
                        });
                        break;
                    }
                }
                // Store bypass: the store must be able to forward.
                for &store in &facts[index].bypassed_stores {
                    if may_forward(block, store, inst.id) {
                        taint.add_source(inst.id);
                        sources.push(TaintSource {
                            load: inst.id,
                            kind: TaintSourceKind::StoreBypass,
                            cause: store,
                        });
                        break;
                    }
                }
                // An attacker-steered address yields an attacker-chosen
                // value: a load with a tainted address taints its result
                // (already covered by the operand join above).
            }

            if extra_sources.contains(&inst.id) {
                taint.add_source(inst.id);
            }

            taints[index] = taint;
        }

        let speculative = facts.iter().map(SpecFacts::is_speculative).collect();
        TaintAnalysis { taints, sources, speculative }
    }

    /// The taint of the value produced by `id`.
    pub fn taint(&self, id: InstId) -> &Taint {
        &self.taints[id.index()]
    }

    /// Whether `id`'s value carries attacker influence.
    pub fn is_tainted(&self, id: InstId) -> bool {
        self.taints[id.index()].is_tainted()
    }

    /// Whether `id` may execute speculatively (has a relaxable in-edge).
    pub fn is_speculative(&self, id: InstId) -> bool {
        self.speculative[id.index()]
    }

    /// The discovered taint sources, in discovery (ascending load) order.
    pub fn sources(&self) -> &[TaintSource] {
        &self.sources
    }

    /// Assembles the verdict for `block`.
    pub fn verdict(&self, block: &IrBlock) -> LeakageVerdict {
        let mut gadgets = Vec::new();
        for inst in block.insts() {
            if !inst.op.is_memory() || !self.is_speculative(inst.id) {
                continue;
            }
            let Some(base) = inst.op.address_base() else { continue };
            let address_taint = match base {
                Operand::Value(def) => self.taint(def).clone(),
                _ => Taint::clean(),
            };
            if address_taint.is_tainted() {
                gadgets.push(Gadget {
                    transmitter: inst.id,
                    sources: address_taint.sources().collect(),
                });
            }
        }
        let tainted_values: Vec<InstId> =
            (0..block.len()).map(InstId).filter(|id| self.is_tainted(*id)).collect();
        LeakageVerdict {
            entry_pc: block.entry_pc(),
            block_len: block.len(),
            sources: self.sources.clone(),
            tainted_values,
            transmitters: gadgets.iter().map(|g| g.transmitter).collect(),
            gadgets,
        }
    }
}

/// Runs the taint analysis on `block` and returns its verdict.
///
/// This is the entry point the DBT engine calls once per optimised
/// translation, *before* any mitigation hardens the graph (the analysis
/// must see the original relaxable edges).
pub fn analyze(block: &IrBlock, graph: &DepGraph) -> LeakageVerdict {
    TaintAnalysis::run(block, graph).verdict(block)
}

fn compute_roots(block: &IrBlock) -> Vec<Roots> {
    let mut roots: Vec<Roots> = Vec::with_capacity(block.len());
    for inst in block.insts() {
        let mut r = Roots::default();
        match &inst.op {
            IrOp::Const(_) => {}
            IrOp::RdCycle => {
                r.insts.insert(inst.id);
            }
            IrOp::Load { base, .. } => {
                // The loaded value is an opaque read, influenced by whatever
                // influences its address.
                r.insts.insert(inst.id);
                r.union_with(&operand_roots_in(base, &roots));
            }
            op => {
                for operand in op.operands() {
                    r.union_with(&operand_roots_in(&operand, &roots));
                }
            }
        }
        roots.push(r);
    }
    roots
}

fn operand_roots_in(operand: &Operand, roots: &[Roots]) -> Roots {
    match operand {
        Operand::Imm(_) => Roots::default(),
        Operand::LiveIn(reg) => {
            let mut r = Roots::default();
            r.regs.insert(*reg);
            r
        }
        Operand::Value(def) => roots[def.index()].clone(),
    }
}

fn operand_roots(operand: &Operand, roots: &[Roots]) -> Roots {
    operand_roots_in(operand, roots)
}

fn exit_roots(block: &IrBlock, exit: InstId, roots: &[Roots]) -> Roots {
    let mut r = Roots::default();
    if let IrOp::SideExit { a, b, .. } = &block.inst(exit).op {
        r.union_with(&operand_roots_in(a, roots));
        r.union_with(&operand_roots_in(b, roots));
    }
    r
}

/// Resolves an address expression into (constant part, dynamic remainder).
fn resolve(block: &IrBlock, operand: &Operand, depth: usize) -> ResolvedBase {
    if depth == 0 {
        return ResolvedBase { const_part: 0, dynamic: true };
    }
    match operand {
        Operand::Imm(c) => ResolvedBase { const_part: *c, dynamic: false },
        Operand::LiveIn(_) => ResolvedBase { const_part: 0, dynamic: true },
        Operand::Value(def) => match &block.inst(*def).op {
            IrOp::Const(c) => ResolvedBase { const_part: *c, dynamic: false },
            IrOp::Alu { op: AluOp::Add, a, b } => {
                let ra = resolve(block, a, depth - 1);
                let rb = resolve(block, b, depth - 1);
                ResolvedBase {
                    const_part: ra.const_part.wrapping_add(rb.const_part),
                    dynamic: ra.dynamic || rb.dynamic,
                }
            }
            IrOp::Alu { op: AluOp::Sub, a, b } => {
                let ra = resolve(block, a, depth - 1);
                let rb = resolve(block, b, depth - 1);
                if rb.dynamic {
                    // A dynamic subtrahend invalidates the constant part.
                    ResolvedBase { const_part: 0, dynamic: true }
                } else {
                    ResolvedBase {
                        const_part: ra.const_part.wrapping_sub(rb.const_part),
                        dynamic: ra.dynamic,
                    }
                }
            }
            _ => ResolvedBase { const_part: 0, dynamic: true },
        },
    }
}

/// The static region an access targets: the constant contribution of its
/// address expression, or `None` when no constant base is visible.
fn region_of(block: &IrBlock, access: InstId) -> Option<i64> {
    let base = block.inst(access).op.address_base()?;
    let resolved = resolve(block, &base, 16);
    if resolved.const_part == 0 && resolved.dynamic {
        None
    } else {
        Some(resolved.const_part)
    }
}

/// Whether `store` can actually forward data to `load` — i.e. whether the
/// two may touch the same allocation.
///
/// Distinct resolved regions denote distinct data-section allocations (the
/// translator materialises array bases as constants), which in-bounds
/// indexing cannot cross. Unresolved regions stay conservative.
fn may_forward(block: &IrBlock, store: InstId, load: InstId) -> bool {
    match (region_of(block, store), region_of(block, load)) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, DfgOptions, MemWidth};
    use dbt_riscv::BranchCond;

    /// The Spectre v1 shape: guard on the index, then the dependent double
    /// load.
    fn v1_gadget_block() -> IrBlock {
        let mut b = IrBlock::new(0x100, BlockKind::Superblock { merged_blocks: 2 });
        let size = b.push(IrOp::Const(16), 0, 0);
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Geu,
                a: Operand::LiveIn(Reg::A0),
                b: Operand::Value(size),
                target: 0x900,
            },
            4,
            1,
        );
        let buffer = b.push(IrOp::Const(0x3000), 8, 2);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::LiveIn(Reg::A0) },
            8,
            2,
        );
        let secret = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            12,
            3,
        );
        let probe = b.push(IrOp::Const(0x8000), 16, 4);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(secret) },
            16,
            4,
        );
        b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            20,
            5,
        );
        b.push(IrOp::Jump { target: 0x24 }, 24, 6);
        b
    }

    /// A guard whose condition is unrelated to the load addresses: the
    /// blanket analysis flags it, the taint analysis must not.
    fn v1_benign_block() -> IrBlock {
        let mut b = IrBlock::new(0x200, BlockKind::Superblock { merged_blocks: 2 });
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Ne,
                a: Operand::LiveIn(Reg::A5), // a mode flag, not an index
                b: Operand::Imm(0),
                target: 0x900,
            },
            0,
            0,
        );
        let table = b.push(IrOp::Const(0x3000), 4, 1);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(table), b: Operand::LiveIn(Reg::A0) },
            4,
            1,
        );
        let v = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr1), offset: 0 },
            8,
            2,
        );
        let lut = b.push(IrOp::Const(0x8000), 12, 3);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(lut), b: Operand::Value(v) },
            12,
            3,
        );
        b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            16,
            4,
        );
        b.push(IrOp::Jump { target: 0x20 }, 20, 5);
        b
    }

    /// The Spectre v4 shape: a store and a load on the same region, with
    /// the loaded value forming a later address.
    fn v4_gadget_block() -> IrBlock {
        let mut b = IrBlock::new(0x300, BlockKind::Basic);
        let addr_buf = b.push(IrOp::Const(0x2000), 0, 0);
        let slot = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(addr_buf), b: Operand::LiveIn(Reg::A3) },
            4,
            1,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::LiveIn(Reg::A4),
                base: Operand::Value(slot),
                offset: 0,
            },
            8,
            2,
        );
        let a = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr_buf), offset: 0 },
            12,
            3,
        );
        let buffer = b.push(IrOp::Const(0x3000), 16, 4);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::Value(a) },
            16,
            4,
        );
        b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            20,
            5,
        );
        b.push(IrOp::Halt, 24, 6);
        b
    }

    /// A store and loads on provably distinct regions: the blanket analysis
    /// still relaxes (alias unknown at the `DepGraph` level), but no
    /// forwarding is possible, so nothing is influencable.
    fn v4_benign_block() -> IrBlock {
        let mut b = IrBlock::new(0x400, BlockKind::Basic);
        let hist = b.push(IrOp::Const(0x2000), 0, 0);
        let slot = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(hist), b: Operand::LiveIn(Reg::A3) },
            4,
            1,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::LiveIn(Reg::A4),
                base: Operand::Value(slot),
                offset: 0,
            },
            8,
            2,
        );
        let idx = b.push(IrOp::Const(0x5000), 12, 3);
        let idx_addr = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(idx), b: Operand::LiveIn(Reg::A5) },
            12,
            3,
        );
        let x = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(idx_addr), offset: 0 },
            16,
            4,
        );
        let hist_addr = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(hist), b: Operand::Value(x) },
            20,
            5,
        );
        b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(hist_addr), offset: 0 },
            24,
            6,
        );
        b.push(IrOp::Halt, 28, 7);
        b
    }

    fn verdict_of(block: &IrBlock) -> LeakageVerdict {
        let graph = DepGraph::build(block, DfgOptions::aggressive());
        analyze(block, &graph)
    }

    #[test]
    fn v1_gadget_is_found() {
        let block = v1_gadget_block();
        let verdict = verdict_of(&block);
        assert!(!verdict.is_leak_free(), "{verdict}");
        assert_eq!(verdict.gadgets.len(), 1);
        let probe_load = *block.loads().last().unwrap();
        assert_eq!(verdict.gadgets[0].transmitter, probe_load);
        assert!(verdict.sources.iter().any(|s| s.kind == TaintSourceKind::BoundCheckBypass));
    }

    #[test]
    fn guard_unrelated_to_the_address_is_not_a_source() {
        let block = v1_benign_block();
        let verdict = verdict_of(&block);
        assert!(verdict.is_leak_free(), "{verdict}");
        assert!(verdict.sources.is_empty());
        // … while the blanket poison analysis would flag the second load
        // (speculative, address derived from a speculative load).
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = TaintAnalysis::run(&block, &graph);
        let second_load = *block.loads().last().unwrap();
        assert!(analysis.is_speculative(second_load));
    }

    #[test]
    fn v4_gadget_is_found() {
        let block = v4_gadget_block();
        let verdict = verdict_of(&block);
        assert!(!verdict.is_leak_free(), "{verdict}");
        assert!(verdict.sources.iter().any(|s| s.kind == TaintSourceKind::StoreBypass));
        let transmitter = *block.loads().last().unwrap();
        assert!(verdict.transmitters.contains(&transmitter));
    }

    #[test]
    fn distinct_regions_cannot_forward() {
        let block = v4_benign_block();
        let verdict = verdict_of(&block);
        // The same-region store→load pair (hist) is a source, but its value
        // never forms an address, so there is no gadget.
        assert!(verdict.is_leak_free(), "{verdict}");
        assert!(verdict.sources.iter().all(|s| s.kind == TaintSourceKind::StoreBypass));
    }

    #[test]
    fn no_speculation_means_no_taint() {
        for block in [v1_gadget_block(), v1_benign_block(), v4_gadget_block(), v4_benign_block()] {
            let graph = DepGraph::build(&block, DfgOptions::no_speculation());
            let verdict = analyze(&block, &graph);
            assert!(verdict.is_leak_free());
            assert!(verdict.sources.is_empty());
            assert!(verdict.tainted_values.is_empty());
        }
    }

    #[test]
    fn taint_propagates_through_the_alu_chain() {
        let block = v1_gadget_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = TaintAnalysis::run(&block, &graph);
        let secret_load = block.loads()[0];
        assert!(analysis.is_tainted(secret_load));
        // addr2 = probe + secret is tainted by the secret load.
        let addr2 = InstId(block.loads()[1].index() - 1);
        assert!(analysis.taint(addr2).sources().any(|s| s == secret_load));
    }

    #[test]
    fn extra_sources_grow_the_tainted_set_monotonically() {
        let block = v1_benign_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let plain = TaintAnalysis::run(&block, &graph);
        let first_load = block.loads()[0];
        let forced = TaintAnalysis::run_with_extra_sources(&block, &graph, &[first_load]);
        for id in (0..block.len()).map(InstId) {
            assert!(
                plain.taint(id).le(forced.taint(id)),
                "taint of {id} must only grow when sources are added"
            );
        }
        assert!(forced.is_tainted(first_load));
    }
}
