//! **spectaint** — speculative taint / information-flow analysis over the
//! DBT IR, in the spirit of SPECTECTOR (Guarnieri et al.) and Venkman
//! (Shen et al.).
//!
//! The GhostBusters poisoning analysis (crate `ghostbusters`) hardens every
//! detected risky pattern: any speculative load poisons, any
//! poisoned-address access is constrained, and the slowdown is paid even in
//! blocks that cannot leak. This crate computes the precise question
//! instead: **can this block carry an attacker-influenced value into the
//! address of a speculative access?**
//!
//! * [`lattice`] — the taint join-semilattice (sets of taint sources);
//! * [`analysis`] — the analysis itself: taint sources are speculative
//!   loads the attacker has a real handle on (a bound check whose bypass
//!   steers the address, or a bypassed store that can actually forward);
//!   taint propagates through the data-flow graph to *transmitters*
//!   (address-forming operands of speculative memory accesses);
//! * [`verdict`] — the per-block [`LeakageVerdict`]: sources, tainted
//!   values, transmitters and confirmed [`Gadget`]s, with stable JSON;
//! * [`corpus`] — seeded generation of gadget/benign harness programs and
//!   random IR blocks, the ground truth for the differential tests.
//!
//! The verdict feeds `MitigationPolicy::Selective`: blocks with gadgets
//! fall back to the fine-grained hardening, leak-free blocks keep their
//! full speculation freedom.
//!
//! # Example
//!
//! ```
//! use dbt_ir::{BlockKind, DepGraph, DfgOptions, IrBlock, IrOp, MemWidth, Operand};
//! use dbt_riscv::{BranchCond, Reg};
//! use spectaint::analyze;
//!
//! // if (a0 < 16) { v = buffer[a0]; probe[v]; }  — the v1 gadget shape.
//! let mut block = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
//! let size = block.push(IrOp::Const(16), 0, 0);
//! block.push(IrOp::SideExit {
//!     cond: BranchCond::Geu,
//!     a: Operand::LiveIn(Reg::A0),
//!     b: Operand::Value(size),
//!     target: 0x900,
//! }, 4, 1);
//! let buffer = block.push(IrOp::Const(0x3000), 8, 2);
//! let addr = block.push(IrOp::Alu {
//!     op: dbt_riscv::inst::AluOp::Add,
//!     a: Operand::Value(buffer),
//!     b: Operand::LiveIn(Reg::A0),
//! }, 8, 2);
//! let v = block.push(IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr), offset: 0 }, 12, 3);
//! let probe = block.push(IrOp::Const(0x8000), 16, 4);
//! let addr2 = block.push(IrOp::Alu {
//!     op: dbt_riscv::inst::AluOp::Add,
//!     a: Operand::Value(probe),
//!     b: Operand::Value(v),
//! }, 16, 4);
//! block.push(IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 }, 20, 5);
//! block.push(IrOp::Jump { target: 0x24 }, 24, 6);
//!
//! let graph = DepGraph::build(&block, DfgOptions::aggressive());
//! let verdict = analyze(&block, &graph);
//! assert!(!verdict.is_leak_free());
//! assert_eq!(verdict.gadgets.len(), 1);
//! ```

pub mod analysis;
pub mod corpus;
pub mod lattice;
pub mod verdict;

pub use analysis::{analyze, TaintAnalysis};
pub use corpus::{generate as generate_corpus, CorpusProgram, PlantedShape, XorShift64};
pub use lattice::Taint;
pub use verdict::{Gadget, LeakageVerdict, TaintSource, TaintSourceKind};
