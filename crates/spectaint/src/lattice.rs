//! The taint lattice: which speculation sources influence a value.
//!
//! Each IR value carries an element of a finite join-semilattice: the set of
//! *taint sources* (instruction ids of attacker-influencable speculative
//! loads) whose result may flow into it. `⊥` is the empty set ("clean");
//! join is set union. The lattice has finite height (bounded by the number
//! of instructions in the block), so the forward propagation in
//! [`TaintAnalysis`](crate::TaintAnalysis) reaches its fixed point in one
//! pass over the def-before-use-ordered instruction list.

use dbt_ir::InstId;
use std::collections::BTreeSet;
use std::fmt;

/// A lattice element: the set of taint sources influencing one value.
///
/// Sources are kept in a [`BTreeSet`] so iteration order — and therefore
/// every rendered verdict — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Taint {
    sources: BTreeSet<InstId>,
}

impl Taint {
    /// The bottom element: no attacker influence.
    pub fn clean() -> Taint {
        Taint::default()
    }

    /// The element tainted by exactly one source.
    pub fn source(id: InstId) -> Taint {
        let mut sources = BTreeSet::new();
        sources.insert(id);
        Taint { sources }
    }

    /// Returns `true` if no source influences the value.
    pub fn is_clean(&self) -> bool {
        self.sources.is_empty()
    }

    /// Returns `true` if at least one source influences the value.
    pub fn is_tainted(&self) -> bool {
        !self.sources.is_empty()
    }

    /// The least upper bound (set union) of `self` and `other`.
    pub fn join(&self, other: &Taint) -> Taint {
        Taint { sources: self.sources.union(&other.sources).copied().collect() }
    }

    /// Joins `other` into `self` in place. Returns `true` if `self` grew.
    pub fn join_in_place(&mut self, other: &Taint) -> bool {
        let before = self.sources.len();
        self.sources.extend(other.sources.iter().copied());
        self.sources.len() != before
    }

    /// Adds one source. Returns `true` if it was not already present.
    pub fn add_source(&mut self, id: InstId) -> bool {
        self.sources.insert(id)
    }

    /// Partial order of the lattice: `self ⊑ other`.
    pub fn le(&self, other: &Taint) -> bool {
        self.sources.is_subset(&other.sources)
    }

    /// The sources, in ascending instruction order.
    pub fn sources(&self) -> impl Iterator<Item = InstId> + '_ {
        self.sources.iter().copied()
    }

    /// Number of distinct sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}

impl fmt::Display for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        f.write_str("tainted{")?;
        for (i, source) in self.sources.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{source}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[usize]) -> Taint {
        let mut taint = Taint::clean();
        for &id in ids {
            taint.add_source(InstId(id));
        }
        taint
    }

    #[test]
    fn join_is_union() {
        assert_eq!(t(&[1]).join(&t(&[2])), t(&[1, 2]));
        assert_eq!(t(&[]).join(&t(&[])), Taint::clean());
    }

    #[test]
    fn join_laws_hold_on_samples() {
        // Idempotent, commutative, associative, ⊥ is the identity.
        let samples = [t(&[]), t(&[0]), t(&[1, 3]), t(&[0, 1, 2]), t(&[7])];
        for a in &samples {
            assert_eq!(a.join(a), *a);
            assert_eq!(a.join(&Taint::clean()), *a);
            for b in &samples {
                assert_eq!(a.join(b), b.join(a));
                assert!(a.le(&a.join(b)), "join is an upper bound");
                for c in &samples {
                    assert_eq!(a.join(&b.join(c)), a.join(b).join(c));
                }
            }
        }
    }

    #[test]
    fn partial_order_is_subset() {
        assert!(t(&[1]).le(&t(&[1, 2])));
        assert!(!t(&[1, 2]).le(&t(&[1])));
        assert!(Taint::clean().le(&t(&[5])));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(t(&[]).to_string(), "clean");
        assert_eq!(t(&[3, 1]).to_string(), "tainted{v1,v3}");
    }
}
