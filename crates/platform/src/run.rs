//! Cross-policy comparison of one workload, driven by [`Session`] runs.
//!
//! The historic `run_program` / `run_with_policy` free functions and the
//! five hardcoded cycle fields of `PolicyComparison` are gone: runs go
//! through the [`Session`] builder, and the comparison is data-driven over
//! whatever policy axis it was measured with (by default
//! [`MitigationPolicy::ALL`]).

use crate::processor::PlatformError;
use crate::session::Session;
use dbt_engine::TranslationService;
use dbt_riscv::Program;
use ghostbusters::MitigationPolicy;
use std::fmt;
use std::sync::Arc;

/// Cycle counts of one workload under a policy axis, relative to the
/// unprotected baseline — the rows of the paper's Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparison {
    /// Workload name.
    pub name: String,
    /// `(policy, cycles)` per measured policy, in measurement order.
    pub cycles: Vec<(MitigationPolicy, u64)>,
}

impl PolicyComparison {
    /// Runs `program` under every policy in [`MitigationPolicy::ALL`],
    /// each on a fresh platform.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlatformError`].
    pub fn measure(name: &str, program: &Program) -> Result<PolicyComparison, PlatformError> {
        PolicyComparison::measure_policies(name, program, &MitigationPolicy::ALL, None)
    }

    /// [`PolicyComparison::measure`] with a shared [`TranslationService`],
    /// so repeated measurements of the same program reuse translations.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlatformError`].
    pub fn measure_with(
        name: &str,
        program: &Program,
        service: &Arc<TranslationService>,
    ) -> Result<PolicyComparison, PlatformError> {
        PolicyComparison::measure_policies(name, program, &MitigationPolicy::ALL, Some(service))
    }

    /// Runs `program` under an explicit policy axis, optionally sharing a
    /// translation service across the runs.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlatformError`].
    pub fn measure_policies(
        name: &str,
        program: &Program,
        policies: &[MitigationPolicy],
        service: Option<&Arc<TranslationService>>,
    ) -> Result<PolicyComparison, PlatformError> {
        let mut cycles = Vec::with_capacity(policies.len());
        for &policy in policies {
            let mut builder = Session::builder().program(program).policy(policy);
            if let Some(service) = service {
                builder = builder.service(service);
            }
            cycles.push((policy, builder.run()?.cycles));
        }
        Ok(PolicyComparison { name: name.to_string(), cycles })
    }

    /// The measured policy axis, in measurement order.
    pub fn policies(&self) -> impl Iterator<Item = MitigationPolicy> + '_ {
        self.cycles.iter().map(|(policy, _)| *policy)
    }

    /// Cycles measured for `policy`, if it is on the axis.
    pub fn cycles_for(&self, policy: MitigationPolicy) -> Option<u64> {
        self.cycles.iter().find(|(p, _)| *p == policy).map(|(_, c)| *c)
    }

    /// Cycles of the unprotected baseline (0 if it was not measured).
    pub fn unprotected_cycles(&self) -> u64 {
        self.cycles_for(MitigationPolicy::Unprotected).unwrap_or(0)
    }

    /// Slowdown of a policy relative to the unprotected baseline
    /// (1.0 = no slowdown; `NaN` if either the policy or the unprotected
    /// baseline is absent from the measured axis).
    ///
    /// A measured baseline is clamped to at least one cycle, so a
    /// degenerate measurement can never divide by zero into `inf`/`NaN`.
    pub fn slowdown(&self, policy: MitigationPolicy) -> f64 {
        match (self.cycles_for(policy), self.cycles_for(MitigationPolicy::Unprotected)) {
            (Some(cycles), Some(baseline)) => cycles as f64 / baseline.max(1) as f64,
            _ => f64::NAN,
        }
    }
}

impl fmt::Display for PolicyComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14} unsafe={:>10}", self.name, self.unprotected_cycles())?;
        for policy in self.policies() {
            if policy == MitigationPolicy::Unprotected {
                continue;
            }
            write!(f, " {}={:>6.1}%", policy.label(), self.slowdown(policy) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, Reg};

    fn tiny_program() -> Program {
        let mut asm = Assembler::new();
        let a = asm.alloc_data_u64("a", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = asm.alloc_data("out", 8);
        let head = asm.new_label();
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, 0);
        asm.la(Reg::S2, a);
        asm.li(Reg::S3, 8);
        asm.bind(head);
        asm.slli(Reg::T0, Reg::S0, 3);
        asm.add(Reg::T0, Reg::S2, Reg::T0);
        asm.ld(Reg::T1, Reg::T0, 0);
        asm.add(Reg::S1, Reg::S1, Reg::T1);
        asm.addi(Reg::S0, Reg::S0, 1);
        asm.blt(Reg::S0, Reg::S3, head);
        asm.la(Reg::T0, out);
        asm.sd(Reg::S1, Reg::T0, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn comparison_covers_all_policies() {
        let program = tiny_program();
        let comparison = PolicyComparison::measure("tiny", &program).unwrap();
        assert_eq!(comparison.cycles.len(), MitigationPolicy::ALL.len());
        assert!(comparison.unprotected_cycles() > 0);
        assert!((comparison.slowdown(MitigationPolicy::Unprotected) - 1.0).abs() < 1e-12);
        assert!(comparison.slowdown(MitigationPolicy::NoSpeculation) >= 1.0);
        let text = comparison.to_string();
        assert!(text.contains("tiny"));
        for policy in &MitigationPolicy::ALL[1..] {
            assert!(text.contains(policy.label()), "missing column {policy}: {text}");
        }
    }

    #[test]
    fn degenerate_baselines_never_divide_by_zero() {
        let comparison = PolicyComparison {
            name: "degenerate".into(),
            cycles: vec![(MitigationPolicy::Unprotected, 0), (MitigationPolicy::Fence, 100)],
        };
        let slowdown = comparison.slowdown(MitigationPolicy::Fence);
        assert!(slowdown.is_finite(), "clamped baseline must keep slowdowns finite");
        assert_eq!(slowdown, 100.0);
        assert!(comparison.slowdown(MitigationPolicy::Selective).is_nan(), "unmeasured policy");
        // A missing baseline is NaN, not a plausible-looking raw ratio.
        let no_baseline = PolicyComparison {
            name: "no-baseline".into(),
            cycles: vec![(MitigationPolicy::Fence, 100)],
        };
        assert!(no_baseline.slowdown(MitigationPolicy::Fence).is_nan(), "unmeasured baseline");
    }

    #[test]
    fn measure_with_a_shared_service_agrees_with_fresh_runs() {
        let program = tiny_program();
        let fresh = PolicyComparison::measure("tiny", &program).unwrap();
        let service = TranslationService::new();
        let warm_a = PolicyComparison::measure_with("tiny", &program, &service).unwrap();
        let warm_b = PolicyComparison::measure_with("tiny", &program, &service).unwrap();
        assert_eq!(fresh, warm_a);
        assert_eq!(fresh, warm_b);
        let stats = service.stats();
        assert!(stats.hits > 0, "the second measurement must reuse the memo: {stats:?}");
    }

    #[test]
    fn sessions_produce_the_same_architectural_result_under_every_policy() {
        let program = tiny_program();
        for policy in MitigationPolicy::ALL {
            let mut session = Session::builder().program(&program).policy(policy).build().unwrap();
            let summary = session.run().unwrap();
            assert!(summary.halted);
            assert_eq!(session.load_symbol_u64("out").unwrap(), 36);
        }
    }
}
