//! Convenience helpers for the evaluation harness: run one program under
//! one or several mitigation policies and compare cycle counts.

use crate::processor::{DbtProcessor, PlatformConfig, PlatformError, RunSummary};
use dbt_riscv::Program;
use ghostbusters::MitigationPolicy;
use std::fmt;

/// Runs `program` on a freshly constructed platform with `config`.
///
/// # Errors
///
/// Propagates any [`PlatformError`] from construction or execution.
pub fn run_program(program: &Program, config: PlatformConfig) -> Result<RunSummary, PlatformError> {
    let mut processor = DbtProcessor::new(program, config)?;
    processor.run()
}

/// Runs `program` under a given mitigation policy with the default platform
/// parameters.
///
/// # Errors
///
/// Propagates any [`PlatformError`] from construction or execution.
pub fn run_with_policy(
    program: &Program,
    policy: MitigationPolicy,
) -> Result<RunSummary, PlatformError> {
    run_program(program, PlatformConfig::for_policy(policy))
}

/// Cycle counts of one workload under every mitigation policy, relative to
/// the unprotected baseline — the rows of the paper's Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparison {
    /// Workload name.
    pub name: String,
    /// Cycles of the unprotected (unsafe) run.
    pub unprotected_cycles: u64,
    /// Cycles with the verdict-gated selective countermeasure.
    pub selective_cycles: u64,
    /// Cycles with the fine-grained countermeasure ("our approach").
    pub fine_grained_cycles: u64,
    /// Cycles with the fence-on-detection countermeasure.
    pub fence_cycles: u64,
    /// Cycles with speculation disabled.
    pub no_speculation_cycles: u64,
}

impl PolicyComparison {
    /// Runs `program` under every policy.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlatformError`].
    pub fn measure(name: &str, program: &Program) -> Result<PolicyComparison, PlatformError> {
        Ok(PolicyComparison {
            name: name.to_string(),
            unprotected_cycles: run_with_policy(program, MitigationPolicy::Unprotected)?.cycles,
            selective_cycles: run_with_policy(program, MitigationPolicy::Selective)?.cycles,
            fine_grained_cycles: run_with_policy(program, MitigationPolicy::FineGrained)?.cycles,
            fence_cycles: run_with_policy(program, MitigationPolicy::Fence)?.cycles,
            no_speculation_cycles: run_with_policy(program, MitigationPolicy::NoSpeculation)?
                .cycles,
        })
    }

    /// Slowdown of a policy relative to the unprotected baseline
    /// (1.0 = no slowdown).
    pub fn slowdown(&self, policy: MitigationPolicy) -> f64 {
        let cycles = match policy {
            MitigationPolicy::Unprotected => self.unprotected_cycles,
            MitigationPolicy::Selective => self.selective_cycles,
            MitigationPolicy::FineGrained => self.fine_grained_cycles,
            MitigationPolicy::Fence => self.fence_cycles,
            MitigationPolicy::NoSpeculation => self.no_speculation_cycles,
        };
        cycles as f64 / self.unprotected_cycles as f64
    }
}

impl fmt::Display for PolicyComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} unsafe={:>10} selective={:>6.1}% our-approach={:>6.1}% fence={:>6.1}% no-spec={:>6.1}%",
            self.name,
            self.unprotected_cycles,
            self.slowdown(MitigationPolicy::Selective) * 100.0,
            self.slowdown(MitigationPolicy::FineGrained) * 100.0,
            self.slowdown(MitigationPolicy::Fence) * 100.0,
            self.slowdown(MitigationPolicy::NoSpeculation) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, Reg};

    fn tiny_program() -> Program {
        let mut asm = Assembler::new();
        let a = asm.alloc_data_u64("a", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = asm.alloc_data("out", 8);
        let head = asm.new_label();
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, 0);
        asm.la(Reg::S2, a);
        asm.li(Reg::S3, 8);
        asm.bind(head);
        asm.slli(Reg::T0, Reg::S0, 3);
        asm.add(Reg::T0, Reg::S2, Reg::T0);
        asm.ld(Reg::T1, Reg::T0, 0);
        asm.add(Reg::S1, Reg::S1, Reg::T1);
        asm.addi(Reg::S0, Reg::S0, 1);
        asm.blt(Reg::S0, Reg::S3, head);
        asm.la(Reg::T0, out);
        asm.sd(Reg::S1, Reg::T0, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn comparison_covers_all_policies() {
        let program = tiny_program();
        let comparison = PolicyComparison::measure("tiny", &program).unwrap();
        assert!(comparison.unprotected_cycles > 0);
        assert!((comparison.slowdown(MitigationPolicy::Unprotected) - 1.0).abs() < 1e-12);
        assert!(comparison.slowdown(MitigationPolicy::NoSpeculation) >= 1.0);
        let text = comparison.to_string();
        assert!(text.contains("tiny"));
    }

    #[test]
    fn run_with_policy_produces_same_architectural_result() {
        let program = tiny_program();
        for policy in MitigationPolicy::ALL {
            let summary = run_with_policy(&program, policy).unwrap();
            assert!(summary.halted);
        }
    }
}
