//! The content-addressed run-summary memo: whole simulated runs, cached.
//!
//! The [`TranslationService`](crate::TranslationService) already memoizes
//! *translations* across runs, but a repeated identical scenario still pays
//! the full simulation: every block is re-executed cycle by cycle. A run,
//! however, is as pure as a compile — the platform is a deterministic
//! simulator, so the observables of a run are a function of exactly two
//! inputs: the guest program bytes and the platform configuration. The
//! [`RunMemo`] closes that gap with a content-addressed cache:
//!
//! * the **key** ([`RunKey`]) is `(program fingerprint, config
//!   fingerprint)` — the config fingerprint covers the mitigation policy,
//!   every DBT and core parameter (speculation options, issue width, cache
//!   geometry, MCB capacity, rollback penalty) and the block budget, so two
//!   equal keys describe byte-identical simulations;
//! * the **value** ([`CachedRun`]) is the [`RunSummary`] plus the
//!   mitigation pattern count and (for attack programs) the bytes the
//!   side channel recovered — everything a lab report needs from a run;
//! * each key resolves to exactly **one simulation process-wide**: late
//!   askers block on the winner's `OnceLock` slot, so the hit/miss
//!   counters are deterministic for a given job list regardless of how
//!   many clients and threads demand it.
//!
//! The memo is the second cache level of the `dbt-serve` daemon (the
//! translation service being the first): a fleet of clients submitting the
//! same scenarios pays one simulation per distinct scenario, and every
//! repeat is answered from the memo.
//!
//! With a durable tier attached ([`RunMemo::with_persist`]), a miss
//! consults the on-disk store before simulating and publishes fresh
//! results behind the write: a restarted daemon answers its old working
//! set from disk without simulating anything. The hit/miss counters are
//! **unchanged** by the tier — a disk hit still counts as a memo miss
//! (the in-memory slot had to be filled), so a given job list produces
//! byte-identical stats whatever the disk warmth; only the persist
//! store's own counters (and the simulation count) reveal the tier.

use crate::processor::RunSummary;
use dbt_persist::codec::{ByteReader, ByteWriter};
use dbt_persist::PersistStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry kind the memo uses in the durable store.
const RUN_KIND: &str = "run";

/// Payload format version inside a `run` entry (the store frames and
/// checksums around it; this versions the fields below).
const RUN_PAYLOAD_VERSION: u8 = 1;

/// The durable-store key: both fingerprints, concatenated as hex.
fn run_key_hex(key: RunKey) -> String {
    format!("{:016x}{:016x}", key.program, key.config)
}

/// Binary payload of one cached run (decoded by [`decode_cached_run`]).
fn encode_cached_run(run: &CachedRun) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(RUN_PAYLOAD_VERSION);
    w.put_u64(run.summary.cycles);
    w.put_u64(run.summary.blocks_executed);
    w.put_u64(run.summary.rollbacks);
    w.put_bool(run.summary.halted);
    w.put_u64(run.summary.guest_insts);
    w.put_usize(run.patterns);
    match &run.recovered {
        None => w.put_bool(false),
        Some(bytes) => {
            w.put_bool(true);
            w.put_bytes(bytes);
        }
    }
    w.finish()
}

/// Total decode of a `run` payload; `None` means the entry is torn or
/// foreign and must be quarantined and recomputed.
fn decode_cached_run(bytes: &[u8]) -> Option<CachedRun> {
    let mut r = ByteReader::new(bytes);
    if r.u8()? != RUN_PAYLOAD_VERSION {
        return None;
    }
    let summary = RunSummary {
        cycles: r.u64()?,
        blocks_executed: r.u64()?,
        rollbacks: r.u64()?,
        halted: r.bool()?,
        guest_insts: r.u64()?,
    };
    let patterns = r.usize()?;
    let recovered = if r.bool()? { Some(r.bytes()?.to_vec()) } else { None };
    r.done().then_some(CachedRun { summary, patterns, recovered })
}

/// Content address of one run: program fingerprint × config fingerprint.
///
/// Built by [`RunKey::new`] from the actual program and configuration, so
/// a key cannot be constructed from stale inputs by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// [`Program::fingerprint`](dbt_riscv::Program::fingerprint) of the
    /// guest program.
    pub program: u64,
    /// [`PlatformConfig::fingerprint`](crate::PlatformConfig::fingerprint)
    /// of the platform configuration.
    pub config: u64,
}

impl RunKey {
    /// The content address of running `program` under `config`.
    pub fn new(program: &dbt_riscv::Program, config: &crate::PlatformConfig) -> RunKey {
        RunKey { program: program.fingerprint(), config: config.fingerprint() }
    }
}

/// Everything a cached run preserves about the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRun {
    /// The run summary (cycles, blocks, rollbacks, halted, guest insts).
    pub summary: RunSummary,
    /// Spectre patterns reported by the GhostBusters analysis.
    pub patterns: usize,
    /// Bytes read back from the guest's `recovered` symbol after the run
    /// (`None` for programs without a planted secret).
    pub recovered: Option<Vec<u8>>,
}

/// Snapshot of the memo counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Runs answered from the memo.
    pub hits: u64,
    /// Runs that had to simulate (equals the number of distinct keys asked
    /// for process-wide, while the working set fits the capacity bound).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to honour the capacity bound.
    pub evictions: u64,
}

impl MemoStats {
    /// Fraction of asks served from the memo, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Stable single-line JSON serialisation (fixed key order), used by the
    /// daemon's `stats` response.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"evictions\": {}}}",
            self.hits, self.misses, self.entries, self.evictions
        )
    }

    /// Mirrors this snapshot into `registry` as the `dbt_runmemo_*`
    /// metric families. Called at scrape time so the Prometheus
    /// exposition and the `stats` JSON agree exactly on the same
    /// snapshot.
    pub fn export(&self, registry: &dbt_obs::MetricsRegistry) {
        registry.counter("dbt_runmemo_hits_total", "Runs answered from the memo.").set(self.hits);
        registry.counter("dbt_runmemo_misses_total", "Runs that had to simulate.").set(self.misses);
        registry
            .gauge("dbt_runmemo_entries", "Run-summary entries currently resident.")
            .set(self.entries as i64);
        registry
            .counter(
                "dbt_runmemo_evictions_total",
                "Run-summary entries evicted to honour the capacity bound.",
            )
            .set(self.evictions);
    }
}

/// One memo slot: filled exactly once, shared between waiting threads,
/// with a last-use tick for LRU eviction.
#[derive(Debug, Default)]
struct MemoSlot {
    cell: OnceLock<Result<CachedRun, String>>,
    last_used: AtomicU64,
}

type Slot = Arc<MemoSlot>;

/// Default bound on resident entries. Entries are tiny (a summary, two
/// counters and at most a secret's worth of bytes), so the bound is far
/// above any standard sweep — it exists so a daemon facing an unbounded
/// scenario space (ad-hoc program uploads) cannot grow without limit.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

/// The content-addressed, thread-safe run-summary memo.
///
/// The memo is bounded: beyond the capacity, the least recently used
/// entry is evicted (the same scheme the `TranslationService` uses at
/// program granularity). The hit/miss counters stay deterministic for a
/// given job list as long as the distinct-key working set fits the
/// capacity — once eviction engages under concurrency, the victim depends
/// on thread timing and evicted keys re-miss.
///
/// ```
/// use dbt_platform::{CachedRun, RunKey, RunMemo, RunSummary};
///
/// let memo = RunMemo::new();
/// let key = RunKey { program: 1, config: 2 };
/// let run = CachedRun {
///     summary: RunSummary {
///         cycles: 100,
///         blocks_executed: 3,
///         rollbacks: 0,
///         halted: true,
///         guest_insts: 12,
///     },
///     patterns: 0,
///     recovered: None,
/// };
/// let first = memo.get_or_run(key, || Ok(run.clone())).unwrap();
/// let second = memo.get_or_run(key, || panic!("must not re-simulate")).unwrap();
/// assert_eq!(first, second);
/// assert_eq!((memo.stats().hits, memo.stats().misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct RunMemo {
    capacity: usize,
    slots: Mutex<HashMap<RunKey, Slot>>,
    persist: Option<Arc<PersistStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
}

impl Default for RunMemo {
    fn default() -> RunMemo {
        RunMemo {
            capacity: DEFAULT_MEMO_CAPACITY,
            slots: Mutex::new(HashMap::new()),
            persist: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }
}

impl RunMemo {
    /// An empty memo with the default capacity, behind an [`Arc`], ready
    /// to share across threads.
    pub fn new() -> Arc<RunMemo> {
        RunMemo::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// A memo bounded to `capacity` resident entries (least recently used
    /// entries are evicted beyond that).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Arc<RunMemo> {
        assert!(capacity >= 1, "the run memo needs room for at least one entry");
        Arc::new(RunMemo { capacity, ..RunMemo::default() })
    }

    /// [`RunMemo::with_capacity`] plus a durable tier: misses consult
    /// `persist` before simulating, fresh successful results are
    /// published behind the write, and entries that fail to decode are
    /// quarantined and recomputed. Failed runs are memoized in memory
    /// only — an error is never written to disk.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_persist(capacity: usize, persist: Arc<PersistStore>) -> Arc<RunMemo> {
        assert!(capacity >= 1, "the run memo needs room for at least one entry");
        Arc::new(RunMemo { capacity, persist: Some(persist), ..RunMemo::default() })
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            entries: self.slots.lock().expect("run memo poisoned").len(),
            evictions: self.evictions.load(Ordering::SeqCst),
        }
    }

    /// The slot for `key`, creating it (and evicting the least recently
    /// used *other* entry if the capacity bound is exceeded) as needed.
    fn slot(&self, key: RunKey) -> Slot {
        let mut slots = self.slots.lock().expect("run memo poisoned");
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::clone(slots.entry(key).or_default());
        slot.last_used.store(tick, Ordering::SeqCst);
        if slots.len() > self.capacity {
            let victim = slots
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, s)| (s.last_used.load(Ordering::SeqCst), k.program, k.config))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                slots.remove(&victim);
                self.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        slot
    }

    /// Returns the cached run for `key`, simulating it (exactly once
    /// process-wide, via `run`) if it is not resident yet. With a durable
    /// tier attached, the disk is consulted before `run` — a valid disk
    /// entry fills the slot without simulating (still counted as a memo
    /// miss, see the module docs), and a fresh result is published to
    /// disk behind the write.
    ///
    /// Failed runs are memoized too: a scenario that errors once errors
    /// identically — and cheaply — on every repeat.
    ///
    /// # Errors
    ///
    /// Returns the (memoized) error of the failing simulation.
    pub fn get_or_run(
        &self,
        key: RunKey,
        run: impl FnOnce() -> Result<CachedRun, String>,
    ) -> Result<CachedRun, String> {
        let slot = self.slot(key);
        let mut computed = false;
        let result = slot
            .cell
            .get_or_init(|| {
                computed = true;
                if let Some(tier) = &self.persist {
                    if let Some(cached) = read_through(tier, key) {
                        return Ok(cached);
                    }
                }
                let result = run();
                if let (Some(tier), Ok(cached)) = (&self.persist, &result) {
                    tier.put(RUN_KIND, &run_key_hex(key), &encode_cached_run(cached));
                }
                result
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::SeqCst);
        } else {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
        result
    }
}

/// The disk side of a memo miss: a framed entry that decodes is the run;
/// one that does not is quarantined (semantic reject — the store's own
/// checksum passed) so the simulation can re-publish cleanly.
fn read_through(tier: &PersistStore, key: RunKey) -> Option<CachedRun> {
    let hex = run_key_hex(key);
    let bytes = tier.get(RUN_KIND, &hex)?;
    match decode_cached_run(&bytes) {
        Some(cached) => Some(cached),
        None => {
            tier.quarantine(RUN_KIND, &hex, "run payload decode failed");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn sample_run(cycles: u64) -> CachedRun {
        CachedRun {
            summary: RunSummary {
                cycles,
                blocks_executed: 1,
                rollbacks: 0,
                halted: true,
                guest_insts: 4,
            },
            patterns: 1,
            recovered: Some(b"GB".to_vec()),
        }
    }

    #[test]
    fn distinct_keys_do_not_share_entries() {
        let memo = RunMemo::new();
        let a = memo.get_or_run(RunKey { program: 1, config: 1 }, || Ok(sample_run(10))).unwrap();
        let b = memo.get_or_run(RunKey { program: 1, config: 2 }, || Ok(sample_run(20))).unwrap();
        assert_ne!(a.summary.cycles, b.summary.cycles);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn errors_are_memoized() {
        let memo = RunMemo::new();
        let key = RunKey { program: 7, config: 7 };
        let first = memo.get_or_run(key, || Err("boom".to_string()));
        assert_eq!(first, Err("boom".to_string()));
        let second = memo.get_or_run(key, || panic!("must not re-run a failed key"));
        assert_eq!(second, Err("boom".to_string()));
        assert_eq!((memo.stats().hits, memo.stats().misses), (1, 1));
    }

    #[test]
    fn concurrent_askers_simulate_exactly_once() {
        let memo = RunMemo::new();
        let runs = AtomicUsize::new(0);
        let key = RunKey { program: 3, config: 4 };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let got = memo
                        .get_or_run(key, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            Ok(sample_run(42))
                        })
                        .unwrap();
                    assert_eq!(got.summary.cycles, 42);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "late askers must block on the winner");
        let stats = memo.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
        assert!((stats.hit_rate() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(
            stats.to_json(),
            "{\"hits\": 7, \"misses\": 1, \"entries\": 1, \"evictions\": 0}"
        );
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used_entry() {
        let memo = RunMemo::with_capacity(2);
        for config in 1..=3u64 {
            let _ = memo.get_or_run(RunKey { program: 1, config }, || Ok(sample_run(config)));
        }
        let stats = memo.stats();
        assert_eq!(stats.entries, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 1);
        // Key (1, 1) was the least recently used and must re-simulate.
        let again =
            memo.get_or_run(RunKey { program: 1, config: 1 }, || Ok(sample_run(10))).unwrap();
        assert_eq!(again.summary.cycles, 10, "the evicted entry really re-ran");
        assert_eq!(memo.stats().misses, 4);
        // The recently used keys survived.
        let kept = memo
            .get_or_run(RunKey { program: 1, config: 3 }, || panic!("must still be resident"))
            .unwrap();
        assert_eq!(kept.summary.cycles, 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = RunMemo::with_capacity(0);
    }

    fn fresh_root(tag: &str) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("dbt-platform-memo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn cached_run_payload_round_trips() {
        for run in [
            sample_run(99),
            CachedRun {
                summary: RunSummary {
                    cycles: 0,
                    blocks_executed: 0,
                    rollbacks: 3,
                    halted: false,
                    guest_insts: u64::MAX,
                },
                patterns: 0,
                recovered: None,
            },
        ] {
            let bytes = encode_cached_run(&run);
            assert_eq!(decode_cached_run(&bytes), Some(run));
        }
        assert_eq!(decode_cached_run(&[]), None);
        assert_eq!(decode_cached_run(&[9]), None, "unknown payload versions are rejected");
        let mut truncated = encode_cached_run(&sample_run(1));
        truncated.pop();
        assert_eq!(decode_cached_run(&truncated), None);
    }

    #[test]
    fn persist_tier_answers_a_restarted_memo_without_simulating() {
        let root = fresh_root("restart");
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let key = RunKey { program: 0xabc, config: 0xdef };
        let first = {
            let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier));
            memo.get_or_run(key, || Ok(sample_run(77))).unwrap()
        };
        // A new memo (a restarted daemon) over the same root: the run
        // comes back identical with the closure never invoked.
        let tier2 = dbt_persist::PersistStore::open(&root).unwrap();
        let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier2));
        let again =
            memo.get_or_run(key, || panic!("a warm disk tier must not re-simulate")).unwrap();
        assert_eq!(first, again);
        // Still a memo *miss* (the in-memory slot was cold) — stats stay
        // byte-identical to a cold run — but a persist *hit*.
        assert_eq!((memo.stats().hits, memo.stats().misses), (0, 1));
        assert_eq!(tier2.stats().hits, 1);
        // Repeats are ordinary memo hits that never touch the disk.
        let _ = memo.get_or_run(key, || panic!("resident")).unwrap();
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(tier2.stats().hits, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn errors_are_never_persisted() {
        let root = fresh_root("errors");
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let key = RunKey { program: 1, config: 2 };
        {
            let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier));
            assert!(memo.get_or_run(key, || Err("boom".to_string())).is_err());
        }
        assert_eq!(tier.stats().writes, 0);
        // A restarted memo re-runs the failed key.
        let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier));
        let ok = memo.get_or_run(key, || Ok(sample_run(5))).unwrap();
        assert_eq!(ok.summary.cycles, 5);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn undecodable_disk_entries_are_quarantined_and_recomputed() {
        let root = fresh_root("quarantine");
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let key = RunKey { program: 0x11, config: 0x22 };
        // Plant a store-valid entry whose payload is not a cached run.
        assert!(tier.put(RUN_KIND, &run_key_hex(key), b"not a run payload"));
        let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier));
        let got = memo.get_or_run(key, || Ok(sample_run(8))).unwrap();
        assert_eq!(got.summary.cycles, 8, "the recompute answered");
        assert_eq!(tier.stats().corrupt_quarantined, 1);
        // The recompute re-published; a fresh memo now reads it back.
        let memo = RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier));
        let again = memo.get_or_run(key, || panic!("republished")).unwrap();
        assert_eq!(got, again);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
