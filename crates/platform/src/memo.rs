//! The content-addressed run-summary memo: whole simulated runs, cached.
//!
//! The [`TranslationService`](crate::TranslationService) already memoizes
//! *translations* across runs, but a repeated identical scenario still pays
//! the full simulation: every block is re-executed cycle by cycle. A run,
//! however, is as pure as a compile — the platform is a deterministic
//! simulator, so the observables of a run are a function of exactly two
//! inputs: the guest program bytes and the platform configuration. The
//! [`RunMemo`] closes that gap with a content-addressed cache:
//!
//! * the **key** ([`RunKey`]) is `(program fingerprint, config
//!   fingerprint)` — the config fingerprint covers the mitigation policy,
//!   every DBT and core parameter (speculation options, issue width, cache
//!   geometry, MCB capacity, rollback penalty) and the block budget, so two
//!   equal keys describe byte-identical simulations;
//! * the **value** ([`CachedRun`]) is the [`RunSummary`] plus the
//!   mitigation pattern count and (for attack programs) the bytes the
//!   side channel recovered — everything a lab report needs from a run;
//! * each key resolves to exactly **one simulation process-wide**: late
//!   askers block on the winner's `OnceLock` slot, so the hit/miss
//!   counters are deterministic for a given job list regardless of how
//!   many clients and threads demand it.
//!
//! The memo is the second cache level of the `dbt-serve` daemon (the
//! translation service being the first): a fleet of clients submitting the
//! same scenarios pays one simulation per distinct scenario, and every
//! repeat is answered from the memo.

use crate::processor::RunSummary;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Content address of one run: program fingerprint × config fingerprint.
///
/// Built by [`RunKey::new`] from the actual program and configuration, so
/// a key cannot be constructed from stale inputs by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// [`Program::fingerprint`](dbt_riscv::Program::fingerprint) of the
    /// guest program.
    pub program: u64,
    /// [`PlatformConfig::fingerprint`](crate::PlatformConfig::fingerprint)
    /// of the platform configuration.
    pub config: u64,
}

impl RunKey {
    /// The content address of running `program` under `config`.
    pub fn new(program: &dbt_riscv::Program, config: &crate::PlatformConfig) -> RunKey {
        RunKey { program: program.fingerprint(), config: config.fingerprint() }
    }
}

/// Everything a cached run preserves about the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRun {
    /// The run summary (cycles, blocks, rollbacks, halted, guest insts).
    pub summary: RunSummary,
    /// Spectre patterns reported by the GhostBusters analysis.
    pub patterns: usize,
    /// Bytes read back from the guest's `recovered` symbol after the run
    /// (`None` for programs without a planted secret).
    pub recovered: Option<Vec<u8>>,
}

/// Snapshot of the memo counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Runs answered from the memo.
    pub hits: u64,
    /// Runs that had to simulate (equals the number of distinct keys asked
    /// for process-wide).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl MemoStats {
    /// Fraction of asks served from the memo, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Stable single-line JSON serialisation (fixed key order), used by the
    /// daemon's `stats` response.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"entries\": {}}}",
            self.hits, self.misses, self.entries
        )
    }
}

/// One memo slot: filled exactly once, shared between waiting threads.
type Slot = Arc<OnceLock<Result<CachedRun, String>>>;

/// The content-addressed, thread-safe run-summary memo.
///
/// Entries are tiny (a summary, two counters and at most a secret's worth
/// of bytes), so the memo is unbounded: it grows with the number of
/// *distinct* scenarios asked for, not with the number of requests.
///
/// ```
/// use dbt_platform::{CachedRun, RunKey, RunMemo, RunSummary};
///
/// let memo = RunMemo::new();
/// let key = RunKey { program: 1, config: 2 };
/// let run = CachedRun {
///     summary: RunSummary {
///         cycles: 100,
///         blocks_executed: 3,
///         rollbacks: 0,
///         halted: true,
///         guest_insts: 12,
///     },
///     patterns: 0,
///     recovered: None,
/// };
/// let first = memo.get_or_run(key, || Ok(run.clone())).unwrap();
/// let second = memo.get_or_run(key, || panic!("must not re-simulate")).unwrap();
/// assert_eq!(first, second);
/// assert_eq!((memo.stats().hits, memo.stats().misses), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct RunMemo {
    slots: Mutex<HashMap<RunKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RunMemo {
    /// An empty memo behind an [`Arc`], ready to share across threads.
    pub fn new() -> Arc<RunMemo> {
        Arc::new(RunMemo::default())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            entries: self.slots.lock().expect("run memo poisoned").len(),
        }
    }

    /// Returns the cached run for `key`, simulating it (exactly once
    /// process-wide, via `run`) if it is not resident yet.
    ///
    /// Failed runs are memoized too: a scenario that errors once errors
    /// identically — and cheaply — on every repeat.
    ///
    /// # Errors
    ///
    /// Returns the (memoized) error of the failing simulation.
    pub fn get_or_run(
        &self,
        key: RunKey,
        run: impl FnOnce() -> Result<CachedRun, String>,
    ) -> Result<CachedRun, String> {
        let slot =
            Arc::clone(self.slots.lock().expect("run memo poisoned").entry(key).or_default());
        let mut computed = false;
        let result = slot
            .get_or_init(|| {
                computed = true;
                run()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::SeqCst);
        } else {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn sample_run(cycles: u64) -> CachedRun {
        CachedRun {
            summary: RunSummary {
                cycles,
                blocks_executed: 1,
                rollbacks: 0,
                halted: true,
                guest_insts: 4,
            },
            patterns: 1,
            recovered: Some(b"GB".to_vec()),
        }
    }

    #[test]
    fn distinct_keys_do_not_share_entries() {
        let memo = RunMemo::new();
        let a = memo.get_or_run(RunKey { program: 1, config: 1 }, || Ok(sample_run(10))).unwrap();
        let b = memo.get_or_run(RunKey { program: 1, config: 2 }, || Ok(sample_run(20))).unwrap();
        assert_ne!(a.summary.cycles, b.summary.cycles);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn errors_are_memoized() {
        let memo = RunMemo::new();
        let key = RunKey { program: 7, config: 7 };
        let first = memo.get_or_run(key, || Err("boom".to_string()));
        assert_eq!(first, Err("boom".to_string()));
        let second = memo.get_or_run(key, || panic!("must not re-run a failed key"));
        assert_eq!(second, Err("boom".to_string()));
        assert_eq!((memo.stats().hits, memo.stats().misses), (1, 1));
    }

    #[test]
    fn concurrent_askers_simulate_exactly_once() {
        let memo = RunMemo::new();
        let runs = AtomicUsize::new(0);
        let key = RunKey { program: 3, config: 4 };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let got = memo
                        .get_or_run(key, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            Ok(sample_run(42))
                        })
                        .unwrap();
                    assert_eq!(got.summary.cycles, 42);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "late askers must block on the winner");
        let stats = memo.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
        assert!((stats.hit_rate() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.to_json(), "{\"hits\": 7, \"misses\": 1, \"entries\": 1}");
    }
}
