//! The DBT-based processor: engine + core + memory.

use dbt_engine::{DbtConfig, DbtEngine, DbtError, TranslationService};
use dbt_riscv::{GuestMemory, MemError, Program, Reg};
use dbt_vliw::{CoreConfig, CoreError, VliwCore};
use ghostbusters::MitigationPolicy;
use std::fmt;
use std::sync::Arc;

/// Configuration of the whole platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// DBT engine configuration (speculation, mitigation, trace formation).
    pub dbt: DbtConfig,
    /// VLIW core configuration (issue width, MCB, cache, rollback penalty).
    pub core: CoreConfig,
    /// Safety budget: maximum number of translated blocks executed in one
    /// [`DbtProcessor::run`] call.
    pub max_blocks: u64,
}

impl PlatformConfig {
    /// Default platform for a given mitigation policy; every other
    /// parameter is shared so runs are directly comparable.
    pub fn for_policy(policy: MitigationPolicy) -> PlatformConfig {
        let dbt = DbtConfig::for_policy(policy);
        let core = CoreConfig { issue_width: dbt.issue_width, ..CoreConfig::default() };
        PlatformConfig { dbt, core, max_blocks: 50_000_000 }
    }

    /// The unprotected baseline platform.
    pub fn unprotected() -> PlatformConfig {
        PlatformConfig::for_policy(MitigationPolicy::Unprotected)
    }

    /// A stable 64-bit fingerprint of every simulation-relevant parameter:
    /// the full DBT configuration (policy, speculation options, trace
    /// formation), the core configuration (issue width, MCB, cache
    /// geometry and latencies, rollback penalty) and the block budget.
    ///
    /// Two configurations with equal fingerprints drive byte-identical
    /// simulations of the same program, so the fingerprint is the config
    /// half of the [`RunMemo`](crate::RunMemo) key. `DbtConfig` carries an
    /// `f64` (the branch-bias threshold), so the hash is written out by
    /// hand over the bit pattern instead of derived.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        // Exhaustive destructuring (no `..`): adding a field to any of
        // these structs must fail to compile here rather than silently
        // produce colliding fingerprints — a collision would make the
        // RunMemo serve one configuration's cached run as another's.
        let PlatformConfig { dbt, core, max_blocks } = self;
        let dbt_engine::DbtConfig {
            issue_width,
            hot_threshold,
            branch_bias_threshold,
            max_trace_guest_insts,
            speculation,
            policy,
        } = dbt;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        issue_width.hash(&mut hasher);
        hot_threshold.hash(&mut hasher);
        branch_bias_threshold.to_bits().hash(&mut hasher);
        max_trace_guest_insts.hash(&mut hasher);
        speculation.hash(&mut hasher);
        policy.hash(&mut hasher);
        // `CoreConfig` (and its `CacheConfig`) derive `Hash`, so new
        // fields there are covered automatically.
        core.hash(&mut hasher);
        max_blocks.hash(&mut hasher);
        hasher.finish()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::unprotected()
    }
}

/// Errors raised while running a guest program on the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The DBT engine failed to translate guest code.
    Dbt(DbtError),
    /// The VLIW core faulted.
    Core(CoreError),
    /// Guest memory could not be built or accessed.
    Mem(MemError),
    /// The block budget was exhausted before the program halted.
    BudgetExhausted {
        /// Number of blocks executed.
        blocks: u64,
    },
    /// A [`Session`](crate::Session) was built without a guest program.
    MissingProgram,
    /// A named symbol is missing from the guest program.
    UnknownSymbol {
        /// The requested symbol name.
        name: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Dbt(e) => write!(f, "{e}"),
            PlatformError::Core(e) => write!(f, "{e}"),
            PlatformError::Mem(e) => write!(f, "{e}"),
            PlatformError::BudgetExhausted { blocks } => {
                write!(f, "block budget exhausted after {blocks} blocks")
            }
            PlatformError::MissingProgram => {
                write!(f, "session built without a guest program (call `.program(..)`)")
            }
            PlatformError::UnknownSymbol { name } => write!(f, "unknown guest symbol `{name}`"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<DbtError> for PlatformError {
    fn from(e: DbtError) -> Self {
        PlatformError::Dbt(e)
    }
}

impl From<CoreError> for PlatformError {
    fn from(e: CoreError) -> Self {
        PlatformError::Core(e)
    }
}

impl From<MemError> for PlatformError {
    fn from(e: MemError) -> Self {
        PlatformError::Mem(e)
    }
}

/// Result of running a guest program to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cycles spent by the VLIW core.
    pub cycles: u64,
    /// Number of translated blocks executed.
    pub blocks_executed: u64,
    /// Memory Conflict Buffer rollbacks.
    pub rollbacks: u64,
    /// Whether the program reached `ecall` (as opposed to exhausting its
    /// budget).
    pub halted: bool,
    /// Guest instructions retired (estimated from block coverage).
    pub guest_insts: u64,
}

/// The simulated DBT-based processor.
#[derive(Debug, Clone)]
pub struct DbtProcessor {
    program: Program,
    config: PlatformConfig,
    engine: DbtEngine,
    core: VliwCore,
    memory: GuestMemory,
}

impl DbtProcessor {
    /// Creates a processor with `program` loaded and ready to run from its
    /// entry point, with an optional shared translation service (the
    /// engine memoizes its translations there under the program's
    /// fingerprint).
    ///
    /// Construction is crate-internal: external callers go through the
    /// [`Session`](crate::Session) builder, which is also where a shared
    /// [`TranslationService`] is attached.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Mem`] if the program image cannot be built.
    pub(crate) fn new(
        program: &Program,
        config: PlatformConfig,
        service: Option<Arc<TranslationService>>,
    ) -> Result<DbtProcessor, PlatformError> {
        let memory = program.build_memory().map_err(|_| {
            PlatformError::Mem(MemError::OutOfBounds {
                addr: 0,
                size: 0,
                limit: program.memory_size(),
            })
        })?;
        let mut core = VliwCore::new(config.core, program.entry());
        // Same calling convention as the reference interpreter: stack at the
        // top of guest memory.
        core.arch_mut().set_reg(Reg::SP, (memory.len() as u64) & !0xf);
        let engine = match service {
            Some(service) => DbtEngine::with_service(config.dbt, service, program.fingerprint()),
            None => DbtEngine::new(config.dbt),
        };
        Ok(DbtProcessor { program: program.clone(), config, engine, core, memory })
    }

    /// The loaded guest program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The DBT engine (profiles, translation cache, mitigation reports).
    pub fn engine(&self) -> &DbtEngine {
        &self.engine
    }

    /// The VLIW core (cycle counter, cache, architectural state).
    pub fn core(&self) -> &VliwCore {
        &self.core
    }

    /// Guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Mutable guest memory (e.g. to plant a secret before running).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.memory
    }

    /// Address of a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownSymbol`] if the program does not
    /// define it.
    pub fn symbol(&self, name: &str) -> Result<u64, PlatformError> {
        self.program
            .symbol(name)
            .ok_or_else(|| PlatformError::UnknownSymbol { name: name.to_string() })
    }

    /// Reads a 64-bit value at a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbol is unknown or out of bounds.
    pub fn load_symbol_u64(&self, name: &str) -> Result<u64, PlatformError> {
        Ok(self.memory.load_u64(self.symbol(name)?)?)
    }

    /// Reads `len` bytes at a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbol is unknown or out of bounds.
    pub fn load_symbol_bytes(&self, name: &str, len: usize) -> Result<Vec<u8>, PlatformError> {
        Ok(self.memory.read_bytes(self.symbol(name)?, len)?)
    }

    /// Assembles the deterministic cycle-domain profile of this
    /// processor's execution so far (normally called once, after
    /// [`DbtProcessor::run`] with the summary it returned).
    pub fn profile_report(&self, program: &str, summary: &RunSummary) -> crate::ProfileReport {
        crate::ProfileReport::assemble(
            program,
            self.config.dbt.policy.label(),
            summary,
            &self.core,
            self.engine.stats(),
        )
    }

    /// Runs the guest program until it halts or the block budget runs out.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] on translation or execution faults.
    pub fn run(&mut self) -> Result<RunSummary, PlatformError> {
        let mut pc = self.core.arch().pc();
        let mut blocks = 0u64;
        let mut guest_insts = 0u64;
        let mut halted = false;
        while blocks < self.config.max_blocks {
            let block = self.engine.block_for(pc, &self.memory)?;
            let outcome = self.core.execute_block(&block, &mut self.memory)?;
            self.engine.note_block_exit(pc, outcome.next_pc);
            blocks += 1;
            guest_insts += block.guest_inst_count as u64;
            match outcome.next_pc {
                Some(next) => {
                    self.core.arch_mut().set_pc(next);
                    pc = next;
                }
                None => {
                    halted = true;
                    break;
                }
            }
        }
        if !halted && blocks >= self.config.max_blocks {
            return Err(PlatformError::BudgetExhausted { blocks });
        }
        Ok(RunSummary {
            cycles: self.core.cycles(),
            blocks_executed: blocks,
            rollbacks: self.core.stats().rollbacks,
            halted,
            guest_insts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, ExitReason, Interpreter};

    fn loop_program() -> Program {
        // Sums 0..100 into memory, with a data-dependent branch inside the
        // loop so both translation tiers and profiling are exercised.
        let mut asm = Assembler::new();
        let out = asm.alloc_data("out", 8);
        let even_count = asm.alloc_data("evens", 8);
        let head = asm.new_label();
        let odd = asm.new_label();
        asm.li(Reg::S0, 0); // i
        asm.li(Reg::S1, 0); // sum
        asm.li(Reg::S2, 0); // evens
        asm.li(Reg::S3, 100);
        asm.bind(head);
        asm.add(Reg::S1, Reg::S1, Reg::S0);
        asm.andi(Reg::T0, Reg::S0, 1);
        asm.bnez(Reg::T0, odd);
        asm.addi(Reg::S2, Reg::S2, 1);
        asm.bind(odd);
        asm.addi(Reg::S0, Reg::S0, 1);
        asm.blt(Reg::S0, Reg::S3, head);
        asm.la(Reg::A0, out);
        asm.sd(Reg::S1, Reg::A0, 0);
        asm.la(Reg::A0, even_count);
        asm.sd(Reg::S2, Reg::A0, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn runs_to_completion_and_matches_reference_interpreter() {
        let program = loop_program();
        let mut reference = Interpreter::new(&program);
        assert_eq!(reference.run(1_000_000).unwrap(), ExitReason::Ecall);

        for policy in MitigationPolicy::ALL {
            let mut processor =
                DbtProcessor::new(&program, PlatformConfig::for_policy(policy), None).unwrap();
            let summary = processor.run().unwrap();
            assert!(summary.halted, "{policy}: program must halt");
            assert!(summary.cycles > 0);
            assert_eq!(
                processor.load_symbol_u64("out").unwrap(),
                reference.memory().load_u64(program.symbol("out").unwrap()).unwrap(),
                "{policy}: architectural result must match the reference"
            );
            assert_eq!(processor.load_symbol_u64("evens").unwrap(), 50);
        }
    }

    #[test]
    fn speculation_is_not_slower_than_no_speculation() {
        let program = loop_program();
        let mut unprotected = DbtProcessor::new(
            &program,
            PlatformConfig::for_policy(MitigationPolicy::Unprotected),
            None,
        )
        .unwrap();
        let mut nospec = DbtProcessor::new(
            &program,
            PlatformConfig::for_policy(MitigationPolicy::NoSpeculation),
            None,
        )
        .unwrap();
        let fast = unprotected.run().unwrap();
        let slow = nospec.run().unwrap();
        assert!(fast.cycles <= slow.cycles);
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let program = loop_program();
        let processor = DbtProcessor::new(&program, PlatformConfig::default(), None).unwrap();
        assert!(matches!(
            processor.load_symbol_u64("nope"),
            Err(PlatformError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut asm = Assembler::new();
        let spin = asm.new_label();
        asm.bind(spin);
        asm.nop();
        asm.jump(spin);
        let program = asm.assemble().unwrap();
        let config = PlatformConfig { max_blocks: 10, ..PlatformConfig::default() };
        let mut processor = DbtProcessor::new(&program, config, None).unwrap();
        assert!(matches!(processor.run(), Err(PlatformError::BudgetExhausted { .. })));
    }
}
