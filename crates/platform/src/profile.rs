//! The [`ProfileReport`]: a byte-stable, cycle-domain profile of one
//! completed [`Session`](crate::Session) run.
//!
//! The report combines the core's deterministic
//! [`Profiler`](dbt_obs::Profiler) (per-phase
//! cycle attribution, speculation events, flight recorder) with the
//! statistics the platform already keeps — `CoreStats`, the data-cache
//! counters and `EngineStats` — into one structure with stable text and
//! JSON renderings. Nothing in it is wall-clock: two runs of the same
//! program under the same configuration render byte-identical reports,
//! so a profile can be committed, diffed in CI, and compared across
//! machines.
//!
//! Two internal consistency properties hold by construction and are
//! asserted by tests: the five phase accumulators sum exactly to the
//! core's total cycle count, and every speculation-event counter equals
//! its `CoreStats`/cache twin (mispredicts = side exits taken, MCB hits
//! = rollbacks, squashed instructions = recovery ops, cache events = the
//! cache's own hit/miss totals).

use crate::processor::RunSummary;
use dbt_obs::{PhaseCycles, SpecEvents};

/// A deterministic profile of one completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Label of the profiled program.
    pub program: String,
    /// Mitigation-policy label the run used.
    pub policy: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Translated blocks executed.
    pub blocks_executed: u64,
    /// Guest instructions retired.
    pub guest_insts: u64,
    /// Whether the program halted (vs. exhausting its block budget).
    pub halted: bool,
    /// Per-phase cycle attribution; sums to `cycles`.
    pub phases: PhaseCycles,
    /// Speculation / memory-system event counts.
    pub events: SpecEvents,
    /// Bundles issued by the core.
    pub bundles_issued: u64,
    /// Non-nop operations executed.
    pub ops_executed: u64,
    /// Data-cache line/full flushes.
    pub cache_flushes: u64,
    /// Basic-tier translations performed by the engine.
    pub basic_translations: u64,
    /// Superblock-tier translations performed by the engine.
    pub superblock_translations: u64,
    /// Translation-service memo hits observed by the engine.
    pub service_hits: u64,
    /// Translation-service memo misses observed by the engine.
    pub service_misses: u64,
    /// Flight-recorder events retained for trace export.
    pub trace_retained: u64,
    /// Flight-recorder events dropped (ring was full).
    pub trace_dropped: u64,
}

impl ProfileReport {
    /// Assembles a report from the core (profiler, stats, cache, cycle
    /// count), the engine statistics and the run summary. Used by
    /// `Session::profile_report`.
    pub(crate) fn assemble(
        program: &str,
        policy: &str,
        summary: &RunSummary,
        core: &dbt_vliw::VliwCore,
        engine: &dbt_engine::EngineStats,
    ) -> ProfileReport {
        let profiler = core.profiler();
        let stats = core.stats();
        ProfileReport {
            program: program.to_string(),
            policy: policy.to_string(),
            cycles: core.cycles(),
            blocks_executed: summary.blocks_executed,
            guest_insts: summary.guest_insts,
            halted: summary.halted,
            phases: profiler.phases,
            events: profiler.events,
            bundles_issued: stats.bundles_issued,
            ops_executed: stats.ops_executed,
            cache_flushes: core.dcache().stats().flushes,
            basic_translations: engine.basic_translations,
            superblock_translations: engine.superblock_translations,
            service_hits: engine.service_hits,
            service_misses: engine.service_misses,
            trace_retained: profiler.trace_len() as u64,
            trace_dropped: profiler.trace_dropped(),
        }
    }

    /// Per-mille share of `part` in this report's total cycles, rendered
    /// as a fixed `"dd.d"` percent string — integer math only, so the
    /// text report never touches float formatting.
    fn percent(&self, part: u64) -> String {
        if self.cycles == 0 {
            return "0.0".to_string();
        }
        let permille = part * 1000 / self.cycles;
        format!("{}.{}", permille / 10, permille % 10)
    }

    /// Renders the stable human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("profile: {} policy={}\n", self.program, self.policy));
        out.push_str(&format!(
            "cycles: {}  blocks: {}  guest_insts: {}  halted: {}\n",
            self.cycles, self.blocks_executed, self.guest_insts, self.halted
        ));
        out.push_str("phase cycles (sum equals total):\n");
        for (name, cycles) in self.phases.entries() {
            out.push_str(&format!("  {name:<10} {cycles:>12}  {:>5}%\n", self.percent(cycles)));
        }
        out.push_str("speculation events:\n");
        for (name, count) in self.events.entries() {
            out.push_str(&format!("  {name:<18} {count:>12}\n"));
        }
        out.push_str(&format!(
            "core: bundles_issued={} ops_executed={} cache_flushes={}\n",
            self.bundles_issued, self.ops_executed, self.cache_flushes
        ));
        out.push_str(&format!(
            "translation: basic={} superblock={} service_hits={} service_misses={}\n",
            self.basic_translations,
            self.superblock_translations,
            self.service_hits,
            self.service_misses
        ));
        out.push_str(&format!(
            "trace: retained={} dropped={}\n",
            self.trace_retained, self.trace_dropped
        ));
        out
    }

    /// Renders the stable JSON form (fixed key order, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dbt-platform/profile/v1\",\n");
        out.push_str(&format!("  \"program\": \"{}\",\n", escape(&self.program)));
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&self.policy)));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!("  \"blocks_executed\": {},\n", self.blocks_executed));
        out.push_str(&format!("  \"guest_insts\": {},\n", self.guest_insts));
        out.push_str(&format!("  \"halted\": {},\n", self.halted));
        out.push_str("  \"phases\": {\n");
        for (name, cycles) in self.phases.entries() {
            out.push_str(&format!("    \"{name}\": {cycles},\n"));
        }
        out.push_str(&format!("    \"total\": {}\n", self.phases.total()));
        out.push_str("  },\n");
        out.push_str("  \"events\": {\n");
        let events = self.events.entries();
        for (i, (name, count)) in events.iter().enumerate() {
            let comma = if i + 1 == events.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {count}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"core\": {\n");
        out.push_str(&format!("    \"bundles_issued\": {},\n", self.bundles_issued));
        out.push_str(&format!("    \"ops_executed\": {},\n", self.ops_executed));
        out.push_str(&format!("    \"cache_flushes\": {}\n", self.cache_flushes));
        out.push_str("  },\n");
        out.push_str("  \"translation\": {\n");
        out.push_str(&format!("    \"basic\": {},\n", self.basic_translations));
        out.push_str(&format!("    \"superblock\": {},\n", self.superblock_translations));
        out.push_str(&format!("    \"service_hits\": {},\n", self.service_hits));
        out.push_str(&format!("    \"service_misses\": {}\n", self.service_misses));
        out.push_str("  },\n");
        out.push_str("  \"trace\": {\n");
        out.push_str(&format!("    \"retained\": {},\n", self.trace_retained));
        out.push_str(&format!("    \"dropped\": {}\n", self.trace_dropped));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping for the two label fields (program names
/// and policy labels — the rest of the report is numeric).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dbt_riscv::{Assembler, Reg};
    use ghostbusters::MitigationPolicy;

    fn loop_program() -> dbt_riscv::Program {
        let mut asm = Assembler::new();
        let out = asm.alloc_data("out", 8);
        let head = asm.new_label();
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, 0);
        asm.li(Reg::S2, 50);
        asm.bind(head);
        asm.add(Reg::S1, Reg::S1, Reg::S0);
        asm.addi(Reg::S0, Reg::S0, 1);
        asm.blt(Reg::S0, Reg::S2, head);
        asm.la(Reg::A0, out);
        asm.sd(Reg::S1, Reg::A0, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn phases_sum_to_cycles_and_events_match_stats() {
        let program = loop_program();
        let mut session = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::Selective)
            .build()
            .unwrap();
        let summary = session.run().unwrap();
        let report = session.profile_report("loop", &summary);
        assert_eq!(report.phases.total(), report.cycles);
        assert_eq!(report.cycles, summary.cycles);
        let stats = session.core().stats();
        assert_eq!(report.events.mispredicts, stats.side_exits_taken);
        assert_eq!(report.events.mcb_hits, stats.rollbacks);
        assert_eq!(report.events.squashed_insts, stats.recovery_ops);
        assert_eq!(report.events.speculative_loads, stats.speculative_loads);
        let cache = session.core().dcache().stats();
        assert_eq!(report.events.l1d_hits, cache.read_hits + cache.write_hits);
        assert_eq!(report.events.l1d_misses, cache.read_misses + cache.write_misses);
    }

    #[test]
    fn report_renderings_are_byte_stable_across_identical_runs() {
        let run = || {
            let program = loop_program();
            let mut session = Session::builder()
                .program(&program)
                .policy(MitigationPolicy::FineGrained)
                .build()
                .unwrap();
            let summary = session.run().unwrap();
            session.profile_report("loop", &summary)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
        assert!(a.to_json().contains("\"schema\": \"dbt-platform/profile/v1\""));
        assert!(a.to_json().contains(&format!("\"total\": {}", a.cycles)));
        assert!(a.to_text().contains("phase cycles (sum equals total):"));
    }

    #[test]
    fn labels_are_escaped_in_json() {
        let report = ProfileReport {
            program: "we\"ird\\name".to_string(),
            policy: "selective".to_string(),
            cycles: 0,
            blocks_executed: 0,
            guest_insts: 0,
            halted: true,
            phases: PhaseCycles::default(),
            events: SpecEvents::default(),
            bundles_issued: 0,
            ops_executed: 0,
            cache_flushes: 0,
            basic_translations: 0,
            superblock_translations: 0,
            service_hits: 0,
            service_misses: 0,
            trace_retained: 0,
            trace_dropped: 0,
        };
        assert!(report.to_json().contains("\"program\": \"we\\\"ird\\\\name\""));
    }
}
