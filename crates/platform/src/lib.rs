//! Full-system simulator of the DBT-based processor.
//!
//! [`DbtProcessor`] wires together the three pieces built in the substrate
//! crates — the [DBT engine](dbt_engine::DbtEngine), the in-order
//! [VLIW core](dbt_vliw::VliwCore) with its data cache, and a guest memory
//! image — and drives a guest [`Program`](dbt_riscv::Program) to completion,
//! exactly like Hybrid-DBT runs RISC-V binaries on its VLIW.
//!
//! It is the crate the attack proof-of-concepts, the Polybench-style
//! workloads and the benchmark harness all run against.
//!
//! # Example
//!
//! ```
//! use dbt_platform::{DbtProcessor, PlatformConfig};
//! use dbt_riscv::{Assembler, Reg};
//! use ghostbusters::MitigationPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! let out = asm.alloc_data("out", 8);
//! asm.li(Reg::A0, 6);
//! asm.li(Reg::A1, 7);
//! asm.mul(Reg::A2, Reg::A0, Reg::A1);
//! asm.la(Reg::A3, out);
//! asm.sd(Reg::A2, Reg::A3, 0);
//! asm.ecall();
//! let program = asm.assemble()?;
//!
//! let config = PlatformConfig::for_policy(MitigationPolicy::FineGrained);
//! let mut processor = DbtProcessor::new(&program, config)?;
//! let summary = processor.run()?;
//! assert!(summary.halted);
//! assert_eq!(processor.load_symbol_u64("out")?, 42);
//! # Ok(())
//! # }
//! ```

pub mod processor;
pub mod run;

pub use processor::{DbtProcessor, PlatformConfig, PlatformError, RunSummary};
pub use run::{run_program, run_with_policy, PolicyComparison};
