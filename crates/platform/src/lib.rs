//! Full-system simulator of the DBT-based processor.
//!
//! [`DbtProcessor`] wires together the three pieces built in the substrate
//! crates — the [DBT engine](dbt_engine::DbtEngine), the in-order
//! [VLIW core](dbt_vliw::VliwCore) with its data cache, and a guest memory
//! image — and drives a guest [`Program`](dbt_riscv::Program) to completion,
//! exactly like Hybrid-DBT runs RISC-V binaries on its VLIW.
//!
//! Runs are created through the [`Session`] builder — the single public
//! entry point the attack proof-of-concepts, the Polybench-style workloads
//! and the benchmark harness all go through. Sessions can share a
//! [`TranslationService`], the process-wide memo that translates each
//! `(program, config)` exactly once however many runs demand it.
//!
//! # Example
//!
//! ```
//! use dbt_platform::{Session, TranslationService};
//! use dbt_riscv::{Assembler, Reg};
//! use ghostbusters::MitigationPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! let out = asm.alloc_data("out", 8);
//! asm.li(Reg::A0, 6);
//! asm.li(Reg::A1, 7);
//! asm.mul(Reg::A2, Reg::A0, Reg::A1);
//! asm.la(Reg::A3, out);
//! asm.sd(Reg::A2, Reg::A3, 0);
//! asm.ecall();
//! let program = asm.assemble()?;
//!
//! let service = TranslationService::new();
//! let mut session = Session::builder()
//!     .program(&program)
//!     .policy(MitigationPolicy::FineGrained)
//!     .service(&service)
//!     .build()?;
//! let summary = session.run()?;
//! assert!(summary.halted);
//! assert_eq!(session.load_symbol_u64("out")?, 42);
//! # Ok(())
//! # }
//! ```

pub mod memo;
pub mod processor;
pub mod profile;
pub mod run;
pub mod session;
pub mod store;

pub use dbt_engine::{ServiceStats, TranslationService};
pub use memo::{CachedRun, MemoStats, RunKey, RunMemo, DEFAULT_MEMO_CAPACITY};
pub use processor::{DbtProcessor, PlatformConfig, PlatformError, RunSummary};
pub use profile::ProfileReport;
pub use run::PolicyComparison;
pub use session::{Session, SessionBuilder};
pub use store::{ProgramRef, ProgramStore, StoreStats, DEFAULT_STORE_CAPACITY};
