//! Program addressing: [`ProgramRef`] and the content-addressed, shared
//! [`ProgramStore`].
//!
//! Until this layer existed, every consumer of a guest program named it by
//! an ad-hoc string bound to the in-repo registry — there was no way to
//! hand the platform a program it had not compiled in. The store makes
//! **programs data**:
//!
//! * a [`ProgramRef`] is how requests *name* a program: a registry entry
//!   (`registry:<name>`, or a bare name), an already-resident content
//!   fingerprint (`fp:<16-hex>`), or inline source (text assembly or a
//!   program-image JSON document);
//! * the [`ProgramStore`] is where programs *live*: a thread-safe map from
//!   [`Program::fingerprint`] to the immutable program behind an `Arc`.
//!   Identical uploads deduplicate to one entry (the second submission is
//!   a `dedup` hit); registry entries are seeded **lazily** — the builder
//!   closure registered for a name runs at most once process-wide, on the
//!   first resolve that asks for it.
//!
//! The store is the third process-wide cache level of the lab daemon,
//! next to the `TranslationService` (translations) and the [`RunMemo`]
//! (whole runs): all three key by the program's content fingerprint, so a
//! program uploaded once is translated once and simulated once, however
//! many requests name it.
//!
//! [`RunMemo`]: crate::RunMemo

use dbt_persist::PersistStore;
use dbt_riscv::Program;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry kind the store uses in the durable tier: the program-image JSON
/// (the same text `upload` ships on the wire), keyed by the program's
/// content fingerprint.
const PROG_KIND: &str = "prog";

/// The durable-store key of a program: its fingerprint as hex.
fn prog_key_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// How a request names a guest program.
///
/// The textual grammar (parsed by [`ProgramRef::parse`]):
///
/// | form | meaning |
/// |---|---|
/// | `registry:<name>` (or a bare `<name>`) | a program the store can build by name |
/// | `fp:<16-hex-digits>` | an already-resident content fingerprint |
/// | `asm:<source>` | inline text assembly |
/// | `image:<json>` | inline program-image JSON |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramRef {
    /// A named program the store knows how to build (lazily seeded).
    Registry(String),
    /// A content fingerprint of an already-resident program.
    Fingerprint(u64),
    /// Inline text-assembly source.
    InlineAsm(String),
    /// Inline program-image JSON.
    InlineImage(String),
}

impl ProgramRef {
    /// Parses the textual ref grammar. A bare name (no scheme prefix) is a
    /// registry ref, so existing name-based requests keep working.
    ///
    /// # Errors
    ///
    /// Returns a message if the `fp:` payload is not a 64-bit hex number
    /// or the scheme is unknown.
    pub fn parse(text: &str) -> Result<ProgramRef, String> {
        if let Some(name) = text.strip_prefix("registry:") {
            return Ok(ProgramRef::Registry(name.to_string()));
        }
        if let Some(hex) = text.strip_prefix("fp:") {
            let fp = u64::from_str_radix(hex, 16)
                .map_err(|_| format!("`{hex}` is not a hex fingerprint"))?;
            return Ok(ProgramRef::Fingerprint(fp));
        }
        if let Some(source) = text.strip_prefix("asm:") {
            return Ok(ProgramRef::InlineAsm(source.to_string()));
        }
        if let Some(source) = text.strip_prefix("image:") {
            return Ok(ProgramRef::InlineImage(source.to_string()));
        }
        match text.split_once(':') {
            Some((scheme, _)) => Err(format!(
                "unknown program-ref scheme `{scheme}:` (expected registry:|fp:|asm:|image:)"
            )),
            None => Ok(ProgramRef::Registry(text.to_string())),
        }
    }

    /// Short display label for reports: the registry name, `fp:<hex>`, or
    /// an `inline-…` tag for source refs.
    pub fn label(&self) -> String {
        match self {
            ProgramRef::Registry(name) => name.clone(),
            ProgramRef::Fingerprint(fp) => format!("fp:{fp:016x}"),
            ProgramRef::InlineAsm(_) => "inline-asm".to_string(),
            ProgramRef::InlineImage(_) => "inline-image".to_string(),
        }
    }
}

impl fmt::Display for ProgramRef {
    /// The canonical textual form ([`ProgramRef::parse`] round-trips it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramRef::Registry(name) => write!(f, "registry:{name}"),
            ProgramRef::Fingerprint(fp) => write!(f, "fp:{fp:016x}"),
            ProgramRef::InlineAsm(source) => write!(f, "asm:{source}"),
            ProgramRef::InlineImage(source) => write!(f, "image:{source}"),
        }
    }
}

/// Snapshot of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct programs currently resident.
    pub programs: usize,
    /// Programs submitted through [`ProgramStore::upload`].
    pub uploads: u64,
    /// Uploads whose content was already resident (answered by the
    /// existing entry instead of storing a copy).
    pub dedup_hits: u64,
    /// Registry entries built by lazy seeding so far.
    pub seeded: u64,
    /// Uploaded entries evicted to honour the capacity bound.
    pub evictions: u64,
}

impl StoreStats {
    /// Stable single-line JSON (fixed key order), for the daemon's `stats`
    /// response.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"programs\": {}, \"uploads\": {}, \"dedup_hits\": {}, \"seeded\": {}, \
             \"evictions\": {}}}",
            self.programs, self.uploads, self.dedup_hits, self.seeded, self.evictions
        )
    }

    /// Mirrors this snapshot into `registry` as the `dbt_store_*` metric
    /// families. Called at scrape time so the Prometheus exposition and
    /// the `stats` JSON agree exactly on the same snapshot.
    pub fn export(&self, registry: &dbt_obs::MetricsRegistry) {
        registry
            .gauge("dbt_store_programs", "Distinct programs currently resident.")
            .set(self.programs as i64);
        registry
            .counter("dbt_store_uploads_total", "Programs submitted through upload.")
            .set(self.uploads);
        registry
            .counter("dbt_store_dedup_hits_total", "Uploads whose content was already resident.")
            .set(self.dedup_hits);
        registry
            .counter("dbt_store_seeded_total", "Registry entries built by lazy seeding.")
            .set(self.seeded);
        registry
            .counter(
                "dbt_store_evictions_total",
                "Uploaded entries evicted to honour the capacity bound.",
            )
            .set(self.evictions);
    }
}

/// Builds a named registry program on first use.
type Builder = Box<dyn Fn() -> Result<Program, String> + Send + Sync>;

/// One named entry: the builder plus a once-filled fingerprint slot, so
/// lazy seeding happens exactly once process-wide even under concurrency.
struct NamedEntry {
    build: Builder,
    seeded: OnceLock<Result<u64, String>>,
}

/// One resident program with its LRU bookkeeping. Seeded registry
/// programs are *pinned*: their fingerprints live in once-filled
/// [`NamedEntry`] slots that are never rebuilt, so evicting them would
/// turn every later `registry:` resolve into a permanent error.
struct Resident {
    program: Arc<Program>,
    last_used: u64,
    pinned: bool,
}

/// Default bound on resident programs. Far above any standard workload
/// set; it exists so a daemon facing replicated fleet uploads (the
/// `dbt-router` copies every upload to all backends) cannot grow without
/// limit.
pub const DEFAULT_STORE_CAPACITY: usize = 1024;

/// The thread-safe, content-addressed program store.
///
/// ```
/// use dbt_platform::{ProgramRef, ProgramStore};
/// use dbt_riscv::parse_asm;
///
/// let store = ProgramStore::new();
/// let program = parse_asm("li a0, 42\necall\n").unwrap();
/// let (fp, dedup) = store.upload(program.clone());
/// assert!(!dedup, "first submission stores the program");
/// let (again, dedup) = store.upload(program);
/// assert_eq!(fp, again);
/// assert!(dedup, "identical content deduplicates");
///
/// let resolved = store.resolve(&ProgramRef::Fingerprint(fp)).unwrap();
/// assert_eq!(resolved.fingerprint(), fp);
/// assert_eq!(store.stats().programs, 1);
/// ```
///
/// The store is bounded ([`DEFAULT_STORE_CAPACITY`] by default, see
/// [`ProgramStore::with_capacity`]): beyond the capacity, the least
/// recently used *unpinned* entry is evicted — uploaded and inline
/// programs re-upload cheaply, while lazily-seeded registry programs are
/// pinned for the store's lifetime (their builders run at most once, so
/// an evicted seed could never come back).
pub struct ProgramStore {
    capacity: usize,
    programs: Mutex<HashMap<u64, Resident>>,
    named: Mutex<HashMap<String, Arc<NamedEntry>>>,
    persist: Option<Arc<PersistStore>>,
    uploads: AtomicU64,
    dedup_hits: AtomicU64,
    seeded: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
}

impl Default for ProgramStore {
    fn default() -> ProgramStore {
        ProgramStore {
            capacity: DEFAULT_STORE_CAPACITY,
            programs: Mutex::new(HashMap::new()),
            named: Mutex::new(HashMap::new()),
            persist: None,
            uploads: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            seeded: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for ProgramStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramStore").field("stats", &self.stats()).finish()
    }
}

impl ProgramStore {
    /// An empty store with the default capacity behind an [`Arc`], ready
    /// to share across threads.
    pub fn new() -> Arc<ProgramStore> {
        ProgramStore::with_capacity(DEFAULT_STORE_CAPACITY)
    }

    /// A store bounded to `capacity` resident programs: beyond it, the
    /// least recently used unpinned entry is evicted on insert. Pinned
    /// (seeded registry) entries never count as victims, so the resident
    /// count can exceed a capacity smaller than the registry itself.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Arc<ProgramStore> {
        assert!(capacity >= 1, "the program store needs room for at least one entry");
        Arc::new(ProgramStore { capacity, ..ProgramStore::default() })
    }

    /// [`ProgramStore::with_capacity`] plus a durable tier: uploaded and
    /// inline programs are published as program images behind the write,
    /// [`ProgramStore::get`] misses read through to disk (so an evicted
    /// or restart-lost upload stays resolvable by `fp:` ref), and
    /// [`ProgramStore::reseed_from_persist`] restores the whole uploaded
    /// set at boot. Registry seeds are rebuilt by their builders, never
    /// persisted.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_persist(capacity: usize, persist: Arc<PersistStore>) -> Arc<ProgramStore> {
        assert!(capacity >= 1, "the program store needs room for at least one entry");
        Arc::new(ProgramStore { capacity, persist: Some(persist), ..ProgramStore::default() })
    }

    /// Registers a named registry entry. The builder runs lazily, at most
    /// once, on the first [`ProgramStore::resolve`] that names it.
    pub fn register(
        &self,
        name: &str,
        build: impl Fn() -> Result<Program, String> + Send + Sync + 'static,
    ) {
        self.named.lock().expect("program store poisoned").insert(
            name.to_string(),
            Arc::new(NamedEntry { build: Box::new(build), seeded: OnceLock::new() }),
        );
    }

    /// All registered names, sorted (for error messages and listings).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.named.lock().expect("program store poisoned").keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            programs: self.programs.lock().expect("program store poisoned").len(),
            uploads: self.uploads.load(Ordering::SeqCst),
            dedup_hits: self.dedup_hits.load(Ordering::SeqCst),
            seeded: self.seeded.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
        }
    }

    /// Interns `program` under its content fingerprint, evicting the
    /// least recently used unpinned *other* entry if the capacity bound
    /// is exceeded. Returns the fingerprint and whether the content was
    /// already resident. `pin` marks the entry as never-evictable
    /// (sticky: a later unpinned intern of the same content keeps the
    /// pin). `publish` writes newly resident unpinned programs behind to
    /// the durable tier (off for boot re-seeds and disk read-throughs,
    /// whose images are already on disk).
    fn intern_entry(&self, program: Program, pin: bool, publish: bool) -> (u64, bool) {
        let fp = program.fingerprint();
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        let mut programs = self.programs.lock().expect("program store poisoned");
        let mut fresh = None;
        let resident = match programs.get_mut(&fp) {
            Some(entry) => {
                entry.last_used = tick;
                entry.pinned |= pin;
                true
            }
            None => {
                let program = Arc::new(program);
                if publish && !pin {
                    fresh = Some(Arc::clone(&program));
                }
                programs.insert(fp, Resident { program, last_used: tick, pinned: pin });
                false
            }
        };
        if programs.len() > self.capacity {
            let victim = programs
                .iter()
                .filter(|(k, entry)| **k != fp && !entry.pinned)
                .min_by_key(|(k, entry)| (entry.last_used, **k))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                programs.remove(&victim);
                self.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        drop(programs);
        // Write-behind outside the lock: the publish is best-effort I/O
        // and must not serialize the store.
        if let (Some(tier), Some(program)) = (&self.persist, fresh) {
            tier.put(PROG_KIND, &prog_key_hex(fp), program.to_image().as_bytes());
        }
        (fp, resident)
    }

    /// [`ProgramStore::intern_entry`] without pinning (uploads and inline
    /// sources), published to the durable tier when one is attached.
    fn intern(&self, program: Program) -> (u64, bool) {
        self.intern_entry(program, false, true)
    }

    /// Submits a program (the `upload` operation). Returns its content
    /// fingerprint and whether this was a dedup hit (identical content
    /// already resident).
    pub fn upload(&self, program: Program) -> (u64, bool) {
        self.uploads.fetch_add(1, Ordering::SeqCst);
        let (fp, dedup) = self.intern(program);
        if dedup {
            self.dedup_hits.fetch_add(1, Ordering::SeqCst);
        }
        (fp, dedup)
    }

    /// The resident program with content fingerprint `fp`, if any.
    /// Counts as a use for LRU purposes.
    fn lookup(&self, fp: u64) -> Option<Arc<Program>> {
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        let mut programs = self.programs.lock().expect("program store poisoned");
        programs.get_mut(&fp).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.program)
        })
    }

    /// The program with content fingerprint `fp`, if it is resident or
    /// (with a durable tier attached) published on disk. Counts as a use
    /// for LRU purposes; a disk read-through re-interns the program
    /// without re-publishing it.
    pub fn get(&self, fp: u64) -> Option<Arc<Program>> {
        if let Some(program) = self.lookup(fp) {
            return Some(program);
        }
        let program = self.fetch_persisted(fp)?;
        let (fp, _) = self.intern_entry(program, false, false);
        self.lookup(fp)
    }

    /// Reads the image published under `fp` from the durable tier and
    /// decodes it. An image that does not parse, or whose content
    /// fingerprint contradicts its key, is quarantined (semantic reject —
    /// the store's own checksum passed) and reads as a miss.
    fn fetch_persisted(&self, fp: u64) -> Option<Program> {
        let tier = self.persist.as_ref()?;
        let key = prog_key_hex(fp);
        let bytes = tier.get(PROG_KIND, &key)?;
        let image = match std::str::from_utf8(&bytes) {
            Ok(image) => image,
            Err(_) => {
                tier.quarantine(PROG_KIND, &key, "program image is not UTF-8");
                return None;
            }
        };
        let program = match Program::from_image(image) {
            Ok(program) => program,
            Err(err) => {
                tier.quarantine(PROG_KIND, &key, &format!("program image decode failed: {err}"));
                return None;
            }
        };
        if program.fingerprint() != fp {
            tier.quarantine(PROG_KIND, &key, "program fingerprint contradicts entry key");
            return None;
        }
        Some(program)
    }

    /// Re-interns every program image the durable tier holds (a daemon
    /// boot step), so the uploaded set of the previous incarnation is
    /// resolvable by `fp:` ref immediately. Returns how many programs
    /// were restored; unreadable images are quarantined by the normal
    /// read path and skipped. Upload/dedup counters are untouched.
    pub fn reseed_from_persist(&self) -> usize {
        let Some(tier) = self.persist.as_ref() else {
            return 0;
        };
        let mut restored = 0;
        for key in tier.keys(PROG_KIND) {
            let Ok(fp) = u64::from_str_radix(&key, 16) else {
                continue;
            };
            if self.lookup(fp).is_some() {
                continue;
            }
            if let Some(program) = self.fetch_persisted(fp) {
                self.intern_entry(program, false, false);
                restored += 1;
            }
        }
        restored
    }

    /// Resolves a ref to its program: registry entries are lazily seeded
    /// (built at most once), fingerprints looked up, inline sources parsed
    /// and interned (so repeated identical sources share one entry).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown names, non-resident fingerprints, or
    /// inline sources that do not parse.
    pub fn resolve(&self, program_ref: &ProgramRef) -> Result<Arc<Program>, String> {
        match program_ref {
            ProgramRef::Registry(name) => {
                // Look up, then drop the lock *before* any fallible work:
                // both the error message (`names` re-locks) and the
                // builder below must run lock-free.
                let entry = self.named.lock().expect("program store poisoned").get(name).cloned();
                let entry = entry.ok_or_else(|| {
                    format!("unknown program `{name}`; valid programs: {}", self.names().join(", "))
                })?;
                let fp = entry
                    .seeded
                    .get_or_init(|| {
                        let program = (entry.build)()?;
                        self.seeded.fetch_add(1, Ordering::SeqCst);
                        // Pinned: the builder never runs again, so an
                        // evicted seed could not be rebuilt. Never
                        // persisted: the builder is the durable copy.
                        Ok(self.intern_entry(program, true, false).0)
                    })
                    .clone()?;
                self.get(fp).ok_or_else(|| format!("seeded program `{name}` vanished"))
            }
            ProgramRef::Fingerprint(fp) => self.get(*fp).ok_or_else(|| {
                format!("no program with fingerprint fp:{fp:016x} is resident (upload it first)")
            }),
            ProgramRef::InlineAsm(source) => {
                let program = dbt_riscv::parse_asm(source).map_err(|e| e.to_string())?;
                let (fp, _) = self.intern(program);
                Ok(self.get(fp).expect("just interned"))
            }
            ProgramRef::InlineImage(source) => {
                let program = Program::from_image(source).map_err(|e| e.to_string())?;
                let (fp, _) = self.intern(program);
                Ok(self.get(fp).expect("just interned"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{parse_asm, Assembler, Reg};
    use std::sync::atomic::AtomicUsize;

    fn tiny(value: i64) -> Program {
        let mut asm = Assembler::new();
        asm.li(Reg::A0, value);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn ref_grammar_round_trips() {
        for (text, parsed) in [
            ("registry:gemm", ProgramRef::Registry("gemm".to_string())),
            ("fp:00000000000000ff", ProgramRef::Fingerprint(0xff)),
            ("asm:ecall", ProgramRef::InlineAsm("ecall".to_string())),
            ("image:{}", ProgramRef::InlineImage("{}".to_string())),
        ] {
            let r = ProgramRef::parse(text).unwrap();
            assert_eq!(r, parsed, "{text}");
            assert_eq!(ProgramRef::parse(&r.to_string()).unwrap(), r, "canonical form parses");
        }
        assert_eq!(
            ProgramRef::parse("gemm").unwrap(),
            ProgramRef::Registry("gemm".to_string()),
            "bare names are registry refs"
        );
        assert!(ProgramRef::parse("fp:xyz").is_err());
        assert!(ProgramRef::parse("teleport:now").unwrap_err().contains("teleport"));
    }

    #[test]
    fn uploads_deduplicate_by_content() {
        let store = ProgramStore::new();
        let (a, dedup_a) = store.upload(tiny(1));
        let (b, dedup_b) = store.upload(tiny(1));
        let (c, dedup_c) = store.upload(tiny(2));
        assert_eq!(a, b, "identical content, identical address");
        assert_ne!(a, c);
        assert!(!dedup_a);
        assert!(dedup_b);
        assert!(!dedup_c);
        let stats = store.stats();
        assert_eq!((stats.programs, stats.uploads, stats.dedup_hits), (2, 3, 1));
        assert_eq!(
            stats.to_json(),
            "{\"programs\": 2, \"uploads\": 3, \"dedup_hits\": 1, \"seeded\": 0, \"evictions\": 0}"
        );
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used_upload() {
        let store = ProgramStore::with_capacity(2);
        let (first, _) = store.upload(tiny(1));
        let (second, _) = store.upload(tiny(2));
        // Touch the older entry so the newer one becomes the LRU victim.
        assert!(store.get(first).is_some());
        let (third, _) = store.upload(tiny(3));
        let stats = store.stats();
        assert_eq!(stats.programs, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 1);
        assert!(store.get(first).is_some(), "recently used entries survive");
        assert!(store.get(second).is_none(), "the LRU entry was evicted");
        assert!(store.get(third).is_some());
        // An evicted program is not gone forever: re-uploading restores it
        // (as a fresh store, not a dedup hit).
        let (again, dedup) = store.upload(tiny(2));
        assert_eq!(again, second);
        assert!(!dedup, "the evicted entry really left the store");
    }

    #[test]
    fn seeded_registry_programs_are_pinned_against_eviction() {
        let store = ProgramStore::with_capacity(1);
        store.register("tiny", || Ok(tiny(7)));
        let r = ProgramRef::parse("tiny").unwrap();
        let seeded_fp = store.resolve(&r).unwrap().fingerprint();
        // Flood the store with uploads far past the capacity: the seed
        // must survive every round, because its builder never re-runs.
        for value in 10..20 {
            store.upload(tiny(value));
            assert!(
                store.resolve(&r).is_ok(),
                "a seeded program must stay resolvable under upload pressure"
            );
        }
        assert!(store.get(seeded_fp).is_some());
        assert!(store.stats().evictions > 0, "unpinned uploads did get evicted");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = ProgramStore::with_capacity(0);
    }

    #[test]
    fn registry_entries_seed_lazily_and_exactly_once() {
        let store = ProgramStore::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&builds);
        store.register("tiny", move || {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(tiny(7))
        });
        assert_eq!(builds.load(Ordering::SeqCst), 0, "registration must not build");
        assert_eq!(store.stats().programs, 0);

        let r = ProgramRef::parse("tiny").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let program = store.resolve(&r).unwrap();
                    assert_eq!(program.fingerprint(), tiny(7).fingerprint());
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "late askers share the winner's build");
        assert_eq!(store.stats().seeded, 1);
        assert_eq!(store.stats().programs, 1);

        // Seeded programs are also addressable by fingerprint.
        let fp = tiny(7).fingerprint();
        assert!(store.resolve(&ProgramRef::Fingerprint(fp)).is_ok());
    }

    #[test]
    fn unknown_names_and_fingerprints_are_described() {
        let store = ProgramStore::new();
        store.register("only", || Ok(tiny(0)));
        let err = store.resolve(&ProgramRef::Registry("nope".to_string())).unwrap_err();
        assert!(err.contains("nope") && err.contains("only"), "{err}");
        let err = store.resolve(&ProgramRef::Fingerprint(0xdead)).unwrap_err();
        assert!(err.contains("upload"), "{err}");
        store.register("broken", || Err("no such kernel".to_string()));
        let err = store.resolve(&ProgramRef::Registry("broken".to_string())).unwrap_err();
        assert!(err.contains("no such kernel"), "{err}");
    }

    fn fresh_root(tag: &str) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("dbt-platform-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn uploads_survive_restart_via_reseed_and_read_through() {
        let root = fresh_root("reseed");
        let fp = {
            let tier = dbt_persist::PersistStore::open(&root).unwrap();
            let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, tier);
            let (fp, dedup) = store.upload(tiny(1));
            assert!(!dedup);
            fp
        };
        // A restarted store over the same root: boot re-seed restores
        // the upload, upload/dedup counters stay untouched.
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, Arc::clone(&tier));
        assert_eq!(store.reseed_from_persist(), 1);
        assert_eq!(store.reseed_from_persist(), 0, "a second re-seed finds everything resident");
        let stats = store.stats();
        assert_eq!((stats.programs, stats.uploads, stats.dedup_hits), (1, 0, 0));
        let resolved = store.resolve(&ProgramRef::Fingerprint(fp)).unwrap();
        assert_eq!(resolved.fingerprint(), fp);
        // Re-uploading the same content is now a dedup hit, and the
        // re-seed published nothing new.
        let (again, dedup) = store.upload(tiny(1));
        assert_eq!(again, fp);
        assert!(dedup);
        assert_eq!(tier.stats().writes, 0, "re-seeds and dedups never re-publish");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn get_reads_through_without_a_boot_reseed() {
        let root = fresh_root("readthrough");
        let fp = {
            let tier = dbt_persist::PersistStore::open(&root).unwrap();
            let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, tier);
            store.upload(tiny(2)).0
        };
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, tier);
        assert_eq!(store.stats().programs, 0);
        let program = store.get(fp).expect("a persisted image answers a cold get");
        assert_eq!(program.fingerprint(), fp);
        assert_eq!(store.stats().programs, 1, "the read-through re-interned the program");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_persisted_images_are_quarantined_not_errors() {
        let root = fresh_root("corrupt");
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        // A store-valid entry that is not a program image at all, plus
        // one whose image decodes to a different fingerprint.
        assert!(tier.put(PROG_KIND, &prog_key_hex(0xdead), b"not an image"));
        assert!(tier.put(PROG_KIND, &prog_key_hex(0xbeef), tiny(3).to_image().as_bytes()));
        let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, Arc::clone(&tier));
        assert_eq!(store.reseed_from_persist(), 0);
        assert!(store.get(0xdead).is_none());
        assert!(store.get(0xbeef).is_none());
        assert_eq!(tier.stats().corrupt_quarantined, 2);
        assert_eq!(tier.stats().entries, 0, "both bad entries left objects/");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn registry_seeds_are_never_published() {
        let root = fresh_root("seeds");
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let store = ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, Arc::clone(&tier));
        store.register("tiny", || Ok(tiny(7)));
        let _ = store.resolve(&ProgramRef::parse("tiny").unwrap()).unwrap();
        assert_eq!(tier.stats().writes, 0, "builders are the durable copy of registry seeds");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn inline_sources_parse_and_intern() {
        let store = ProgramStore::new();
        let asm_ref = ProgramRef::InlineAsm("li a0, 5\necall\n".to_string());
        let first = store.resolve(&asm_ref).unwrap();
        let second = store.resolve(&asm_ref).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "identical source shares one entry");

        let image = parse_asm("li a0, 5\necall\n").unwrap().to_image();
        let image_ref = ProgramRef::InlineImage(image);
        let from_image = store.resolve(&image_ref).unwrap();
        assert_eq!(
            from_image.fingerprint(),
            first.fingerprint(),
            "asm and image forms of the same program share one content address"
        );
        assert_eq!(store.stats().programs, 1);

        assert!(store.resolve(&ProgramRef::InlineAsm("bad!".to_string())).is_err());
        assert!(store.resolve(&ProgramRef::InlineImage("{}".to_string())).is_err());
    }
}
