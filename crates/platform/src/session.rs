//! The [`Session`] API: the one way to run a guest program on the
//! simulated DBT processor.
//!
//! A session is built declaratively — program, mitigation policy (or a
//! full [`PlatformConfig`]), optional shared [`TranslationService`], block
//! budget — and then either run in one shot or stepped through manually
//! (plant a secret, run, read symbols back):
//!
//! ```
//! use dbt_platform::{Session, TranslationService};
//! use dbt_riscv::{Assembler, Reg};
//! use ghostbusters::MitigationPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! let out = asm.alloc_data("out", 8);
//! asm.li(Reg::A0, 6);
//! asm.li(Reg::A1, 7);
//! asm.mul(Reg::A2, Reg::A0, Reg::A1);
//! asm.la(Reg::A3, out);
//! asm.sd(Reg::A2, Reg::A3, 0);
//! asm.ecall();
//! let program = asm.assemble()?;
//!
//! // One-shot: build + run.
//! let service = TranslationService::new();
//! let summary = Session::builder()
//!     .program(&program)
//!     .policy(MitigationPolicy::Selective)
//!     .service(&service)
//!     .max_blocks(10_000)
//!     .run()?;
//! assert!(summary.halted);
//!
//! // Stepped: build, inspect, run, read back.
//! let mut session = Session::builder()
//!     .program(&program)
//!     .policy(MitigationPolicy::FineGrained)
//!     .service(&service)
//!     .build()?;
//! session.run()?;
//! assert_eq!(session.load_symbol_u64("out")?, 42);
//! # Ok(())
//! # }
//! ```
//!
//! Sharing one [`TranslationService`] across sessions lets every run of the
//! same program reuse translation products instead of recompiling them —
//! the sweep engine passes one service to all of its worker threads, so
//! each `(program, config)` is translated exactly once per sweep.

use crate::processor::{DbtProcessor, PlatformConfig, PlatformError, RunSummary};
use dbt_engine::{DbtEngine, TranslationService};
use dbt_riscv::{GuestMemory, Program};
use dbt_vliw::VliwCore;
use ghostbusters::MitigationPolicy;
use std::sync::Arc;

/// Declarative builder for a [`Session`].
///
/// Created by [`Session::builder`]. `program` is mandatory; everything
/// else defaults to the unprotected platform with no shared service.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder<'p> {
    program: Option<&'p Program>,
    config: Option<PlatformConfig>,
    max_blocks: Option<u64>,
    service: Option<Arc<TranslationService>>,
}

impl<'p> SessionBuilder<'p> {
    /// Sets the guest program to run (mandatory).
    pub fn program(mut self, program: &'p Program) -> SessionBuilder<'p> {
        self.program = Some(program);
        self
    }

    /// Selects the default platform for a mitigation policy
    /// (equivalent to `.config(PlatformConfig::for_policy(policy))`).
    pub fn policy(mut self, policy: MitigationPolicy) -> SessionBuilder<'p> {
        self.config = Some(PlatformConfig::for_policy(policy));
        self
    }

    /// Sets the complete platform configuration (overrides any earlier
    /// [`SessionBuilder::policy`] call and vice versa — the last one wins).
    pub fn config(mut self, config: PlatformConfig) -> SessionBuilder<'p> {
        self.config = Some(config);
        self
    }

    /// Overrides the block budget of the run (applies on top of whatever
    /// `policy`/`config` selected, in any call order).
    pub fn max_blocks(mut self, max_blocks: u64) -> SessionBuilder<'p> {
        self.max_blocks = Some(max_blocks);
        self
    }

    /// Attaches a shared [`TranslationService`]: translations of this run
    /// are looked up in (and published to) the service's memo instead of
    /// being compiled from scratch.
    pub fn service(mut self, service: &Arc<TranslationService>) -> SessionBuilder<'p> {
        self.service = Some(Arc::clone(service));
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::MissingProgram`] if no program was given,
    /// or [`PlatformError::Mem`] if the program image cannot be built.
    pub fn build(self) -> Result<Session, PlatformError> {
        let program = self.program.ok_or(PlatformError::MissingProgram)?;
        let mut config = self.config.unwrap_or_default();
        if let Some(max_blocks) = self.max_blocks {
            config.max_blocks = max_blocks;
        }
        Ok(Session { processor: DbtProcessor::new(program, config, self.service)? })
    }

    /// Builds the session and runs it to completion in one shot.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlatformError`] from construction or execution.
    pub fn run(self) -> Result<RunSummary, PlatformError> {
        self.build()?.run()
    }
}

/// One run of one guest program on the simulated DBT processor.
///
/// This wraps the underlying [`DbtProcessor`] and is the only public way
/// to construct one; see the [module docs](self) for the builder idiom.
#[derive(Debug, Clone)]
pub struct Session {
    processor: DbtProcessor,
}

impl Session {
    /// Starts building a session.
    pub fn builder<'p>() -> SessionBuilder<'p> {
        SessionBuilder::default()
    }

    /// Runs the guest program until it halts or the block budget runs out.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] on translation or execution faults.
    pub fn run(&mut self) -> Result<RunSummary, PlatformError> {
        self.processor.run()
    }

    /// The underlying processor (engine, core, caches), for inspection.
    pub fn processor(&self) -> &DbtProcessor {
        &self.processor
    }

    /// The loaded guest program.
    pub fn program(&self) -> &Program {
        self.processor.program()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        self.processor.config()
    }

    /// The DBT engine (profiles, translation cache, mitigation reports).
    pub fn engine(&self) -> &DbtEngine {
        self.processor.engine()
    }

    /// The VLIW core (cycle counter, cache, architectural state).
    pub fn core(&self) -> &VliwCore {
        self.processor.core()
    }

    /// The deterministic cycle-domain profile of the run: per-phase cycle
    /// attribution, speculation events, translation counters. `program`
    /// is the label stamped into the report; `summary` is what
    /// [`Session::run`] returned.
    pub fn profile_report(&self, program: &str, summary: &RunSummary) -> crate::ProfileReport {
        self.processor.profile_report(program, summary)
    }

    /// Guest memory.
    pub fn memory(&self) -> &GuestMemory {
        self.processor.memory()
    }

    /// Mutable guest memory (e.g. to plant a secret before running).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        self.processor.memory_mut()
    }

    /// Address of a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownSymbol`] if the program does not
    /// define it.
    pub fn symbol(&self, name: &str) -> Result<u64, PlatformError> {
        self.processor.symbol(name)
    }

    /// Reads a 64-bit value at a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbol is unknown or out of bounds.
    pub fn load_symbol_u64(&self, name: &str) -> Result<u64, PlatformError> {
        self.processor.load_symbol_u64(name)
    }

    /// Reads `len` bytes at a named guest symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbol is unknown or out of bounds.
    pub fn load_symbol_bytes(&self, name: &str, len: usize) -> Result<Vec<u8>, PlatformError> {
        self.processor.load_symbol_bytes(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, Reg};

    fn tiny_program() -> Program {
        let mut asm = Assembler::new();
        let out = asm.alloc_data("out", 8);
        asm.li(Reg::A0, 21);
        asm.add(Reg::A0, Reg::A0, Reg::A0);
        asm.la(Reg::A1, out);
        asm.sd(Reg::A0, Reg::A1, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn builder_requires_a_program() {
        assert!(matches!(
            Session::builder().policy(MitigationPolicy::Fence).build(),
            Err(PlatformError::MissingProgram)
        ));
    }

    #[test]
    fn one_shot_run_and_stepped_run_agree() {
        let program = tiny_program();
        let one_shot =
            Session::builder().program(&program).policy(MitigationPolicy::Selective).run().unwrap();
        let mut session = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::Selective)
            .build()
            .unwrap();
        let stepped = session.run().unwrap();
        assert_eq!(one_shot, stepped);
        assert_eq!(session.load_symbol_u64("out").unwrap(), 42);
    }

    #[test]
    fn max_blocks_applies_regardless_of_call_order() {
        let program = tiny_program();
        let before = Session::builder()
            .program(&program)
            .max_blocks(123)
            .policy(MitigationPolicy::Unprotected)
            .build()
            .unwrap();
        let after = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::Unprotected)
            .max_blocks(123)
            .build()
            .unwrap();
        assert_eq!(before.config().max_blocks, 123);
        assert_eq!(after.config().max_blocks, 123);
    }

    #[test]
    fn shared_service_runs_are_cycle_identical_to_fresh_runs() {
        let program = tiny_program();
        let service = TranslationService::new();
        let fresh = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::FineGrained)
            .run()
            .unwrap();
        let first = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::FineGrained)
            .service(&service)
            .run()
            .unwrap();
        let mut warm = Session::builder()
            .program(&program)
            .policy(MitigationPolicy::FineGrained)
            .service(&service)
            .build()
            .unwrap();
        let second = warm.run().unwrap();
        assert_eq!(fresh, first, "attaching a service must not change observables");
        assert_eq!(first, second, "memo hits must not change observables");
        let stats = warm.engine().stats();
        assert!(stats.service_hits > 0, "the warm run must reuse the memo: {stats:?}");
        assert_eq!(stats.service_misses, 0, "everything was already translated");
        assert!(service.stats().hits > 0);
    }
}
