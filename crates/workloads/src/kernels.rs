//! Polybench-style integer kernels, hand-written against the guest
//! assembler.
//!
//! Register conventions shared by all kernels:
//!
//! * `s0` — problem size `n` (also available as a compile-time constant);
//! * `s1` — checksum accumulator, stored to the `"checksum"` symbol at the
//!   end;
//! * `s2..s5` — loop counters;
//! * `s6..s11`, `a0..a5` — array base addresses;
//! * `t0..t3` — kernel-local values;
//! * `a6`, `a7`, `t6` — scratch used by the addressing/loop helpers.

use dbt_riscv::{Assembler, DataRef, Program, Reg};

/// Helper wrapping an [`Assembler`] with matrix/vector addressing and
/// counted loops.
struct Kernel {
    asm: Assembler,
    checksum: DataRef,
}

impl Kernel {
    fn new() -> Kernel {
        let mut asm = Assembler::new();
        let checksum = asm.alloc_data("checksum", 8);
        asm.li(Reg::S1, 0);
        Kernel { asm, checksum }
    }

    /// Allocates a `rows x cols` matrix of 64-bit integers with a small
    /// deterministic initialisation pattern.
    fn matrix(&mut self, name: &str, rows: u64, cols: u64) -> DataRef {
        let data: Vec<u64> = (0..rows * cols).map(|i| (i * 7 + 3) % 13 + 1).collect();
        self.asm.alloc_data_u64(name, &data)
    }

    /// Allocates a vector of 64-bit integers.
    fn vector(&mut self, name: &str, len: u64) -> DataRef {
        let data: Vec<u64> = (0..len).map(|i| (i * 5 + 1) % 11 + 1).collect();
        self.asm.alloc_data_u64(name, &data)
    }

    /// Loads a base address into a register.
    fn base(&mut self, reg: Reg, data: DataRef) {
        self.asm.la(reg, data);
    }

    /// `for counter in 0..bound { body }`
    fn for_range(&mut self, counter: Reg, bound: u64, body: impl FnOnce(&mut Kernel)) {
        let head = self.asm.new_label();
        self.asm.li(counter, 0);
        self.asm.bind(head);
        body(self);
        self.asm.addi(counter, counter, 1);
        self.asm.li(Reg::T6, bound as i64);
        self.asm.blt(counter, Reg::T6, head);
    }

    /// Computes `&base[row * cols + col]` into `a7`.
    fn elem_addr(&mut self, base: Reg, row: Reg, col: Reg, cols: u64) {
        self.asm.li(Reg::A6, cols as i64);
        self.asm.mul(Reg::A6, row, Reg::A6);
        self.asm.add(Reg::A6, Reg::A6, col);
        self.asm.slli(Reg::A6, Reg::A6, 3);
        self.asm.add(Reg::A7, base, Reg::A6);
    }

    /// `dst = base[row * cols + col]`
    fn load_elem(&mut self, dst: Reg, base: Reg, row: Reg, col: Reg, cols: u64) {
        self.elem_addr(base, row, col, cols);
        self.asm.ld(dst, Reg::A7, 0);
    }

    /// `base[row * cols + col] = src`
    fn store_elem(&mut self, src: Reg, base: Reg, row: Reg, col: Reg, cols: u64) {
        self.elem_addr(base, row, col, cols);
        self.asm.sd(src, Reg::A7, 0);
    }

    /// `dst = base[index]`
    fn load_vec(&mut self, dst: Reg, base: Reg, index: Reg) {
        self.asm.slli(Reg::A6, index, 3);
        self.asm.add(Reg::A7, base, Reg::A6);
        self.asm.ld(dst, Reg::A7, 0);
    }

    /// `base[index] = src`
    fn store_vec(&mut self, src: Reg, base: Reg, index: Reg) {
        self.asm.slli(Reg::A6, index, 3);
        self.asm.add(Reg::A7, base, Reg::A6);
        self.asm.sd(src, Reg::A7, 0);
    }

    /// Adds `value` into the checksum accumulator.
    fn accumulate(&mut self, value: Reg) {
        self.asm.add(Reg::S1, Reg::S1, value);
    }

    /// Stores the checksum and terminates the program.
    fn finish(mut self) -> Program {
        self.asm.la(Reg::A7, self.checksum);
        self.asm.sd(Reg::S1, Reg::A7, 0);
        self.asm.ecall();
        self.asm.assemble().expect("kernel assembles")
    }
}

/// Plain matrix multiplication `C = A * B` (Polybench `gemm`, integer form).
pub fn gemm(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let b = k.matrix("b", n, n);
    let c = k.matrix("c", n, n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.base(Reg::S8, c);
    k.for_range(Reg::S2, n, |k| {
        k.for_range(Reg::S3, n, |k| {
            k.asm.li(Reg::T0, 0);
            k.for_range(Reg::S4, n, |k| {
                k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S4, n);
                k.load_elem(Reg::T2, Reg::S7, Reg::S4, Reg::S3, n);
                k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            });
            k.store_elem(Reg::T0, Reg::S8, Reg::S2, Reg::S3, n);
            k.accumulate(Reg::T0);
        });
    });
    k.finish()
}

fn matmul_into(k: &mut Kernel, a: Reg, b: Reg, c: Reg, n: u64, accumulate: bool) {
    k.for_range(Reg::S2, n, |k| {
        k.for_range(Reg::S3, n, |k| {
            k.asm.li(Reg::T0, 0);
            k.for_range(Reg::S4, n, |k| {
                k.load_elem(Reg::T1, a, Reg::S2, Reg::S4, n);
                k.load_elem(Reg::T2, b, Reg::S4, Reg::S3, n);
                k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            });
            k.store_elem(Reg::T0, c, Reg::S2, Reg::S3, n);
            if accumulate {
                k.accumulate(Reg::T0);
            }
        });
    });
}

/// Two chained matrix multiplications (Polybench `2mm`).
pub fn two_mm(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let b = k.matrix("b", n, n);
    let c = k.matrix("c", n, n);
    let tmp = k.matrix("tmp", n, n);
    let d = k.matrix("d", n, n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.base(Reg::S8, tmp);
    k.base(Reg::S9, c);
    k.base(Reg::S10, d);
    matmul_into(&mut k, Reg::S6, Reg::S7, Reg::S8, n, false);
    matmul_into(&mut k, Reg::S8, Reg::S9, Reg::S10, n, true);
    k.finish()
}

/// Three chained matrix multiplications (Polybench `3mm`).
pub fn three_mm(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let b = k.matrix("b", n, n);
    let c = k.matrix("c", n, n);
    let d = k.matrix("d", n, n);
    let e = k.matrix("e", n, n);
    let f = k.matrix("f", n, n);
    let g = k.matrix("g", n, n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.base(Reg::S8, e);
    matmul_into(&mut k, Reg::S6, Reg::S7, Reg::S8, n, false);
    k.base(Reg::S6, c);
    k.base(Reg::S7, d);
    k.base(Reg::S9, f);
    matmul_into(&mut k, Reg::S6, Reg::S7, Reg::S9, n, false);
    k.base(Reg::S10, g);
    matmul_into(&mut k, Reg::S8, Reg::S9, Reg::S10, n, true);
    k.finish()
}

/// `y = A^T (A x)` (Polybench `atax`).
pub fn atax(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let x = k.vector("x", n);
    let y = k.vector("y", n);
    let tmp = k.vector("tmp", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, x);
    k.base(Reg::S8, y);
    k.base(Reg::S9, tmp);
    k.for_range(Reg::S2, n, |k| {
        k.asm.li(Reg::T0, 0);
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            k.load_vec(Reg::T2, Reg::S7, Reg::S3);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
        });
        k.store_vec(Reg::T0, Reg::S9, Reg::S2);
    });
    k.for_range(Reg::S2, n, |k| {
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            k.load_vec(Reg::T2, Reg::S9, Reg::S2);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.load_vec(Reg::T3, Reg::S8, Reg::S3);
            k.asm.add(Reg::T3, Reg::T3, Reg::T1);
            k.store_vec(Reg::T3, Reg::S8, Reg::S3);
        });
    });
    k.for_range(Reg::S2, n, |k| {
        k.load_vec(Reg::T0, Reg::S8, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// BiCG sub-kernel: `s = A^T r`, `q = A p` (Polybench `bicg`).
pub fn bicg(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let r = k.vector("r", n);
    let p = k.vector("p", n);
    let s = k.vector("s", n);
    let q = k.vector("q", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, r);
    k.base(Reg::S8, p);
    k.base(Reg::S9, s);
    k.base(Reg::S10, q);
    k.for_range(Reg::S2, n, |k| {
        k.asm.li(Reg::T0, 0); // q[i]
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            // s[j] += r[i] * A[i][j]
            k.load_vec(Reg::T2, Reg::S7, Reg::S2);
            k.asm.mul(Reg::T2, Reg::T2, Reg::T1);
            k.load_vec(Reg::T3, Reg::S9, Reg::S3);
            k.asm.add(Reg::T3, Reg::T3, Reg::T2);
            k.store_vec(Reg::T3, Reg::S9, Reg::S3);
            // q[i] += A[i][j] * p[j]
            k.load_vec(Reg::T2, Reg::S8, Reg::S3);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
        });
        k.store_vec(Reg::T0, Reg::S10, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// Matrix-vector product and transpose product (Polybench `mvt`).
pub fn mvt(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let x1 = k.vector("x1", n);
    let x2 = k.vector("x2", n);
    let y1 = k.vector("y1", n);
    let y2 = k.vector("y2", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, x1);
    k.base(Reg::S8, x2);
    k.base(Reg::S9, y1);
    k.base(Reg::S10, y2);
    k.for_range(Reg::S2, n, |k| {
        k.load_vec(Reg::T0, Reg::S7, Reg::S2);
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            k.load_vec(Reg::T2, Reg::S9, Reg::S3);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
        });
        k.store_vec(Reg::T0, Reg::S7, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.for_range(Reg::S2, n, |k| {
        k.load_vec(Reg::T0, Reg::S8, Reg::S2);
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T1, Reg::S6, Reg::S3, Reg::S2, n);
            k.load_vec(Reg::T2, Reg::S10, Reg::S3);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
        });
        k.store_vec(Reg::T0, Reg::S8, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// Scaled sum of two matrix-vector products (Polybench `gesummv`).
pub fn gesummv(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let b = k.matrix("b", n, n);
    let x = k.vector("x", n);
    let y = k.vector("y", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.base(Reg::S8, x);
    k.base(Reg::S9, y);
    k.for_range(Reg::S2, n, |k| {
        k.asm.li(Reg::T0, 0); // tmp
        k.asm.li(Reg::T3, 0); // y[i]
        k.for_range(Reg::S3, n, |k| {
            k.load_vec(Reg::T2, Reg::S8, Reg::S3);
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            k.load_elem(Reg::T1, Reg::S7, Reg::S2, Reg::S3, n);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.add(Reg::T3, Reg::T3, Reg::T1);
        });
        // y[i] = 3 * tmp + 2 * y_partial
        k.asm.slli(Reg::T1, Reg::T0, 1);
        k.asm.add(Reg::T0, Reg::T0, Reg::T1);
        k.asm.slli(Reg::T3, Reg::T3, 1);
        k.asm.add(Reg::T0, Reg::T0, Reg::T3);
        k.store_vec(Reg::T0, Reg::S9, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// Symmetric rank-k update `C += A * A^T` (Polybench `syrk`).
pub fn syrk(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let c = k.matrix("c", n, n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, c);
    k.for_range(Reg::S2, n, |k| {
        k.for_range(Reg::S3, n, |k| {
            k.load_elem(Reg::T0, Reg::S7, Reg::S2, Reg::S3, n);
            k.for_range(Reg::S4, n, |k| {
                k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S4, n);
                k.load_elem(Reg::T2, Reg::S6, Reg::S3, Reg::S4, n);
                k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            });
            k.store_elem(Reg::T0, Reg::S7, Reg::S2, Reg::S3, n);
            k.accumulate(Reg::T0);
        });
    });
    k.finish()
}

/// Forward substitution on a lower-triangular system (Polybench `trisolv`).
pub fn trisolv(n: u64) -> Program {
    let mut k = Kernel::new();
    let l = k.matrix("l", n, n);
    let b = k.vector("b", n);
    let x = k.vector("x", n);
    k.base(Reg::S6, l);
    k.base(Reg::S7, b);
    k.base(Reg::S8, x);
    k.for_range(Reg::S2, n, |k| {
        k.load_vec(Reg::T0, Reg::S7, Reg::S2);
        // subtract L[i][j] * x[j] for j < i
        k.for_range(Reg::S3, n, |k| {
            let done = k.asm.new_label();
            k.asm.bge(Reg::S3, Reg::S2, done);
            k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S3, n);
            k.load_vec(Reg::T2, Reg::S8, Reg::S3);
            k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
            k.asm.sub(Reg::T0, Reg::T0, Reg::T1);
            k.asm.bind(done);
        });
        k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S2, n);
        k.asm.div(Reg::T0, Reg::T0, Reg::T1);
        k.store_vec(Reg::T0, Reg::S8, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// Multi-resolution analysis kernel (Polybench `doitgen`, reduced to one
/// `r` plane so the footprint stays small).
pub fn doitgen(n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let c4 = k.matrix("c4", n, n);
    let sum = k.vector("sum", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, c4);
    k.base(Reg::S8, sum);
    k.for_range(Reg::S2, n, |k| {
        // sum[p] = sum_s A[q][s] * C4[s][p]
        k.for_range(Reg::S3, n, |k| {
            k.asm.li(Reg::T0, 0);
            k.for_range(Reg::S4, n, |k| {
                k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S4, n);
                k.load_elem(Reg::T2, Reg::S7, Reg::S4, Reg::S3, n);
                k.asm.mul(Reg::T1, Reg::T1, Reg::T2);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            });
            k.store_vec(Reg::T0, Reg::S8, Reg::S3);
        });
        // A[q][p] = sum[p]
        k.for_range(Reg::S3, n, |k| {
            k.load_vec(Reg::T0, Reg::S8, Reg::S3);
            k.store_elem(Reg::T0, Reg::S6, Reg::S2, Reg::S3, n);
            k.accumulate(Reg::T0);
        });
    });
    k.finish()
}

/// 1-D Jacobi stencil (Polybench `jacobi-1d`).
pub fn jacobi_1d(steps: u64, n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.vector("a", n);
    let b = k.vector("b", n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.for_range(Reg::S5, steps, |k| {
        k.for_range(Reg::S2, n - 2, |k| {
            k.asm.addi(Reg::S3, Reg::S2, 1);
            k.load_vec(Reg::T0, Reg::S6, Reg::S2);
            k.load_vec(Reg::T1, Reg::S6, Reg::S3);
            k.asm.addi(Reg::S4, Reg::S3, 1);
            k.load_vec(Reg::T2, Reg::S6, Reg::S4);
            k.asm.add(Reg::T0, Reg::T0, Reg::T1);
            k.asm.add(Reg::T0, Reg::T0, Reg::T2);
            k.asm.li(Reg::T3, 3);
            k.asm.div(Reg::T0, Reg::T0, Reg::T3);
            k.store_vec(Reg::T0, Reg::S7, Reg::S3);
        });
        k.for_range(Reg::S2, n - 2, |k| {
            k.asm.addi(Reg::S3, Reg::S2, 1);
            k.load_vec(Reg::T0, Reg::S7, Reg::S3);
            k.store_vec(Reg::T0, Reg::S6, Reg::S3);
        });
    });
    k.for_range(Reg::S2, n, |k| {
        k.load_vec(Reg::T0, Reg::S6, Reg::S2);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// 2-D Jacobi 5-point stencil (Polybench `jacobi-2d`).
pub fn jacobi_2d(steps: u64, n: u64) -> Program {
    let mut k = Kernel::new();
    let a = k.matrix("a", n, n);
    let b = k.matrix("b", n, n);
    k.base(Reg::S6, a);
    k.base(Reg::S7, b);
    k.for_range(Reg::S5, steps, |k| {
        k.for_range(Reg::S2, n - 2, |k| {
            k.for_range(Reg::S3, n - 2, |k| {
                // centre indexes are (S2+1, S3+1)
                k.asm.addi(Reg::S8, Reg::S2, 1);
                k.asm.addi(Reg::S9, Reg::S3, 1);
                k.load_elem(Reg::T0, Reg::S6, Reg::S8, Reg::S9, n);
                k.load_elem(Reg::T1, Reg::S6, Reg::S2, Reg::S9, n);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
                k.load_elem(Reg::T1, Reg::S6, Reg::S8, Reg::S3, n);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
                k.asm.addi(Reg::S10, Reg::S8, 1);
                k.load_elem(Reg::T1, Reg::S6, Reg::S10, Reg::S9, n);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
                k.asm.addi(Reg::S11, Reg::S9, 1);
                k.load_elem(Reg::T1, Reg::S6, Reg::S8, Reg::S11, n);
                k.asm.add(Reg::T0, Reg::T0, Reg::T1);
                k.asm.li(Reg::T3, 5);
                k.asm.div(Reg::T0, Reg::T0, Reg::T3);
                k.store_elem(Reg::T0, Reg::S7, Reg::S8, Reg::S9, n);
            });
        });
        k.for_range(Reg::S2, n - 2, |k| {
            k.for_range(Reg::S3, n - 2, |k| {
                k.asm.addi(Reg::S8, Reg::S2, 1);
                k.asm.addi(Reg::S9, Reg::S3, 1);
                k.load_elem(Reg::T0, Reg::S7, Reg::S8, Reg::S9, n);
                k.store_elem(Reg::T0, Reg::S6, Reg::S8, Reg::S9, n);
            });
        });
    });
    k.for_range(Reg::S2, n, |k| {
        k.load_elem(Reg::T0, Reg::S6, Reg::S2, Reg::S2, n);
        k.accumulate(Reg::T0);
    });
    k.finish()
}

/// Byte-offset walk helper: materialises `&base[A0]` (with `A0` a running
/// *byte* offset) into `dst` by loading the array base inside the loop body.
///
/// Rematerialising the base constant per iteration mirrors what compilers
/// do and is load-bearing for the analyses: the base resolves to a static
/// region inside every superblock, instead of being an opaque live-in.
fn walk_addr(asm: &mut Assembler, dst: Reg, base: DataRef, offset: Reg) {
    asm.la(dst, base);
    asm.add(dst, dst, offset);
}

/// Histogram over a precomputed index stream: `hist[idx[i]] += 1`.
///
/// The hot loop carries a store→load pair on `hist` whose addresses cannot
/// be disambiguated at translation time, plus an index load feeding a
/// dependent address. The blanket poisoning analysis therefore flags the
/// `hist` load as a Spectre pattern in every merged superblock and the
/// fine-grained mitigation serialises the loop — yet no attacker-influenced
/// value can reach a speculative address: the index stream is read through
/// a plain pointer walk (no bypassable bound check constrains it) and the
/// bypassed store targets `hist`, a region disjoint from `idx`. The
/// speculative taint analysis proves the loop leak-free, which is exactly
/// the gap the `Selective` policy exploits.
pub fn histogram(passes: u64, entries: u64, bins: u64) -> Program {
    let mut k = Kernel::new();
    let idx_data: Vec<u64> = (0..entries).map(|i| (i * 7 + 3) % bins).collect();
    let idx = k.asm.alloc_data_u64("idx", &idx_data);
    let hist = k.asm.alloc_data_u64("hist", &vec![0u64; bins as usize]);
    k.for_range(Reg::S2, passes, |k| {
        k.asm.li(Reg::A0, 0); // running byte offset into idx
        k.for_range(Reg::S3, entries, |k| {
            walk_addr(&mut k.asm, Reg::T5, idx, Reg::A0);
            k.asm.ld(Reg::T0, Reg::T5, 0); // x = idx[i]
            k.asm.slli(Reg::T2, Reg::T0, 3);
            walk_addr(&mut k.asm, Reg::T1, hist, Reg::T2);
            k.asm.ld(Reg::T2, Reg::T1, 0); // h = hist[x]
            k.asm.addi(Reg::T2, Reg::T2, 1);
            k.asm.sd(Reg::T2, Reg::T1, 0); // hist[x] = h + 1
            k.accumulate(Reg::T2);
            k.asm.addi(Reg::A0, Reg::A0, 8);
        });
    });
    k.finish()
}

/// Streaming table lookup: `sum += lut[a[i] & (LUT_SIZE - 1)]`.
///
/// Double indirection in the hot loop: the `lut` address is derived from a
/// loaded value, so once trace scheduling merges iterations, the blanket
/// analysis sees a control-speculative load feeding a speculative address —
/// a Spectre pattern — and the fine-grained mitigation re-serialises the
/// lookup behind the loop's side exits. The taint analysis instead observes
/// that the bypassed exits constrain only the loop counter, never the
/// pointer walk that forms the addresses: no attacker handle, leak-free.
pub fn stream_lut(passes: u64, entries: u64) -> Program {
    const LUT_SIZE: u64 = 64;
    let mut k = Kernel::new();
    let a = k.vector("a", entries);
    let lut_data: Vec<u64> = (0..LUT_SIZE).map(|i| (i * 11 + 5) % 17 + 1).collect();
    let lut = k.asm.alloc_data_u64("lut", &lut_data);
    k.for_range(Reg::S2, passes, |k| {
        k.asm.li(Reg::A0, 0); // running byte offset into a
        k.for_range(Reg::S3, entries, |k| {
            walk_addr(&mut k.asm, Reg::T5, a, Reg::A0);
            k.asm.ld(Reg::T0, Reg::T5, 0); // v = a[i]
            k.asm.andi(Reg::T2, Reg::T0, (LUT_SIZE - 1) as i64);
            k.asm.slli(Reg::T2, Reg::T2, 3);
            walk_addr(&mut k.asm, Reg::T1, lut, Reg::T2);
            k.asm.ld(Reg::T3, Reg::T1, 0); // w = lut[v & 63]
            k.accumulate(Reg::T3);
            k.asm.addi(Reg::A0, Reg::A0, 8);
        });
    });
    k.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{ExitReason, Interpreter};

    fn checksum(program: &Program) -> u64 {
        let mut interp = Interpreter::new(program);
        assert_eq!(interp.run(200_000_000).unwrap(), ExitReason::Ecall);
        interp.memory().load_u64(program.symbol("checksum").unwrap()).unwrap()
    }

    #[test]
    fn gemm_checksum_matches_host_computation() {
        let n = 5u64;
        let program = gemm(n);
        let a: Vec<i64> = (0..n * n).map(|i| ((i * 7 + 3) % 13 + 1) as i64).collect();
        let b = a.clone();
        let mut expected = 0i64;
        for i in 0..n as usize {
            for j in 0..n as usize {
                let mut acc = 0i64;
                for kk in 0..n as usize {
                    acc += a[i * n as usize + kk] * b[kk * n as usize + j];
                }
                expected += acc;
            }
        }
        assert_eq!(checksum(&program) as i64, expected);
    }

    #[test]
    fn kernels_are_deterministic() {
        let p1 = atax(6);
        let p2 = atax(6);
        assert_eq!(checksum(&p1), checksum(&p2));
    }

    #[test]
    fn trisolv_divides_without_faulting() {
        let program = trisolv(8);
        assert_ne!(checksum(&program), 0);
    }

    #[test]
    fn stencils_terminate() {
        assert_ne!(checksum(&jacobi_1d(2, 24)), 0);
        assert_ne!(checksum(&jacobi_2d(2, 8)), 0);
    }

    #[test]
    fn histogram_checksum_matches_host_computation() {
        let (passes, entries, bins) = (3u64, 24u64, 16u64);
        let program = histogram(passes, entries, bins);
        let idx: Vec<usize> = (0..entries as usize).map(|i| (i * 7 + 3) % bins as usize).collect();
        let mut hist = vec![0u64; bins as usize];
        let mut expected = 0u64;
        for _ in 0..passes {
            for &x in &idx {
                hist[x] += 1;
                expected += hist[x];
            }
        }
        assert_eq!(checksum(&program), expected);
    }

    #[test]
    fn stream_lut_checksum_matches_host_computation() {
        let (passes, entries) = (2u64, 24u64);
        let program = stream_lut(passes, entries);
        let a: Vec<u64> = (0..entries).map(|i| (i * 5 + 1) % 11 + 1).collect();
        let lut: Vec<u64> = (0..64).map(|i| (i * 11 + 5) % 17 + 1).collect();
        let expected: u64 = passes * a.iter().map(|v| lut[(v & 63) as usize]).sum::<u64>();
        assert_eq!(checksum(&program), expected);
    }
}
