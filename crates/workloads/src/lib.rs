//! Guest workloads for the performance evaluation (the paper's Figure 4).
//!
//! The paper runs Polybench kernels on Hybrid-DBT. Polybench is a C/float
//! suite; here each kernel is hand-written against the [`dbt_riscv`]
//! assembler with **integer** arrays, preserving what matters for the
//! experiment: the loop nests, the memory-access patterns and therefore the
//! scheduling/speculation opportunities the DBT engine sees. Every kernel
//! accumulates a checksum into the guest symbol `"checksum"` so that
//! differential tests can verify that translation (with or without
//! speculation and mitigation) preserves the architectural result.
//!
//! [`ptr_matmul`] additionally provides the pointer-array 2-D matrix
//! multiplication the paper uses to stress the countermeasures: every row
//! access goes through a pointer load (double indirection), so speculative
//! loads with attacker-influencable addresses — the Spectre pattern — occur
//! in the hot loop.

pub mod kernels;
pub mod ptr_matmul;

use dbt_riscv::Program;

/// A named guest workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short kernel name (matches the Polybench kernel it mirrors).
    pub name: &'static str,
    /// The assembled guest program.
    pub program: Program,
}

/// Problem-size preset for the workload suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSize {
    /// Very small instances, for unit tests.
    Mini,
    /// The default instances used by the benchmark harness.
    Small,
}

impl WorkloadSize {
    /// Matrix dimension used by the dense-linear-algebra kernels.
    pub fn n(self) -> u64 {
        match self {
            WorkloadSize::Mini => 6,
            WorkloadSize::Small => 14,
        }
    }

    /// Vector length / time steps used by the stencil kernels.
    pub fn stencil_n(self) -> u64 {
        match self {
            WorkloadSize::Mini => 32,
            WorkloadSize::Small => 160,
        }
    }

    /// Number of stencil time steps.
    pub fn steps(self) -> u64 {
        match self {
            WorkloadSize::Mini => 2,
            WorkloadSize::Small => 6,
        }
    }
}

/// The kernel names of [`suite`], in suite order — for name validation and
/// listings without assembling any guest program.
pub const SUITE_NAMES: [&str; 14] = [
    "gemm",
    "2mm",
    "3mm",
    "atax",
    "bicg",
    "mvt",
    "gesummv",
    "syrk",
    "trisolv",
    "doitgen",
    "jacobi-1d",
    "jacobi-2d",
    "histogram",
    "stream-lut",
];

/// Builds the whole Polybench-style suite at the given size.
///
/// The returned list matches the kernels reported in the paper's Figure 4 as
/// closely as this integer re-implementation allows.
pub fn suite(size: WorkloadSize) -> Vec<Workload> {
    let n = size.n();
    let sn = size.stencil_n();
    let steps = size.steps();
    vec![
        Workload { name: "gemm", program: kernels::gemm(n) },
        Workload { name: "2mm", program: kernels::two_mm(n) },
        Workload { name: "3mm", program: kernels::three_mm(n) },
        Workload { name: "atax", program: kernels::atax(n) },
        Workload { name: "bicg", program: kernels::bicg(n) },
        Workload { name: "mvt", program: kernels::mvt(n) },
        Workload { name: "gesummv", program: kernels::gesummv(n) },
        Workload { name: "syrk", program: kernels::syrk(n) },
        Workload { name: "trisolv", program: kernels::trisolv(n) },
        Workload { name: "doitgen", program: kernels::doitgen(n) },
        Workload { name: "jacobi-1d", program: kernels::jacobi_1d(steps, sn) },
        Workload { name: "jacobi-2d", program: kernels::jacobi_2d(steps, n + 4) },
        Workload { name: "histogram", program: kernels::histogram(steps + 1, sn, 16) },
        Workload { name: "stream-lut", program: kernels::stream_lut(steps + 1, sn) },
    ]
}

/// The pointer-array matrix multiplication used in the paper's last
/// experiment (fine-grained vs fence overhead when the Spectre pattern is
/// frequent).
pub fn pointer_matmul(size: WorkloadSize) -> Workload {
    Workload { name: "ptr-matmul", program: ptr_matmul::build(size.n()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{ExitReason, Interpreter};

    #[test]
    fn suite_has_fourteen_distinct_kernels() {
        let suite = suite(WorkloadSize::Mini);
        assert_eq!(suite.len(), 14);
        let names: std::collections::BTreeSet<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 14);
        let listed: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(listed, SUITE_NAMES, "SUITE_NAMES must mirror the built suite");
    }

    #[test]
    fn every_kernel_terminates_and_produces_a_checksum() {
        for workload in suite(WorkloadSize::Mini) {
            let mut interp = Interpreter::new(&workload.program);
            assert_eq!(
                interp.run(200_000_000).unwrap(),
                ExitReason::Ecall,
                "{} did not terminate",
                workload.name
            );
            let checksum_addr = workload.program.symbol("checksum").unwrap();
            let checksum = interp.memory().load_u64(checksum_addr).unwrap();
            assert_ne!(checksum, 0, "{} produced a zero checksum", workload.name);
        }
    }

    #[test]
    fn pointer_matmul_terminates() {
        let workload = pointer_matmul(WorkloadSize::Mini);
        let mut interp = Interpreter::new(&workload.program);
        assert_eq!(interp.run(200_000_000).unwrap(), ExitReason::Ecall);
        let checksum_addr = workload.program.symbol("checksum").unwrap();
        assert_ne!(interp.memory().load_u64(checksum_addr).unwrap(), 0);
    }

    #[test]
    fn sizes_scale() {
        assert!(WorkloadSize::Small.n() > WorkloadSize::Mini.n());
        assert!(WorkloadSize::Small.stencil_n() > WorkloadSize::Mini.stencil_n());
    }
}
