//! Pointer-array matrix multiplication.
//!
//! The paper's last experiment modifies the matrix multiplication so that
//! 2-D arrays are represented as arrays of row pointers. Every element
//! access then performs a double indirection — `row = A_rows[i]; v =
//! row[k]` — which is precisely the shape the poisoning analysis flags: the
//! second load's address comes from a (potentially speculative) first load.
//! With such patterns in the hot loop, the fence countermeasure serialises
//! much more of the schedule than the fine-grained one, which is the
//! contrast the paper reports (≈15 % vs ≈4 % slowdown).

use dbt_riscv::{Assembler, DataRef, Program, Reg};

fn alloc_ptr_matrix(asm: &mut Assembler, name: &str, n: u64) -> (DataRef, DataRef) {
    // Row storage followed by the array of row pointers.
    let data: Vec<u64> = (0..n * n).map(|i| (i * 7 + 3) % 13 + 1).collect();
    let rows = asm.alloc_data_u64(&format!("{name}_data"), &data);
    let pointers: Vec<u64> = (0..n).map(|i| rows.addr() + i * n * 8).collect();
    let ptrs = asm.alloc_data_u64(&format!("{name}_rows"), &pointers);
    (rows, ptrs)
}

/// Builds the pointer-array `C = A * B` multiplication for `n x n`
/// matrices.
///
/// The produced program stores a checksum of `C` under the symbol
/// `"checksum"`.
pub fn build(n: u64) -> Program {
    let mut asm = Assembler::new();
    let checksum = asm.alloc_data("checksum", 8);
    let (_a_data, a_rows) = alloc_ptr_matrix(&mut asm, "a", n);
    let (_b_data, b_rows) = alloc_ptr_matrix(&mut asm, "b", n);
    let (_c_data, c_rows) = alloc_ptr_matrix(&mut asm, "c", n);

    asm.li(Reg::S1, 0); // checksum accumulator
    asm.la(Reg::S6, a_rows);
    asm.la(Reg::S7, b_rows);
    asm.la(Reg::S8, c_rows);

    let i_loop = asm.new_label();
    let j_loop = asm.new_label();
    let k_loop = asm.new_label();

    asm.li(Reg::S2, 0); // i
    asm.bind(i_loop);
    // a_row = A_rows[i]; c_row = C_rows[i]
    asm.slli(Reg::A6, Reg::S2, 3);
    asm.add(Reg::A7, Reg::S6, Reg::A6);
    asm.ld(Reg::A0, Reg::A7, 0);
    asm.add(Reg::A7, Reg::S8, Reg::A6);
    asm.ld(Reg::A2, Reg::A7, 0);

    asm.li(Reg::S3, 0); // j
    asm.bind(j_loop);
    asm.li(Reg::T0, 0); // acc
    asm.li(Reg::S4, 0); // k
    asm.bind(k_loop);
    // v1 = a_row[k]
    asm.slli(Reg::A6, Reg::S4, 3);
    asm.add(Reg::A7, Reg::A0, Reg::A6);
    asm.ld(Reg::T1, Reg::A7, 0);
    // b_row = B_rows[k]; v2 = b_row[j]  (double indirection)
    asm.slli(Reg::A6, Reg::S4, 3);
    asm.add(Reg::A7, Reg::S7, Reg::A6);
    asm.ld(Reg::T2, Reg::A7, 0);
    asm.slli(Reg::A6, Reg::S3, 3);
    asm.add(Reg::A7, Reg::T2, Reg::A6);
    asm.ld(Reg::T2, Reg::A7, 0);
    asm.mul(Reg::T1, Reg::T1, Reg::T2);
    asm.add(Reg::T0, Reg::T0, Reg::T1);
    asm.addi(Reg::S4, Reg::S4, 1);
    asm.li(Reg::T6, n as i64);
    asm.blt(Reg::S4, Reg::T6, k_loop);
    // c_row[j] = acc
    asm.slli(Reg::A6, Reg::S3, 3);
    asm.add(Reg::A7, Reg::A2, Reg::A6);
    asm.sd(Reg::T0, Reg::A7, 0);
    asm.add(Reg::S1, Reg::S1, Reg::T0);
    asm.addi(Reg::S3, Reg::S3, 1);
    asm.li(Reg::T6, n as i64);
    asm.blt(Reg::S3, Reg::T6, j_loop);
    asm.addi(Reg::S2, Reg::S2, 1);
    asm.li(Reg::T6, n as i64);
    asm.blt(Reg::S2, Reg::T6, i_loop);

    asm.la(Reg::A7, checksum);
    asm.sd(Reg::S1, Reg::A7, 0);
    asm.ecall();
    asm.assemble().expect("pointer matmul assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use dbt_riscv::{ExitReason, Interpreter};

    fn checksum(program: &Program) -> u64 {
        let mut interp = Interpreter::new(program);
        assert_eq!(interp.run(200_000_000).unwrap(), ExitReason::Ecall);
        interp.memory().load_u64(program.symbol("checksum").unwrap()).unwrap()
    }

    #[test]
    fn pointer_matmul_matches_flat_gemm() {
        // Same initialisation pattern, same arithmetic → same checksum as the
        // flat gemm kernel.
        let n = 6;
        assert_eq!(checksum(&build(n)), checksum(&kernels::gemm(n)));
    }
}
