//! The span API: RAII wall-clock phase timing.
//!
//! A [`Span`] notes [`Instant::now`] when created and records the
//! elapsed duration into its histogram when dropped — so timing a phase
//! is one line at the top of the scope:
//!
//! ```
//! # use dbt_obs::Span;
//! let _span = Span::enter("translate.codegen");
//! // ... the phase ...
//! // drop records the elapsed wall-clock time
//! ```
//!
//! `Span::enter` records into the process-wide registry's
//! `dbt_span_seconds{span="..."}` family; [`Span::on`] records into any
//! explicit histogram (what the daemon's per-op latency tracking uses).
//! Spans read the clock and touch atomics only — they never feed back
//! into the simulated platform, so deterministic cycle outputs are
//! unaffected.

use crate::metric::Histogram;
use crate::registry::MetricsRegistry;
use std::sync::Arc;
use std::time::Instant;

/// The family name `Span::enter` records under in the global registry.
pub const SPAN_FAMILY: &str = "dbt_span_seconds";

/// An in-flight phase timing; records on drop.
#[derive(Debug)]
#[must_use = "a span records when dropped; binding it to _ would record immediately"]
pub struct Span {
    histogram: Arc<Histogram>,
    started: Instant,
}

impl Span {
    /// Starts a span on the process-wide registry, labelled
    /// `span="<name>"` in the [`SPAN_FAMILY`] histogram family.
    pub fn enter(name: &str) -> Span {
        MetricsRegistry::global().span(name)
    }

    /// Starts a span that records into the given histogram.
    pub fn on(histogram: &Arc<Histogram>) -> Span {
        Span { histogram: Arc::clone(histogram), started: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe(self.started.elapsed());
    }
}

impl MetricsRegistry {
    /// Starts a span on *this* registry's [`SPAN_FAMILY`] family,
    /// labelled `span="<name>"` — the per-daemon flavour of
    /// [`Span::enter`].
    pub fn span(&self, name: &str) -> Span {
        let histogram = self.histogram_with(
            SPAN_FAMILY,
            "Wall-clock phase durations by span name.",
            crate::metric::DEFAULT_LATENCY_BOUNDS_MICROS,
            &[("span", name)],
        );
        Span::on(&histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_exactly_once_on_drop() {
        let registry = MetricsRegistry::new();
        let histogram =
            registry.histogram("dbt_test_seconds", "t", crate::DEFAULT_LATENCY_BOUNDS_MICROS);
        {
            let _span = Span::on(&histogram);
            assert_eq!(histogram.count(), 0, "nothing recorded while in flight");
        }
        assert_eq!(histogram.count(), 1);
    }

    #[test]
    fn registry_span_lands_in_the_span_family() {
        let registry = MetricsRegistry::new();
        drop(registry.span("translate.codegen"));
        drop(registry.span("translate.codegen"));
        drop(registry.span("simulate"));
        let text = registry.render();
        assert!(text.contains("dbt_span_seconds_count{span=\"translate.codegen\"} 2"), "{text}");
        assert!(text.contains("dbt_span_seconds_count{span=\"simulate\"} 1"), "{text}");
    }

    #[test]
    fn nested_spans_attribute_to_their_own_phases() {
        // An outer phase span stays open while an inner sub-phase span
        // opens and closes: each must record exactly once, into its own
        // labelled series, and the inner drop must not close the outer.
        let registry = MetricsRegistry::new();
        {
            let _outer = registry.span("phase.outer");
            {
                let _inner = registry.span("phase.inner");
            }
            let mid = registry.render();
            assert!(mid.contains("dbt_span_seconds_count{span=\"phase.inner\"} 1"), "{mid}");
            assert!(
                mid.contains("dbt_span_seconds_count{span=\"phase.outer\"} 0"),
                "outer span must still be in flight: {mid}"
            );
        }
        let text = registry.render();
        assert!(text.contains("dbt_span_seconds_count{span=\"phase.outer\"} 1"), "{text}");
        assert!(text.contains("dbt_span_seconds_count{span=\"phase.inner\"} 1"), "{text}");
    }

    #[test]
    fn enter_records_into_the_global_registry() {
        drop(Span::enter("obs.test.enter"));
        let text = MetricsRegistry::global().render();
        assert!(text.contains("dbt_span_seconds_count{span=\"obs.test.enter\"} 1"), "{text}");
    }
}
