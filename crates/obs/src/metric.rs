//! The three metric primitives: monotonic counters, signed gauges, and
//! fixed-bucket latency histograms.
//!
//! All three are lock-free bags of atomics, cheap enough to update from
//! the daemon's connection handlers and the lab's execution hot path.
//! They carry *observability* state only — nothing in the deterministic
//! simulation reads them back, so instrumenting a phase can never perturb
//! cycle counts or report bytes.
//!
//! Histograms use **fixed bucket bounds in microseconds**, shared across
//! the workspace via [`DEFAULT_LATENCY_BOUNDS_MICROS`]. Fixed bounds make
//! two things deterministic: which bucket a boundary value lands in
//! (bounds are *inclusive* upper edges, Prometheus `le` semantics), and
//! the quantile estimate ([`Histogram::quantile_micros`] answers the
//! bucket's upper bound, never an interpolation — stable however the
//! observations were interleaved).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// The workspace-default latency bucket bounds, in microseconds.
///
/// Spans 50µs — comfortably under a cheap inline op like `health` — to
/// 10s, the slow tail of a cold multi-scenario sweep. The lowest bound
/// being nonzero means every observed duration reports a nonzero
/// quantile, which the load generator relies on.
pub const DEFAULT_LATENCY_BOUNDS_MICROS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A monotonically increasing `u64` counter.
///
/// `set` exists for *mirroring*: the daemon copies cache-layer stats
/// (which keep their own counters) into the registry at scrape time so
/// the `metrics` exposition and the `stats` JSON agree exactly. Mirrored
/// values come from monotonic sources, so the counter stays monotonic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for scrape-time mirroring of an external
    /// monotonic counter, not for general use.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge — a value that can go up and down (queue depth,
/// in-flight requests, resident entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket duration histogram with inclusive upper bounds in
/// microseconds (Prometheus `le` semantics) plus an implicit `+Inf`
/// overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing, in microseconds.
    bounds: Vec<u64>,
    /// One slot per bound plus the trailing `+Inf` bucket.
    ///
    /// Buckets are *non*-cumulative in memory; rendering and quantile
    /// queries accumulate on the fly.
    buckets: Vec<AtomicU64>,
    /// Sum of every observation, in microseconds.
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (microseconds).
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let slot = self.bounds.partition_point(|&bound| bound < micros);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one observation of a wall-clock duration (saturating to
    /// `u64::MAX` microseconds, i.e. never for realistic spans).
    pub fn observe(&self, elapsed: Duration) {
        self.observe_micros(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// A deterministic quantile estimate: the *upper bound* of the first
    /// bucket whose cumulative count reaches `q` of the total (so e.g.
    /// `quantile_micros(0.5)` on observations that all landed in the
    /// `le=250` bucket answers exactly `250`). Observations past the last
    /// finite bound answer that last bound; an empty histogram answers 0.
    ///
    /// Returning a bucket edge instead of interpolating keeps the answer
    /// byte-stable across thread interleavings for a fixed multiset of
    /// observations.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (slot, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return self.bounds.get(slot).copied().unwrap_or(*self.bounds.last().unwrap());
            }
        }
        *self.bounds.last().unwrap()
    }
}

/// Formats a microsecond quantity as decimal seconds with exactly six
/// fractional digits — the fixed-width form the Prometheus exposition
/// uses for bucket bounds and sums, chosen so rendering is byte-stable
/// (no float formatting is involved anywhere).
pub fn micros_as_seconds(micros: u64) -> String {
    format!("{}.{:06}", micros / 1_000_000, micros % 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn boundary_values_land_in_deterministic_buckets() {
        let h = Histogram::new(&[50, 100, 250]);
        // `le` is inclusive: exactly-50 belongs to the first bucket.
        h.observe_micros(50);
        // 51 crosses into the second.
        h.observe_micros(51);
        h.observe_micros(100);
        // 250 is the last finite bucket; 251 overflows to +Inf.
        h.observe_micros(250);
        h.observe_micros(251);
        h.observe_micros(0);
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_micros(), 50 + 51 + 100 + 250 + 251);
    }

    #[test]
    fn quantiles_answer_bucket_upper_bounds() {
        let h = Histogram::new(&[50, 100, 250]);
        assert_eq!(h.quantile_micros(0.5), 0, "empty histogram");
        for _ in 0..9 {
            h.observe_micros(60); // le=100 bucket
        }
        h.observe_micros(500); // +Inf bucket
        assert_eq!(h.quantile_micros(0.5), 100);
        assert_eq!(h.quantile_micros(0.9), 100);
        // The +Inf overflow observation answers the last finite bound.
        assert_eq!(h.quantile_micros(0.99), 250);
        assert_eq!(h.quantile_micros(1.0), 250);
    }

    #[test]
    fn quantile_of_all_overflow_is_last_finite_bound() {
        let h = Histogram::new(&[50, 100]);
        h.observe_micros(10_000);
        assert_eq!(h.quantile_micros(0.5), 100);
    }

    #[test]
    fn single_sample_answers_its_own_bucket_at_every_quantile() {
        let h = Histogram::new(&[50, 100, 250]);
        h.observe_micros(75); // le=100 bucket
                              // With exactly one observation, every quantile's rank clamps to 1,
                              // so p0 through p100 all answer the sample's bucket bound.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_micros(q), 100, "q={q}");
        }
    }

    #[test]
    fn quantile_zero_is_the_first_occupied_bucket() {
        let h = Histogram::new(&[50, 100, 250]);
        h.observe_micros(10); // le=50 bucket
        h.observe_micros(200); // le=250 bucket
                               // q=0 ranks to 0 but clamps to rank 1: the minimum's bucket, not 0.
        assert_eq!(h.quantile_micros(0.0), 50);
        assert_eq!(h.quantile_micros(1.0), 250);
    }

    #[test]
    fn duration_observation_truncates_to_micros() {
        let h = Histogram::new(DEFAULT_LATENCY_BOUNDS_MICROS);
        h.observe(Duration::from_micros(75));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_micros(), 75);
        assert_eq!(h.quantile_micros(0.5), 100);
    }

    #[test]
    fn seconds_formatting_is_fixed_width() {
        assert_eq!(micros_as_seconds(0), "0.000000");
        assert_eq!(micros_as_seconds(50), "0.000050");
        assert_eq!(micros_as_seconds(1_000_000), "1.000000");
        assert_eq!(micros_as_seconds(2_500_000), "2.500000");
        assert_eq!(micros_as_seconds(10_000_007), "10.000007");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_bounds_are_rejected() {
        let _ = Histogram::new(&[100, 50]);
    }

    #[test]
    fn default_bounds_are_strictly_increasing_and_start_nonzero() {
        assert!(DEFAULT_LATENCY_BOUNDS_MICROS[0] > 0);
        assert!(DEFAULT_LATENCY_BOUNDS_MICROS.windows(2).all(|w| w[0] < w[1]));
    }
}
