//! The metrics registry: named, labelled families of counters, gauges
//! and histograms, rendered as Prometheus text-format exposition.
//!
//! A [`MetricsRegistry`] is a map from family name to a kind-tagged set
//! of labelled samples. Registration is get-or-insert: asking twice for
//! the same `(name, labels)` answers the *same* `Arc` handle, so call
//! sites can resolve their handles once (cold) and update lock-free
//! (hot) — the registry mutex is only ever taken at registration and
//! scrape time, never on a metric update.
//!
//! Rendering is **byte-stable**: families and samples live in `BTreeMap`s
//! (sorted by name and by canonical label string), label pairs are
//! sorted at registration, histogram bounds print as fixed six-decimal
//! seconds, and no floating-point formatting is involved anywhere. A
//! fixed sequence of registrations and updates therefore renders to
//! identical bytes on every run — which is what makes the exposition
//! testable with plain string equality.
//!
//! Naming convention (enforced by review, not code): families are
//! `dbt_<layer>_<name>`, e.g. `dbt_serve_requests_total`,
//! `dbt_runmemo_hits_total`, `dbt_translate_phase_seconds`.

use crate::metric::{micros_as_seconds, Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// What kind of samples a family holds; a name registers as exactly one
/// kind for the life of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One labelled sample of a family.
#[derive(Debug, Clone)]
enum Sample {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named family: help text, kind, and its samples keyed by canonical
/// label string (`""` for the unlabelled sample).
#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    samples: BTreeMap<String, Sample>,
}

/// The registry. Construct with [`MetricsRegistry::new`] (an `Arc`, like
/// every shared service in this workspace) or use the process-wide
/// [`MetricsRegistry::global`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// The process-wide registry — the home of [`crate::Span::enter`]
    /// spans and of sampled flushes from feature-gated hot-path
    /// instrumentation (the cache model). Daemon-scoped metrics prefer a
    /// per-instance registry so concurrent daemons (e.g. tests in one
    /// process) do not pollute each other.
    pub fn global() -> &'static Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get-or-register the unlabelled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-register the counter `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different kind, or a name or
    /// label is not a valid Prometheus identifier.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self
            .sample(name, help, Kind::Counter, labels, || Sample::Counter(Arc::new(Counter::new())))
        {
            Sample::Counter(c) => c,
            _ => unreachable!("kind was checked under the registry lock"),
        }
    }

    /// Get-or-register the unlabelled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-register the gauge `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// As [`MetricsRegistry::counter_with`].
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.sample(name, help, Kind::Gauge, labels, || Sample::Gauge(Arc::new(Gauge::new())))
        {
            Sample::Gauge(g) => g,
            _ => unreachable!("kind was checked under the registry lock"),
        }
    }

    /// Get-or-register the unlabelled histogram `name` over `bounds`
    /// (inclusive microsecond upper edges).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-register the histogram `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// As [`MetricsRegistry::counter_with`]; additionally if the sample
    /// already exists with different bucket bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.sample(name, help, Kind::Histogram, labels, || {
            Sample::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Sample::Histogram(h) => {
                assert_eq!(
                    h.bounds(),
                    bounds,
                    "histogram {name} re-registered with different bucket bounds"
                );
                h
            }
            _ => unreachable!("kind was checked under the registry lock"),
        }
    }

    /// The shared get-or-insert path; `make` runs only for a brand-new
    /// sample, under the registry lock.
    fn sample(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Sample,
    ) -> Sample {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (label, _) in labels {
            assert!(valid_name(label), "invalid label name {label:?} on metric {name:?}");
        }
        let key = canonical_labels(labels);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            samples: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric {name} already registered as a {}",
            family.kind.as_str()
        );
        family.samples.entry(key).or_insert_with(make).clone()
    }

    /// Renders every family as Prometheus text-format exposition
    /// (`# HELP`/`# TYPE` headers, then one line per sample; histograms
    /// expand to cumulative `_bucket{le=...}` lines plus `_sum` and
    /// `_count`). Output order and formatting are byte-stable for a
    /// fixed registry state.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, sample) in family.samples.iter() {
                match sample {
                    Sample::Counter(c) => {
                        push_sample_line(&mut out, name, "", labels, &c.get().to_string());
                    }
                    Sample::Gauge(g) => {
                        push_sample_line(&mut out, name, "", labels, &g.get().to_string());
                    }
                    Sample::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// Renders one histogram sample: cumulative buckets, `+Inf`, sum (as
/// seconds) and count.
fn render_histogram(out: &mut String, name: &str, labels: &str, histogram: &Histogram) {
    let counts = histogram.bucket_counts();
    let mut cumulative = 0u64;
    for (slot, bound) in histogram.bounds().iter().enumerate() {
        cumulative += counts[slot];
        let le = format!("le=\"{}\"", micros_as_seconds(*bound));
        push_sample_line(out, name, "_bucket", &join_labels(labels, &le), &cumulative.to_string());
    }
    cumulative += counts[counts.len() - 1];
    push_sample_line(
        out,
        name,
        "_bucket",
        &join_labels(labels, "le=\"+Inf\""),
        &cumulative.to_string(),
    );
    push_sample_line(out, name, "_sum", labels, &micros_as_seconds(histogram.sum_micros()));
    push_sample_line(out, name, "_count", labels, &cumulative.to_string());
}

/// Appends `name<suffix>{labels} value\n`, omitting the braces for an
/// unlabelled sample.
fn push_sample_line(out: &mut String, name: &str, suffix: &str, labels: &str, value: &str) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Joins a (possibly empty) canonical label string with one more pair.
fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

/// The canonical label string: pairs sorted by label name, values
/// escaped, rendered `k1="v1",k2="v2"`. Doubles as the sample key, so
/// label order at the call site never matters.
fn canonical_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// `true` for a valid Prometheus metric/label identifier.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escapes a label value per the exposition format.
fn escape_label_value(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes help text per the exposition format.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::DEFAULT_LATENCY_BOUNDS_MICROS;

    #[test]
    fn registration_is_get_or_insert() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("dbt_test_total", "t", &[("op", "run")]);
        let b = registry.counter_with("dbt_test_total", "t", &[("op", "run")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles point at the same counter");
        let other = registry.counter_with("dbt_test_total", "t", &[("op", "sweep")]);
        assert_eq!(other.get(), 0, "different labels, different sample");
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("dbt_test_total", "t", &[("a", "1"), ("b", "2")]);
        let b = registry.counter_with("dbt_test_total", "t", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("dbt_test_total", "t");
        let _ = registry.gauge("dbt_test_total", "t");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = MetricsRegistry::new().counter("dbt test", "t");
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_bound_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.histogram("dbt_test_seconds", "t", &[50, 100]);
        let _ = registry.histogram("dbt_test_seconds", "t", &[50, 100, 250]);
    }

    /// The acceptance-critical property: a fixed synthetic registry
    /// renders to exactly these bytes, every run.
    #[test]
    fn render_is_byte_stable_for_a_fixed_registry() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("dbt_test_hits_total", "Test hits.");
        hits.add(5);
        let depth = registry.gauge("dbt_test_depth", "Test depth.");
        depth.set(-2);
        let by_op = registry.counter_with("dbt_test_ops_total", "Per-op.", &[("op", "run")]);
        by_op.add(3);
        let sweep_op = registry.counter_with("dbt_test_ops_total", "Per-op.", &[("op", "sweep")]);
        sweep_op.add(1);
        let latency = registry.histogram("dbt_test_seconds", "Test latency.", &[50, 100, 250]);
        latency.observe_micros(50);
        latency.observe_micros(75);
        latency.observe_micros(9_000);
        let expected = "\
# HELP dbt_test_depth Test depth.
# TYPE dbt_test_depth gauge
dbt_test_depth -2
# HELP dbt_test_hits_total Test hits.
# TYPE dbt_test_hits_total counter
dbt_test_hits_total 5
# HELP dbt_test_ops_total Per-op.
# TYPE dbt_test_ops_total counter
dbt_test_ops_total{op=\"run\"} 3
dbt_test_ops_total{op=\"sweep\"} 1
# HELP dbt_test_seconds Test latency.
# TYPE dbt_test_seconds histogram
dbt_test_seconds_bucket{le=\"0.000050\"} 1
dbt_test_seconds_bucket{le=\"0.000100\"} 2
dbt_test_seconds_bucket{le=\"0.000250\"} 2
dbt_test_seconds_bucket{le=\"+Inf\"} 3
dbt_test_seconds_sum 0.009125
dbt_test_seconds_count 3
";
        assert_eq!(registry.render(), expected);
        assert_eq!(registry.render(), expected, "rendering twice is idempotent");
    }

    #[test]
    fn labelled_histograms_merge_le_into_the_label_set() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with(
            "dbt_test_seconds",
            "t",
            DEFAULT_LATENCY_BOUNDS_MICROS,
            &[("op", "run")],
        );
        h.observe_micros(60);
        let text = registry.render();
        assert!(text.contains("dbt_test_seconds_bucket{op=\"run\",le=\"0.000100\"} 1"), "{text}");
        assert!(text.contains("dbt_test_seconds_bucket{op=\"run\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("dbt_test_seconds_sum{op=\"run\"} 0.000060"), "{text}");
        assert!(text.contains("dbt_test_seconds_count{op=\"run\"} 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        let c = registry.counter_with("dbt_test_total", "t", &[("path", "a\"b\\c\nd")]);
        c.inc();
        assert!(
            registry.render().contains("dbt_test_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{}",
            registry.render()
        );
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        assert!(Arc::ptr_eq(a, b));
    }
}
