//! The deterministic hot-path profiler: cycle attribution, speculation
//! event counting, and a bounded flight recorder with Chrome-trace export.
//!
//! Unlike the rest of this crate, nothing here touches the wall clock or
//! an atomic: a [`Profiler`] lives *inside* the simulated core and counts
//! in the **cycle domain** only, so two runs of the same program produce
//! byte-identical profiles — they are committable artifacts, not
//! observations. The two PR-6 invariants carry over:
//!
//! 1. **Observability never perturbs determinism.** The profiler is
//!    written by the core's timing model and read only after the run;
//!    the simulation never consumes it, and recording an event costs a
//!    handful of integer stores.
//! 2. **Profile counters agree with existing stats exactly.** Every
//!    speculation event is counted at the same site as its `CoreStats` /
//!    `CacheStats` twin (mispredicts ↔ `side_exits_taken`, MCB hits ↔
//!    `rollbacks`, squashed instructions ↔ `recovery_ops`, cache
//!    hits/misses ↔ the data-cache counters), so the profile can be
//!    cross-checked against the stats the attack harness already reports.
//!
//! The flight recorder is a bounded ring of the most recent
//! [`TraceEvent`]s (block executions, rollbacks, mispredicts). It never
//! grows past its capacity — old events are dropped and *counted* — and
//! exports to the Chrome `trace_event` JSON format
//! ([`Profiler::chrome_trace_json`]) where one simulated cycle maps to
//! one microsecond of trace time, so `chrome://tracing` / Perfetto render
//! the cycle timeline directly.

use std::collections::VecDeque;

/// Default capacity of the flight-recorder ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The pipeline phases simulated cycles are attributed to.
///
/// Every cycle the core charges is attributed to exactly one phase, so
/// the five accumulators in [`PhaseCycles`] sum to the core's total
/// cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Advancing to the next bundle (one cycle per non-first bundle).
    Fetch,
    /// Scoreboard interlock stalls: waiting on an ALU-produced operand.
    Issue,
    /// Memory stalls: waiting on a load result or outstanding accesses.
    Execute,
    /// Retiring the terminator of a block (one cycle per exit).
    Commit,
    /// Rollback penalty plus sequential recovery re-execution.
    Rollback,
}

impl Phase {
    /// The stable lowercase name used in reports and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fetch => "fetch",
            Phase::Issue => "issue",
            Phase::Execute => "execute",
            Phase::Commit => "commit",
            Phase::Rollback => "rollback",
        }
    }
}

/// Simulated cycles attributed per pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Cycles spent advancing bundles.
    pub fetch: u64,
    /// Cycles stalled on scoreboard (ALU operand) interlocks.
    pub issue: u64,
    /// Cycles stalled on memory (load latency, `rdcycle` serialisation).
    pub execute: u64,
    /// Cycles retiring block terminators.
    pub commit: u64,
    /// Cycles lost to MCB rollbacks (penalty + recovery re-execution).
    pub rollback: u64,
}

impl PhaseCycles {
    /// Sum of all five phases — equals the core's total cycles.
    pub fn total(&self) -> u64 {
        self.fetch + self.issue + self.execute + self.commit + self.rollback
    }

    /// `(name, cycles)` pairs in the fixed report order.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("fetch", self.fetch),
            ("issue", self.issue),
            ("execute", self.execute),
            ("commit", self.commit),
            ("rollback", self.rollback),
        ]
    }
}

/// Speculation and memory-system event counts.
///
/// Each counter is incremented at the same program point as an existing
/// deterministic statistic, so the two always agree exactly:
/// `mispredicts` ↔ `CoreStats::side_exits_taken`, `mcb_hits` ↔
/// `CoreStats::rollbacks`, `squashed_insts` ↔ `CoreStats::recovery_ops`,
/// `speculative_loads` ↔ `CoreStats::speculative_loads`, and the cache
/// counters ↔ `CacheStats` hit/miss totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecEvents {
    /// Side exits taken — speculation down the fall-through path was wrong.
    pub mispredicts: u64,
    /// Operations re-executed sequentially after a rollback (the work the
    /// misspeculated schedule threw away).
    pub squashed_insts: u64,
    /// Memory Conflict Buffer hits — each one forced a rollback.
    pub mcb_hits: u64,
    /// `fence` operations retired (speculation barriers).
    pub fence_stalls: u64,
    /// Loads hoisted above a potentially conflicting store.
    pub speculative_loads: u64,
    /// L1 data-cache hits (loads and stores).
    pub l1d_hits: u64,
    /// L1 data-cache misses (loads and stores).
    pub l1d_misses: u64,
}

impl SpecEvents {
    /// `(name, count)` pairs in the fixed report order.
    pub fn entries(&self) -> [(&'static str, u64); 7] {
        [
            ("mispredicts", self.mispredicts),
            ("squashed_insts", self.squashed_insts),
            ("mcb_hits", self.mcb_hits),
            ("fence_stalls", self.fence_stalls),
            ("speculative_loads", self.speculative_loads),
            ("l1d_hits", self.l1d_hits),
            ("l1d_misses", self.l1d_misses),
        ]
    }
}

/// One flight-recorder entry: a named interval on the cycle timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind (`"block"`, `"rollback"`, `"mispredict"`).
    pub kind: &'static str,
    /// Guest PC the event is anchored to.
    pub pc: u64,
    /// Cycle the interval started at.
    pub start_cycle: u64,
    /// Interval length in cycles (at least 1, so every event renders).
    pub cycles: u64,
}

/// The deterministic profiler: phase accumulators, event counters, and
/// the bounded flight recorder.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Cycle attribution per pipeline phase.
    pub phases: PhaseCycles,
    /// Speculation / memory-system event counts.
    pub events: SpecEvents,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// A profiler with the default flight-recorder capacity.
    pub fn new() -> Profiler {
        Profiler::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A profiler whose flight recorder keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Profiler {
        Profiler {
            phases: PhaseCycles::default(),
            events: SpecEvents::default(),
            ring: VecDeque::with_capacity(capacity.min(DEFAULT_TRACE_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }

    /// Attributes `cycles` simulated cycles to `phase`.
    pub fn attribute(&mut self, phase: Phase, cycles: u64) {
        match phase {
            Phase::Fetch => self.phases.fetch += cycles,
            Phase::Issue => self.phases.issue += cycles,
            Phase::Execute => self.phases.execute += cycles,
            Phase::Commit => self.phases.commit += cycles,
            Phase::Rollback => self.phases.rollback += cycles,
        }
    }

    /// Appends an event to the flight recorder, evicting (and counting)
    /// the oldest event once the ring is full.
    pub fn record(&mut self, kind: &'static str, pc: u64, start_cycle: u64, cycles: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent { kind, pc, start_cycle, cycles: cycles.max(1) });
    }

    /// The retained flight-recorder events, oldest first.
    pub fn trace_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn trace_len(&self) -> usize {
        self.ring.len()
    }

    /// Events evicted because the ring was full — nonzero means the trace
    /// shows only the *tail* of the run.
    pub fn trace_dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the flight recorder in Chrome `trace_event` JSON
    /// (`chrome://tracing` / Perfetto). One simulated cycle maps to one
    /// microsecond of trace time; events are complete (`"ph":"X"`) spans
    /// on pid 1, tid 1. Output is byte-stable for a fixed event sequence.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}@{:#x}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{\"pc\":{}}}}}",
                event.kind, event.pc, event.kind, event.start_cycle, event.cycles, event.pc
            ));
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"simulated-cycles\",\
             \"dropped_events\":{}}}}}",
            self.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_sum_and_report_in_fixed_order() {
        let mut p = Profiler::new();
        p.attribute(Phase::Fetch, 10);
        p.attribute(Phase::Issue, 2);
        p.attribute(Phase::Execute, 30);
        p.attribute(Phase::Commit, 4);
        p.attribute(Phase::Rollback, 24);
        assert_eq!(p.phases.total(), 70);
        let names: Vec<&str> = p.phases.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["fetch", "issue", "execute", "commit", "rollback"]);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut p = Profiler::with_capacity(2);
        p.record("block", 0x1000, 0, 5);
        p.record("block", 0x2000, 5, 5);
        p.record("block", 0x3000, 10, 5);
        assert_eq!(p.trace_len(), 2);
        assert_eq!(p.trace_dropped(), 1);
        let pcs: Vec<u64> = p.trace_events().map(|e| e.pc).collect();
        assert_eq!(pcs, [0x2000, 0x3000], "oldest event evicted first");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut p = Profiler::with_capacity(0);
        p.record("block", 0x1000, 0, 1);
        assert_eq!(p.trace_len(), 0);
        assert_eq!(p.trace_dropped(), 1);
    }

    #[test]
    fn zero_length_events_render_as_one_cycle() {
        let mut p = Profiler::new();
        p.record("mispredict", 0x40, 7, 0);
        assert_eq!(p.trace_events().next().unwrap().cycles, 1);
    }

    #[test]
    fn chrome_trace_is_byte_stable_and_well_formed() {
        let mut p = Profiler::with_capacity(4);
        p.record("block", 0x1000, 0, 12);
        p.record("rollback", 0x1000, 12, 24);
        let first = p.chrome_trace_json();
        assert_eq!(first, p.chrome_trace_json(), "export must not mutate state");
        assert!(first.starts_with("{\"traceEvents\":["));
        assert!(first.contains("\"name\":\"block@0x1000\""));
        assert!(first.contains("\"ph\":\"X\""));
        assert!(first.contains("\"ts\":12,\"dur\":24"));
        assert!(first.contains("\"dropped_events\":0"));
        assert!(first.ends_with("}"));
    }

    #[test]
    fn clone_is_independent() {
        let mut p = Profiler::new();
        p.attribute(Phase::Execute, 9);
        let mut q = p.clone();
        q.attribute(Phase::Execute, 1);
        assert_eq!(p.phases.execute, 9);
        assert_eq!(q.phases.execute, 10);
    }
}
