//! `dbt-obs` — the lab's observability layer: metrics and phase timing.
//!
//! Everything above the simulated platform wants the same three things:
//! counters (requests, cache hits, rejections), gauges (queue depth,
//! in-flight work, resident entries) and latency histograms (per-op
//! request time, per-phase pipeline time). This crate provides exactly
//! those, std-only like the rest of the workspace, plus:
//!
//! * a [`MetricsRegistry`] whose [`MetricsRegistry::render`] emits
//!   **byte-stable Prometheus text-format exposition** — the body of the
//!   daemon's protocol-v2 `metrics` op (see `docs/PROTOCOL.md`);
//! * a [`Span`] RAII guard for wall-clock phase timing
//!   (`Span::enter("translate.codegen")`), recording into a histogram on
//!   drop;
//! * fixed workspace-wide latency buckets
//!   ([`DEFAULT_LATENCY_BOUNDS_MICROS`]) and deterministic bucket-edge
//!   quantiles ([`Histogram::quantile_micros`]) for the load generator's
//!   p50/p95/p99 reporting;
//! * a [`Profiler`] that lives *inside* the simulated core and counts in
//!   the **cycle domain** only — per-phase cycle attribution, speculation
//!   event counters, and a bounded flight recorder exporting Chrome
//!   `trace_event` JSON (`lab profile … --trace`);
//! * a [`SpanRecorder`] of causal per-request spans (trace id, span id,
//!   parent, stage, start/duration micros from an injectable
//!   [`TraceClock`]) with ambient cross-thread propagation
//!   ([`TraceHandle`] / [`StageSpan`]) — the daemon and router stitch
//!   these into the `trace` op's `dbt-serve/trace/v1` tree;
//! * an [`EventLog`] — a leveled, bounded ring of structured
//!   `{seq, level, target, message, fields}` records correlated by trace
//!   id, served by the `logs` op as `dbt-serve/logs/v1`.
//!
//! Two invariants shape the design:
//!
//! 1. **Observability never perturbs determinism.** Metrics are written
//!    by wall-clock instrumentation and read only at scrape time;
//!    nothing in the simulation consumes them, and nothing timed ever
//!    lands in a `BENCH_*.json` artifact.
//! 2. **Hot paths stay hot.** Handles are resolved once at registration
//!    (the only place a lock is taken) and updated with relaxed
//!    atomics; per-access cache-model counters additionally sit behind a
//!    cargo feature and a sampling interval in `dbt-cache`.
//!
//! Metric families follow the `dbt_<layer>_<name>` naming convention
//! (`dbt_serve_requests_total`, `dbt_runmemo_hits_total`, …).

mod eventlog;
mod metric;
mod profiler;
mod registry;
mod span;
mod spanrec;

pub use eventlog::{EventLog, LogLevel, LogRecord, DEFAULT_EVENT_CAPACITY, EVENT_LOG_SCHEMA};
pub use metric::{micros_as_seconds, Counter, Gauge, Histogram, DEFAULT_LATENCY_BOUNDS_MICROS};
pub use profiler::{Phase, PhaseCycles, Profiler, SpecEvents, TraceEvent, DEFAULT_TRACE_CAPACITY};
pub use registry::MetricsRegistry;
pub use span::{Span, SPAN_FAMILY};
pub use spanrec::{
    SpanRecord, SpanRecorder, StageSpan, TraceClock, TraceHandle, TraceScope,
    DEFAULT_SPAN_CAPACITY, TRACE_TREE_SCHEMA,
};
