//! Causal request spans: who spent the wall-clock time, stage by stage.
//!
//! [`Span`](crate::Span) (PR 6) answers "how long does this phase take in
//! aggregate" via histograms; this module answers "where did *this*
//! request's time go" with a per-request tree of spans — router relay,
//! backend queue wait, translate, simulate, encode — stitched across
//! processes by trace id.
//!
//! * [`SpanRecord`] — one completed span: trace id, span id, optional
//!   parent span id, stage label, start/duration micros.
//! * [`TraceClock`] — the injectable time source. Production uses
//!   [`TraceClock::wall`]; determinism tests use [`TraceClock::scripted`],
//!   a counter that advances a fixed step per reading, which makes whole
//!   span trees byte-stable.
//! * [`SpanRecorder`] — a bounded ring of finished spans with an explicit
//!   dropped count (the `Profiler` flight-recorder discipline), plus the
//!   `dbt-serve/trace/v1` tree renderer the `trace` protocol op serves.
//! * [`TraceHandle`] / [`TraceScope`] / [`StageSpan`] — ambient context
//!   propagation. A server opens a handle per traced request, *enters* it
//!   on whichever thread runs the work (worker pools included — handles
//!   are `Send + Clone`), and deep layers call
//!   `StageSpan::enter("simulate")` without ever seeing the recorder.
//!   With no scope active, `StageSpan::enter` is inert, so local CLI runs
//!   record nothing.
//!
//! Same invariant as every other corner of `dbt-obs`: wall-clock readings
//! appear only in observability output (the `trace` op, Chrome exports),
//! never in report bodies or `BENCH_*.json` artifacts.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound of a [`SpanRecorder`] ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Schema tag of the span-tree body served by the `trace` protocol op.
pub const TRACE_TREE_SCHEMA: &str = "dbt-serve/trace/v1";

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request's trace id — the stitching key across processes.
    pub trace_id: String,
    /// Span id, unique within the trace on one process (`d:simulate`,
    /// `r:relay`, `d:translate.codegen.1`, …).
    pub span_id: String,
    /// Parent span id; `None` marks a root (the router reparents backend
    /// roots under its relay span when stitching).
    pub parent: Option<String>,
    /// Stage label (`relay`, `queue-wait`, `simulate`, …).
    pub stage: String,
    /// Start, in micros of the recorder's clock.
    pub start_micros: u64,
    /// Duration in micros.
    pub duration_micros: u64,
}

#[derive(Debug)]
enum ClockKind {
    Wall(Instant),
    Scripted { ticks: AtomicU64, step: u64 },
}

/// The time source behind a [`SpanRecorder`].
#[derive(Debug)]
pub struct TraceClock {
    kind: ClockKind,
}

impl TraceClock {
    /// Real wall-clock micros since clock creation (production).
    pub fn wall() -> TraceClock {
        TraceClock { kind: ClockKind::Wall(Instant::now()) }
    }

    /// A scripted clock: every reading advances by `step_micros`, so span
    /// trees built under it are byte-stable run over run.
    pub fn scripted(step_micros: u64) -> TraceClock {
        TraceClock { kind: ClockKind::Scripted { ticks: AtomicU64::new(0), step: step_micros } }
    }

    /// Current reading in micros.
    pub fn now_micros(&self) -> u64 {
        match &self.kind {
            ClockKind::Wall(epoch) => epoch.elapsed().as_micros() as u64,
            ClockKind::Scripted { ticks, step } => {
                ticks.fetch_add(1, Ordering::Relaxed).saturating_mul(*step)
            }
        }
    }
}

#[derive(Debug)]
struct SpanRing {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded ring of finished [`SpanRecord`]s sharing one [`TraceClock`].
///
/// Oldest spans are evicted first and counted in
/// [`SpanRecorder::dropped`], which every rendered tree surfaces — a
/// truncated trace is visible, never silent.
#[derive(Debug)]
pub struct SpanRecorder {
    capacity: usize,
    clock: TraceClock,
    inner: Mutex<SpanRing>,
}

impl SpanRecorder {
    /// A recorder bounded at [`DEFAULT_SPAN_CAPACITY`].
    pub fn new(clock: TraceClock) -> SpanRecorder {
        SpanRecorder::with_capacity(DEFAULT_SPAN_CAPACITY, clock)
    }

    /// A recorder bounded at `capacity` spans (0 drops everything).
    pub fn with_capacity(capacity: usize, clock: TraceClock) -> SpanRecorder {
        SpanRecorder {
            capacity,
            clock,
            inner: Mutex::new(SpanRing { ring: VecDeque::new(), dropped: 0 }),
        }
    }

    /// Current clock reading in micros.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// The ring bound this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one finished span, evicting the oldest at capacity.
    pub fn record(&self, record: SpanRecord) {
        let mut inner = self.inner.lock().expect("span ring lock poisoned");
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(record);
    }

    /// Spans evicted (or refused at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span ring lock poisoned").dropped
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span ring lock poisoned").ring.len()
    }

    /// True when the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained spans of `trace_id`, in recording order.
    pub fn spans_for(&self, trace_id: &str) -> Vec<SpanRecord> {
        let inner = self.inner.lock().expect("span ring lock poisoned");
        inner.ring.iter().filter(|span| span.trace_id == trace_id).cloned().collect()
    }

    /// The `dbt-serve/trace/v1` tree of `trace_id` as a single JSON line.
    pub fn tree_json(&self, trace_id: &str) -> String {
        SpanRecorder::render_tree(trace_id, &self.spans_for(trace_id), self.dropped())
    }

    /// Renders `spans` as a `dbt-serve/trace/v1` body. Public so the
    /// router can emit the *same* format for a stitched router+backend
    /// span set.
    pub fn render_tree(trace_id: &str, spans: &[SpanRecord], dropped: u64) -> String {
        let mut body = format!(
            "{{\"schema\": \"{TRACE_TREE_SCHEMA}\", \"trace_id\": \"{}\", \"dropped\": {dropped}, \"spans\": [",
            json_escape(trace_id)
        );
        for (index, span) in spans.iter().enumerate() {
            if index > 0 {
                body.push_str(", ");
            }
            let parent = match &span.parent {
                Some(parent) => format!("\"{}\"", json_escape(parent)),
                None => "null".to_string(),
            };
            body.push_str(&format!(
                "{{\"span_id\": \"{}\", \"parent\": {parent}, \"stage\": \"{}\", \
                 \"start_micros\": {}, \"duration_micros\": {}}}",
                json_escape(&span.span_id),
                json_escape(&span.stage),
                span.start_micros,
                span.duration_micros,
            ));
        }
        body.push_str("]}");
        body
    }
}

/// Minimal JSON string escaping for observability bodies (the crate is
/// dependency-free by design, so it carries its own).
pub(crate) fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct ActiveScope {
    handle: TraceHandle,
    stack: Vec<String>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveScope>> = const { RefCell::new(None) };
}

/// The shared identity of one traced request: recorder, trace id, span-id
/// prefix and the span new stages attach under by default.
///
/// Cheap to clone and `Send`, so the thread that accepts a request can
/// hand the context to the pool threads that execute it (the daemon's
/// worker pool, the sweep executor's scoped threads).
#[derive(Debug, Clone)]
pub struct TraceHandle {
    recorder: Arc<SpanRecorder>,
    trace_id: Arc<str>,
    prefix: Arc<str>,
    parent: Arc<str>,
    // Occurrence counts per stage label, shared across every thread that
    // enters this handle so span ids stay unique within the trace.
    counts: Arc<Mutex<HashMap<String, u64>>>,
}

impl TraceHandle {
    /// A handle recording into `recorder` under `trace_id`; stage spans
    /// get ids `"{prefix}:{stage}"` and attach under `parent` when no
    /// enclosing [`StageSpan`] is active.
    pub fn new(
        recorder: Arc<SpanRecorder>,
        trace_id: &str,
        prefix: &str,
        parent: &str,
    ) -> TraceHandle {
        TraceHandle {
            recorder,
            trace_id: trace_id.into(),
            prefix: prefix.into(),
            parent: parent.into(),
            counts: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The trace id this handle records under.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Activates this handle on the current thread until the returned
    /// guard drops; [`StageSpan::enter`] records through it meanwhile.
    pub fn enter(&self) -> TraceScope {
        let previous = ACTIVE.with(|active| {
            active.borrow_mut().replace(ActiveScope { handle: self.clone(), stack: Vec::new() })
        });
        TraceScope { previous }
    }

    /// The handle active on the current thread, if any — capture it
    /// before spawning worker threads, then [`TraceHandle::enter`] inside
    /// each so deep-layer stage spans keep flowing into the same trace.
    pub fn current() -> Option<TraceHandle> {
        ACTIVE.with(|active| active.borrow().as_ref().map(|scope| scope.handle.clone()))
    }

    /// `"{prefix}:{stage}"` for the first occurrence of a stage in the
    /// trace, `"{prefix}:{stage}.{n}"` for repeats.
    fn next_span_id(&self, stage: &str) -> String {
        let mut counts = self.counts.lock().expect("span counts lock poisoned");
        let slot = counts.entry(stage.to_string()).or_insert(0);
        let occurrence = *slot;
        *slot += 1;
        if occurrence == 0 {
            format!("{}:{stage}", self.prefix)
        } else {
            format!("{}:{stage}.{occurrence}", self.prefix)
        }
    }
}

/// RAII guard of an active [`TraceHandle`]; restores the thread's
/// previous scope (usually none) on drop.
#[derive(Debug)]
pub struct TraceScope {
    previous: Option<ActiveScope>,
}

impl std::fmt::Debug for ActiveScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveScope").field("trace_id", &self.handle.trace_id()).finish()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        ACTIVE.with(|active| {
            *active.borrow_mut() = self.previous.take();
        });
    }
}

/// A stage span under the thread's active trace scope; records one
/// [`SpanRecord`] on drop. Inert (and free) when no scope is active.
#[derive(Debug)]
pub struct StageSpan {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    handle: TraceHandle,
    span_id: String,
    parent: String,
    stage: String,
    start_micros: u64,
}

impl StageSpan {
    /// Opens a span for `stage`, parented under the innermost open
    /// [`StageSpan`] on this thread (or the handle's request root).
    pub fn enter(stage: &str) -> StageSpan {
        let state = ACTIVE.with(|active| {
            let mut active = active.borrow_mut();
            let scope = active.as_mut()?;
            let handle = scope.handle.clone();
            let span_id = handle.next_span_id(stage);
            let parent = scope.stack.last().cloned().unwrap_or_else(|| handle.parent.to_string());
            scope.stack.push(span_id.clone());
            let start_micros = handle.recorder.now_micros();
            Some(OpenSpan { handle, span_id, parent, stage: stage.to_string(), start_micros })
        });
        StageSpan { state }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(open) = self.state.take() else { return };
        let end = open.handle.recorder.now_micros();
        ACTIVE.with(|active| {
            if let Some(scope) = active.borrow_mut().as_mut() {
                if let Some(position) = scope.stack.iter().rposition(|id| *id == open.span_id) {
                    scope.stack.remove(position);
                }
            }
        });
        open.handle.recorder.record(SpanRecord {
            trace_id: open.handle.trace_id.to_string(),
            span_id: open.span_id,
            parent: Some(open.parent),
            stage: open.stage,
            start_micros: open.start_micros,
            duration_micros: end.saturating_sub(open.start_micros),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize) -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder::with_capacity(capacity, TraceClock::scripted(10)))
    }

    fn record(spans: &SpanRecorder, trace: &str, id: &str) {
        spans.record(SpanRecord {
            trace_id: trace.to_string(),
            span_id: id.to_string(),
            parent: None,
            stage: id.to_string(),
            start_micros: 0,
            duration_micros: 1,
        });
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let spans = recorder(2);
        for id in ["a", "b", "c"] {
            record(&spans, "t", id);
        }
        assert_eq!(spans.len(), 2);
        assert_eq!(spans.dropped(), 1);
        let kept: Vec<String> = spans.spans_for("t").into_iter().map(|s| s.span_id).collect();
        assert_eq!(kept, vec!["b", "c"], "oldest span must go first");
    }

    #[test]
    fn zero_capacity_recorder_drops_everything() {
        let spans = recorder(0);
        record(&spans, "t", "a");
        assert!(spans.is_empty());
        assert_eq!(spans.dropped(), 1);
    }

    #[test]
    fn scripted_clock_advances_a_fixed_step_per_reading() {
        let clock = TraceClock::scripted(10);
        assert_eq!(clock.now_micros(), 0);
        assert_eq!(clock.now_micros(), 10);
        assert_eq!(clock.now_micros(), 20);
    }

    #[test]
    fn stage_spans_nest_under_the_active_scope() {
        let spans = recorder(16);
        let handle = TraceHandle::new(Arc::clone(&spans), "t1", "d", "d:request");
        {
            let _scope = handle.enter();
            let outer = StageSpan::enter("translate");
            let _inner = StageSpan::enter("translate.analysis");
            drop(outer);
        }
        let tree = spans.spans_for("t1");
        let analysis = tree.iter().find(|s| s.stage == "translate.analysis").unwrap();
        assert_eq!(analysis.span_id, "d:translate.analysis");
        assert_eq!(analysis.parent.as_deref(), Some("d:translate"));
        let translate = tree.iter().find(|s| s.stage == "translate").unwrap();
        assert_eq!(translate.parent.as_deref(), Some("d:request"));
    }

    #[test]
    fn repeated_stages_get_occurrence_suffixes() {
        let spans = recorder(16);
        let handle = TraceHandle::new(Arc::clone(&spans), "t1", "d", "d:request");
        let _scope = handle.enter();
        drop(StageSpan::enter("simulate"));
        drop(StageSpan::enter("simulate"));
        let ids: Vec<String> = spans.spans_for("t1").into_iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec!["d:simulate", "d:simulate.1"]);
    }

    #[test]
    fn spans_are_inert_without_a_scope() {
        let spans = recorder(16);
        drop(StageSpan::enter("simulate"));
        assert!(spans.is_empty());
        assert_eq!(spans.dropped(), 0);
    }

    #[test]
    fn handles_cross_threads_and_keep_ids_unique() {
        let spans = recorder(64);
        let handle = TraceHandle::new(Arc::clone(&spans), "t1", "d", "d:request");
        let _scope = handle.enter();
        let captured = TraceHandle::current().expect("scope is active");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let worker = captured.clone();
                scope.spawn(move || {
                    let _scope = worker.enter();
                    drop(StageSpan::enter("simulate"));
                });
            }
        });
        let mut ids: Vec<String> = spans.spans_for("t1").into_iter().map(|s| s.span_id).collect();
        ids.sort();
        assert_eq!(ids, vec!["d:simulate", "d:simulate.1"]);
    }

    #[test]
    fn tree_json_is_byte_stable_under_a_scripted_clock() {
        let render = || {
            let spans = recorder(16);
            let handle = TraceHandle::new(Arc::clone(&spans), "t1", "d", "d:request");
            {
                let _scope = handle.enter();
                drop(StageSpan::enter("simulate"));
            }
            spans.tree_json("t1")
        };
        let first = render();
        assert_eq!(first, render(), "scripted trees must be byte-stable");
        assert_eq!(
            first,
            "{\"schema\": \"dbt-serve/trace/v1\", \"trace_id\": \"t1\", \"dropped\": 0, \
             \"spans\": [{\"span_id\": \"d:simulate\", \"parent\": \"d:request\", \
             \"stage\": \"simulate\", \"start_micros\": 0, \"duration_micros\": 10}]}"
        );
    }

    #[test]
    fn render_tree_escapes_ids_and_marks_roots_null() {
        let span = SpanRecord {
            trace_id: "t\"1".to_string(),
            span_id: "d:request".to_string(),
            parent: None,
            stage: "request".to_string(),
            start_micros: 5,
            duration_micros: 7,
        };
        let body = SpanRecorder::render_tree("t\"1", &[span], 3);
        assert!(body.contains("\"trace_id\": \"t\\\"1\""), "{body}");
        assert!(body.contains("\"parent\": null"), "{body}");
        assert!(body.contains("\"dropped\": 3"), "{body}");
    }
}
