//! A leveled, bounded, structured event log.
//!
//! Metrics aggregate and spans attribute; neither says *why* the router
//! failed a backend over or refused a token. [`EventLog`] is the missing
//! narrative channel: a bounded ring of structured records — sequence
//! number, level, target, message, key/value fields, optional trace id —
//! with an explicit dropped count, rendered as the single-line
//! `dbt-serve/logs/v1` body the `logs` protocol op serves.
//!
//! Same discipline as the span ring: bounded memory, oldest-first
//! eviction surfaced as a count, wall-clock kept out entirely (ordering
//! comes from `seq`), and nothing here ever reaches a report body or a
//! `BENCH_*.json` artifact.

use crate::spanrec::json_escape;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default bound of an [`EventLog`] ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Schema tag of the body served by the `logs` protocol op.
pub const EVENT_LOG_SCHEMA: &str = "dbt-serve/logs/v1";

/// Severity of a [`LogRecord`], ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Chatty diagnostics.
    Debug,
    /// Normal lifecycle (listening, stopping, authenticated).
    Info,
    /// Degraded but handled (failover, probe failure, auth denial).
    Warn,
    /// Lost work or broken invariants (circuit breaker opened).
    Error,
}

impl LogLevel {
    /// The wire spelling (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses the wire spelling back; `None` for anything else.
    pub fn parse(text: &str) -> Option<LogLevel> {
        match text {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Monotonic per-log sequence number (total order, no wall-clock).
    pub seq: u64,
    /// Severity.
    pub level: LogLevel,
    /// Dotted component that emitted the event (`router.failover`,
    /// `serve.lifecycle`, …).
    pub target: String,
    /// Human-readable summary.
    pub message: String,
    /// The request trace this event belongs to, when it has one.
    pub trace_id: Option<String>,
    /// Structured key/value context.
    pub fields: Vec<(String, String)>,
}

#[derive(Debug)]
struct LogRing {
    ring: VecDeque<LogRecord>,
    dropped: u64,
    next_seq: u64,
}

/// A bounded ring of [`LogRecord`]s with oldest-first eviction.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<LogRing>,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

impl EventLog {
    /// A log bounded at [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> EventLog {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A log bounded at `capacity` records (0 drops everything).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            inner: Mutex::new(LogRing { ring: VecDeque::new(), dropped: 0, next_seq: 0 }),
        }
    }

    /// Appends one event. Sequence numbers keep counting across
    /// evictions, so gaps in a scrape reveal exactly what was lost.
    pub fn log(
        &self,
        level: LogLevel,
        target: &str,
        message: &str,
        trace_id: Option<&str>,
        fields: &[(&str, &str)],
    ) {
        let mut inner = self.inner.lock().expect("event log lock poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(LogRecord {
            seq,
            level,
            target: target.to_string(),
            message: message.to_string(),
            trace_id: trace_id.map(str::to_string),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        });
    }

    /// Records evicted (or refused at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event log lock poisoned").dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log lock poisoned").ring.len()
    }

    /// True when the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained records at or above `min_level`, oldest first.
    pub fn records(&self, min_level: LogLevel) -> Vec<LogRecord> {
        let inner = self.inner.lock().expect("event log lock poisoned");
        inner.ring.iter().filter(|record| record.level >= min_level).cloned().collect()
    }

    /// The `dbt-serve/logs/v1` body: every retained record at or above
    /// `min_level`, as a single JSON line.
    pub fn json(&self, min_level: LogLevel) -> String {
        let records = self.records(min_level);
        let mut body = format!(
            "{{\"schema\": \"{EVENT_LOG_SCHEMA}\", \"capacity\": {}, \"dropped\": {}, \
             \"min_level\": \"{}\", \"entries\": [",
            self.capacity,
            self.dropped(),
            min_level.as_str(),
        );
        for (index, record) in records.iter().enumerate() {
            if index > 0 {
                body.push_str(", ");
            }
            let trace = match &record.trace_id {
                Some(trace) => format!("\"{}\"", json_escape(trace)),
                None => "null".to_string(),
            };
            let fields: Vec<String> = record
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect();
            body.push_str(&format!(
                "{{\"seq\": {}, \"level\": \"{}\", \"target\": \"{}\", \"message\": \"{}\", \
                 \"trace_id\": {trace}, \"fields\": {{{}}}}}",
                record.seq,
                record.level.as_str(),
                json_escape(&record.target),
                json_escape(&record.message),
                fields.join(", "),
            ));
        }
        body.push_str("]}");
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_round_trip() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        for level in [LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Error] {
            assert_eq!(LogLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(LogLevel::parse("fatal"), None);
    }

    #[test]
    fn ring_is_bounded_and_seq_keeps_counting() {
        let log = EventLog::with_capacity(2);
        for message in ["a", "b", "c"] {
            log.log(LogLevel::Info, "test", message, None, &[]);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let kept: Vec<u64> = log.records(LogLevel::Debug).into_iter().map(|r| r.seq).collect();
        assert_eq!(kept, vec![1, 2], "seq must reveal the evicted head");
    }

    #[test]
    fn level_filter_hides_quieter_records() {
        let log = EventLog::new();
        log.log(LogLevel::Debug, "test", "noise", None, &[]);
        log.log(LogLevel::Warn, "test", "trouble", None, &[]);
        assert_eq!(log.records(LogLevel::Warn).len(), 1);
        assert_eq!(log.records(LogLevel::Debug).len(), 2);
    }

    #[test]
    fn json_body_carries_fields_trace_ids_and_drop_count() {
        let log = EventLog::with_capacity(1);
        log.log(LogLevel::Info, "router.failover", "evicted", None, &[]);
        log.log(LogLevel::Warn, "router.failover", "backend down", Some("t7"), &[("backend", "1")]);
        let body = log.json(LogLevel::Info);
        assert!(
            body.starts_with("{\"schema\": \"dbt-serve/logs/v1\", \"capacity\": 1, "),
            "{body}"
        );
        assert!(body.contains("\"dropped\": 1"), "{body}");
        assert!(body.contains("\"trace_id\": \"t7\""), "{body}");
        assert!(body.contains("\"fields\": {\"backend\": \"1\"}"), "{body}");
        assert!(!body.contains("evicted"), "{body}");
    }

    #[test]
    fn zero_capacity_log_drops_everything() {
        let log = EventLog::with_capacity(0);
        log.log(LogLevel::Error, "test", "gone", None, &[]);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
