//! The on-disk store: fanout layout, atomic publishes, checksum framing,
//! quarantine, manifest versioning and byte-budget LRU GC.

use crate::codec::{ByteReader, ByteWriter};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Schema identifier of the entry format, stamped into the manifest. Any
/// incompatible change to the on-disk layout bumps this string, which
/// makes older caches be ignored wholesale at open.
pub const ENTRY_SCHEMA: &str = "dbt-persist/entry/v1";

/// Version number inside each entry header (matches [`ENTRY_SCHEMA`]).
pub const ENTRY_VERSION: u32 = 1;

/// Magic bytes opening every entry file.
const MAGIC: &[u8; 4] = b"DBTP";

/// Process-wide counter making temp-file names unique even when several
/// stores in one process (a router fleet hosted in-process) share a root.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a over `bytes` — the entry checksum. Std-only, deterministic
/// across platforms, and plenty to catch torn writes and bit flips (the
/// threat model; this is not a cryptographic integrity guarantee).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Snapshot of the store's counters plus a scan of the directory.
///
/// The counters (`hits` … `gc_evictions`) are process-local — they start
/// at zero on every open, like the in-memory tiers' counters. The scanned
/// members (`entries`, `disk_bytes`, `quarantined`) describe the shared
/// directory itself, so two daemons on one root agree on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries read back and validated successfully.
    pub hits: u64,
    /// Reads that found no (valid) entry — includes quarantined reads.
    pub misses: u64,
    /// Entries published (atomic renames completed).
    pub writes: u64,
    /// Entries rejected by validation and moved to `corrupt/`.
    pub corrupt_quarantined: u64,
    /// Entries deleted by byte-budget GC.
    pub gc_evictions: u64,
    /// Entry files currently under `objects/`.
    pub entries: u64,
    /// Total size in bytes of the files under `objects/`.
    pub disk_bytes: u64,
    /// Files currently under `corrupt/` (individual quarantined entries
    /// plus everything inside wholesale-quarantined incompatible caches).
    pub quarantined: u64,
}

impl PersistStats {
    /// Stable single-line JSON (fixed key order), for the daemon's
    /// `stats` response and the `lab cache stats` CLI.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"writes\": {}, \"corrupt_quarantined\": {}, \
             \"gc_evictions\": {}, \"entries\": {}, \"disk_bytes\": {}, \"quarantined\": {}}}",
            self.hits,
            self.misses,
            self.writes,
            self.corrupt_quarantined,
            self.gc_evictions,
            self.entries,
            self.disk_bytes,
            self.quarantined
        )
    }
}

/// What one [`PersistStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries deleted this pass.
    pub evicted: u64,
    /// Bytes reclaimed this pass.
    pub reclaimed_bytes: u64,
    /// Entries remaining after the pass.
    pub remaining_entries: u64,
    /// Bytes remaining after the pass.
    pub remaining_bytes: u64,
}

impl GcOutcome {
    /// Stable single-line JSON (fixed key order), for the `lab cache gc`
    /// CLI.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"evicted\": {}, \"reclaimed_bytes\": {}, \"remaining_entries\": {}, \
             \"remaining_bytes\": {}}}",
            self.evicted, self.reclaimed_bytes, self.remaining_entries, self.remaining_bytes
        )
    }
}

/// Noteworthy store events, delivered to the observer the owner installed
/// (the lab daemon forwards them into its event log). Routine hits,
/// misses and writes are counters, not events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEvent {
    /// An entry failed validation and was moved to `corrupt/`.
    CorruptQuarantined {
        /// Entry kind (`run`, `prog`, `verdict`, …).
        kind: String,
        /// Entry key (lowercase hex).
        key: String,
        /// Which check rejected it.
        reason: String,
    },
    /// A GC pass deleted entries to honour a byte budget.
    GcEvicted {
        /// Entries deleted.
        entries: u64,
        /// Bytes reclaimed.
        bytes: u64,
    },
}

type Observer = Box<dyn Fn(&PersistEvent) + Send + Sync>;

/// The durable content-addressed store. See the [crate docs](crate) for
/// the design; the short version of the contract:
///
/// * [`PersistStore::get`] / [`PersistStore::put`] never surface an
///   error — a bad read is a miss (after quarantining the entry), a bad
///   write is a dropped write. Callers always have the recompute path.
/// * The **only** publish point is an atomic rename of a fully written,
///   fsynced temp file, so concurrent daemons sharing one root can never
///   observe a half-written entry.
/// * An entry is validated in full on read: magic, version, kind, key
///   and payload checksum must all match, and no trailing bytes may
///   remain.
///
/// ```
/// let root = std::env::temp_dir().join(format!("dbt-persist-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&root);
/// let store = dbt_persist::PersistStore::open(&root).unwrap();
/// assert!(store.put("run", "00ff00ff00ff00ff", b"summary bytes"));
/// assert_eq!(store.get("run", "00ff00ff00ff00ff").as_deref(), Some(&b"summary bytes"[..]));
/// assert_eq!(store.get("run", "0000000000000000"), None, "absent keys miss");
/// let stats = store.stats();
/// assert_eq!((stats.hits, stats.misses, stats.writes, stats.entries), (1, 1, 1, 1));
/// # std::fs::remove_dir_all(&root).unwrap();
/// ```
pub struct PersistStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt_quarantined: AtomicU64,
    gc_evictions: AtomicU64,
    incompatible_reset: bool,
    observer: Mutex<Option<Observer>>,
}

impl std::fmt::Debug for PersistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistStore").field("root", &self.root).finish()
    }
}

impl PersistStore {
    /// Opens (creating as needed) the store rooted at `root`.
    ///
    /// If a manifest is already present and does not match this build's
    /// schema and crate version exactly, the existing `objects/` tree is
    /// moved wholesale under `corrupt/` and a fresh cache is started —
    /// an incompatible cache is never read and never an error
    /// ([`PersistStore::incompatible_reset`] reports that it happened).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory layout cannot be created
    /// or the manifest cannot be written — an unusable root is a
    /// configuration error, unlike per-entry corruption which is handled
    /// silently.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Arc<PersistStore>> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("corrupt"))?;

        let manifest_path = root.join("manifest.json");
        let expected = format!(
            "{{\"schema\": \"{ENTRY_SCHEMA}\", \"crate_version\": \"{}\"}}\n",
            env!("CARGO_PKG_VERSION")
        );
        let mut incompatible_reset = false;
        match fs::read_to_string(&manifest_path) {
            Ok(found) if found == expected => {}
            Ok(_) => {
                // A manifest from another schema or build: quarantine the
                // whole objects tree and start fresh. A concurrent opener
                // may have won the rename; losing that race is fine, the
                // loser just finds (or recreates) an empty objects dir.
                incompatible_reset = true;
                let mut n = 0;
                let dest = loop {
                    let candidate = root.join("corrupt").join(format!("incompatible-{n}"));
                    if !candidate.exists() {
                        break candidate;
                    }
                    n += 1;
                };
                let _ = fs::rename(root.join("objects"), dest);
                fs::create_dir_all(root.join("objects"))?;
                write_atomic(&root, &manifest_path, expected.as_bytes())?;
            }
            Err(_) => write_atomic(&root, &manifest_path, expected.as_bytes())?,
        }

        Ok(Arc::new(PersistStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt_quarantined: AtomicU64::new(0),
            gc_evictions: AtomicU64::new(0),
            incompatible_reset,
            observer: Mutex::new(None),
        }))
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// True when [`PersistStore::open`] found an incompatible manifest
    /// and quarantined the previous cache wholesale.
    pub fn incompatible_reset(&self) -> bool {
        self.incompatible_reset
    }

    /// Installs the event observer (replacing any previous one). The lab
    /// daemon uses this to narrate quarantines and GC passes into its
    /// event log.
    pub fn set_observer(&self, observer: impl Fn(&PersistEvent) + Send + Sync + 'static) {
        *self.observer.lock().expect("persist observer poisoned") = Some(Box::new(observer));
    }

    fn notify(&self, event: PersistEvent) {
        if let Some(observer) = &*self.observer.lock().expect("persist observer poisoned") {
            observer(&event);
        }
    }

    /// `kind` must be a short lowercase-ASCII word and `key` lowercase
    /// hex: together they form the entry's file name, so anything else
    /// (path separators above all) is rejected outright.
    fn valid(kind: &str, key: &str) -> bool {
        !kind.is_empty()
            && kind.bytes().all(|b| b.is_ascii_lowercase())
            && key.len() >= 2
            && key.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    }

    /// `objects/<first two hex digits of key>/<kind>-<key>`.
    fn entry_path(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join("objects").join(&key[..2]).join(format!("{kind}-{key}"))
    }

    /// The payload stored under `(kind, key)`, or `None` — absent and
    /// invalid entries both read as misses. A valid hit refreshes the
    /// entry's access stamp (its mtime) for LRU GC; an invalid entry is
    /// quarantined to `corrupt/` so the recompute can re-publish cleanly.
    pub fn get(&self, kind: &str, key: &str) -> Option<Vec<u8>> {
        if !PersistStore::valid(kind, key) {
            self.misses.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        let path = self.entry_path(kind, key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                return None;
            }
        };
        match decode_entry(&data, kind, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                // Best-effort access stamp; a failed touch only skews GC
                // order, never correctness.
                if let Ok(file) = fs::File::open(&path) {
                    let _ = file.set_modified(SystemTime::now());
                }
                Some(payload)
            }
            Err(reason) => {
                self.quarantine_file(&path, kind, key, &reason);
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Publishes `payload` under `(kind, key)`: framed, written to
    /// `tmp/`, fsynced, then atomically renamed into `objects/` (the only
    /// publish point — readers and concurrent writers either see the old
    /// complete entry or the new complete entry). Best-effort: returns
    /// whether the publish happened; an I/O failure drops the write
    /// (callers always retain the recompute path).
    pub fn put(&self, kind: &str, key: &str, payload: &[u8]) -> bool {
        if !PersistStore::valid(kind, key) {
            return false;
        }
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let publish = || -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&encode_entry(kind, key, payload))?;
            file.sync_all()?;
            drop(file);
            let path = self.entry_path(kind, key);
            let fanout = path.parent().expect("entry paths have a fanout parent");
            fs::create_dir_all(fanout)?;
            fs::rename(&tmp, &path)?;
            // Make the rename itself durable; an unsynced directory only
            // risks losing the entry on power loss, never tearing it.
            if let Ok(dir) = fs::File::open(fanout) {
                let _ = dir.sync_all();
            }
            Ok(())
        };
        match publish() {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::SeqCst);
                true
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                false
            }
        }
    }

    /// Quarantines the entry under `(kind, key)` for a *semantic* reason
    /// the store cannot check itself — e.g. a payload that frames and
    /// checksums correctly but decodes to an artifact whose embedded
    /// fingerprint contradicts its key.
    pub fn quarantine(&self, kind: &str, key: &str, reason: &str) {
        if !PersistStore::valid(kind, key) {
            return;
        }
        let path = self.entry_path(kind, key);
        if path.exists() {
            self.quarantine_file(&path, kind, key, reason);
        }
    }

    fn quarantine_file(&self, path: &Path, kind: &str, key: &str, reason: &str) {
        let dest = self.root.join("corrupt").join(format!("{kind}-{key}"));
        if fs::rename(path, &dest).is_err() {
            // A concurrent quarantine of the same entry can win the
            // rename; removing the leftover keeps the miss semantics.
            let _ = fs::remove_file(path);
        }
        self.corrupt_quarantined.fetch_add(1, Ordering::SeqCst);
        self.notify(PersistEvent::CorruptQuarantined {
            kind: kind.to_string(),
            key: key.to_string(),
            reason: reason.to_string(),
        });
    }

    /// All keys currently published under `kind`, sorted. Used by the
    /// program-store boot re-seed; entries that fail to read later are
    /// handled by the normal get/quarantine path.
    pub fn keys(&self, kind: &str) -> Vec<String> {
        let prefix = format!("{kind}-");
        let mut keys: Vec<String> = scan_entries(&self.root)
            .into_iter()
            .filter_map(|entry| entry.file_name.strip_prefix(&prefix).map(|key| key.to_string()))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Counter snapshot plus a directory scan (see [`PersistStats`]).
    pub fn stats(&self) -> PersistStats {
        let entries = scan_entries(&self.root);
        PersistStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            writes: self.writes.load(Ordering::SeqCst),
            corrupt_quarantined: self.corrupt_quarantined.load(Ordering::SeqCst),
            gc_evictions: self.gc_evictions.load(Ordering::SeqCst),
            entries: entries.len() as u64,
            disk_bytes: entries.iter().map(|e| e.len).sum(),
            quarantined: count_files(&self.root.join("corrupt")),
        }
    }

    /// Deletes least-recently-accessed entries (by mtime, path as the
    /// deterministic tiebreak) until the store fits `budget_bytes`.
    /// Entries touched by [`PersistStore::get`] carry fresh access
    /// stamps, so the victims are the cold tail.
    pub fn gc(&self, budget_bytes: u64) -> GcOutcome {
        let mut entries = scan_entries(&self.root);
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        entries.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
        let mut outcome = GcOutcome::default();
        let mut kept = entries.len() as u64;
        for entry in &entries {
            if total <= budget_bytes {
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                total -= entry.len;
                kept -= 1;
                outcome.evicted += 1;
                outcome.reclaimed_bytes += entry.len;
            }
        }
        outcome.remaining_entries = kept;
        outcome.remaining_bytes = total;
        self.gc_evictions.fetch_add(outcome.evicted, Ordering::SeqCst);
        if outcome.evicted > 0 {
            self.notify(PersistEvent::GcEvicted {
                entries: outcome.evicted,
                bytes: outcome.reclaimed_bytes,
            });
        }
        outcome
    }

    /// Deletes every entry, every quarantined file and every leftover
    /// temp file, keeping the manifest. Returns the number of entries
    /// that were resident.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory layout cannot be rebuilt.
    pub fn clear(&self) -> io::Result<u64> {
        let entries = scan_entries(&self.root).len() as u64;
        for dir in ["objects", "corrupt", "tmp"] {
            let path = self.root.join(dir);
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path)?;
        }
        Ok(entries)
    }
}

/// One scanned entry file.
struct ScannedEntry {
    path: PathBuf,
    file_name: String,
    len: u64,
    mtime: SystemTime,
}

/// Every entry file under `objects/` (two levels of fanout).
fn scan_entries(root: &Path) -> Vec<ScannedEntry> {
    let mut out = Vec::new();
    let Ok(fanouts) = fs::read_dir(root.join("objects")) else {
        return out;
    };
    for fanout in fanouts.flatten() {
        let Ok(files) = fs::read_dir(fanout.path()) else {
            continue;
        };
        for file in files.flatten() {
            let Ok(meta) = file.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            out.push(ScannedEntry {
                path: file.path(),
                file_name: file.file_name().to_string_lossy().into_owned(),
                len: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
    }
    out
}

/// Recursive file count (quarantined entries plus wholesale-quarantined
/// incompatible caches, which are directories).
fn count_files(dir: &Path) -> u64 {
    let Ok(read) = fs::read_dir(dir) else {
        return 0;
    };
    let mut count = 0;
    for entry in read.flatten() {
        match entry.metadata() {
            Ok(meta) if meta.is_dir() => count += count_files(&entry.path()),
            Ok(meta) if meta.is_file() => count += 1,
            _ => {}
        }
    }
    count
}

/// Writes `bytes` to `path` via the store's tmp dir and an atomic rename
/// (the manifest uses the same publish discipline as entries).
fn write_atomic(root: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = root.join("tmp").join(format!(
        "{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)
}

/// Frames `payload` as a `dbt-persist/entry/v1` file: magic, version,
/// kind, key, FNV-1a checksum, then the length-prefixed payload.
fn encode_entry(kind: &str, key: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(MAGIC);
    w.put_u32(ENTRY_VERSION);
    w.put_str(kind);
    w.put_str(key);
    w.put_u64(fnv1a64(payload));
    w.put_bytes(payload);
    w.finish()
}

/// Validates an entry file in full against the `(kind, key)` it was
/// looked up under, returning the payload or the reason it is invalid.
fn decode_entry(data: &[u8], kind: &str, key: &str) -> Result<Vec<u8>, String> {
    let mut r = ByteReader::new(data);
    match r.take(4) {
        Some(magic) if magic == MAGIC => {}
        _ => return Err("bad magic".to_string()),
    }
    match r.u32() {
        Some(ENTRY_VERSION) => {}
        Some(version) => return Err(format!("unsupported entry version {version}")),
        None => return Err("truncated header".to_string()),
    }
    match r.str() {
        Some(found) if found == kind => {}
        _ => return Err("kind mismatch".to_string()),
    }
    match r.str() {
        Some(found) if found == key => {}
        _ => return Err("key mismatch".to_string()),
    }
    let Some(checksum) = r.u64() else {
        return Err("truncated header".to_string());
    };
    let Some(payload) = r.bytes() else {
        return Err("truncated payload".to_string());
    };
    if !r.done() {
        return Err("trailing bytes".to_string());
    }
    if fnv1a64(payload) != checksum {
        return Err("checksum mismatch".to_string());
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A fresh, empty root per test.
    fn fresh_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "dbt-persist-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&root);
        root
    }

    const KEY_A: &str = "00000000000000aa";
    const KEY_B: &str = "00000000000000bb";
    const KEY_C: &str = "00000000000000cc";

    #[test]
    fn round_trips_and_counts() {
        let root = fresh_root("roundtrip");
        let store = PersistStore::open(&root).unwrap();
        assert!(!store.incompatible_reset());
        assert!(store.put("run", KEY_A, b"alpha"));
        assert!(store.put("verdict", KEY_A, b"beta"));
        assert_eq!(store.get("run", KEY_A).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.get("verdict", KEY_A).as_deref(), Some(&b"beta"[..]));
        assert_eq!(store.get("run", KEY_B), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (2, 1, 2));
        assert_eq!(stats.entries, 2);
        assert!(stats.disk_bytes > 0);
        assert_eq!((stats.corrupt_quarantined, stats.quarantined), (0, 0));
        assert_eq!(store.keys("run"), vec![KEY_A.to_string()]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn entries_survive_reopen() {
        let root = fresh_root("reopen");
        {
            let store = PersistStore::open(&root).unwrap();
            assert!(store.put("run", KEY_A, b"durable"));
        }
        let store = PersistStore::open(&root).unwrap();
        assert!(!store.incompatible_reset());
        assert_eq!(store.get("run", KEY_A).as_deref(), Some(&b"durable"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bit_flips_are_quarantined_and_recomputable() {
        let root = fresh_root("bitflip");
        let store = PersistStore::open(&root).unwrap();
        assert!(store.put("run", KEY_A, b"payload-bytes"));
        let path = store.entry_path("run", KEY_A);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(store.get("run", KEY_A), None, "a flipped entry reads as a miss");
        assert!(!path.exists(), "the bad entry left objects/");
        assert!(root.join("corrupt").join(format!("run-{KEY_A}")).exists());
        let stats = store.stats();
        assert_eq!(stats.corrupt_quarantined, 1);
        assert_eq!(stats.quarantined, 1);
        // The recompute path re-publishes over the quarantined key.
        assert!(store.put("run", KEY_A, b"payload-bytes"));
        assert_eq!(store.get("run", KEY_A).as_deref(), Some(&b"payload-bytes"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncation_is_quarantined() {
        let root = fresh_root("truncate");
        let store = PersistStore::open(&root).unwrap();
        assert!(store.put("run", KEY_A, b"a run summary worth of bytes"));
        let path = store.entry_path("run", KEY_A);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.get("run", KEY_A), None);
        assert_eq!(store.stats().corrupt_quarantined, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn trailing_bytes_and_foreign_files_are_quarantined() {
        let root = fresh_root("trailing");
        let store = PersistStore::open(&root).unwrap();
        assert!(store.put("run", KEY_A, b"x"));
        let path = store.entry_path("run", KEY_A);
        let mut bytes = fs::read(&path).unwrap();
        bytes.push(0);
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get("run", KEY_A), None);

        // A file that is not an entry at all.
        fs::create_dir_all(store.entry_path("run", KEY_B).parent().unwrap()).unwrap();
        fs::write(store.entry_path("run", KEY_B), b"not an entry").unwrap();
        assert_eq!(store.get("run", KEY_B), None);
        assert_eq!(store.stats().corrupt_quarantined, 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kind_and_key_cross_checks_reject_renamed_entries() {
        let root = fresh_root("crosscheck");
        let store = PersistStore::open(&root).unwrap();
        assert!(store.put("run", KEY_A, b"for key A"));
        // Copy A's bytes over B's slot: framing and checksum are intact,
        // but the embedded key contradicts the lookup.
        let bytes = fs::read(store.entry_path("run", KEY_A)).unwrap();
        let dest = store.entry_path("run", KEY_B);
        fs::create_dir_all(dest.parent().unwrap()).unwrap();
        fs::write(&dest, &bytes).unwrap();
        assert_eq!(store.get("run", KEY_B), None);
        assert!(store.stats().corrupt_quarantined >= 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn incompatible_manifest_quarantines_the_whole_cache() {
        let root = fresh_root("manifest");
        {
            let store = PersistStore::open(&root).unwrap();
            assert!(store.put("run", KEY_A, b"old world"));
        }
        fs::write(root.join("manifest.json"), b"{\"schema\": \"something/else/v9\"}\n").unwrap();
        let store = PersistStore::open(&root).unwrap();
        assert!(store.incompatible_reset());
        assert_eq!(store.get("run", KEY_A), None, "old entries are ignored wholesale");
        let stats = store.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.quarantined, 1, "the old entry sits under corrupt/");
        // The new world works normally.
        assert!(store.put("run", KEY_A, b"new world"));
        assert_eq!(store.get("run", KEY_A).as_deref(), Some(&b"new world"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_evicts_the_cold_tail_by_access_stamp() {
        let root = fresh_root("gc");
        let store = PersistStore::open(&root).unwrap();
        let payload = vec![7u8; 64];
        assert!(store.put("run", KEY_A, &payload));
        assert!(store.put("run", KEY_B, &payload));
        assert!(store.put("run", KEY_C, &payload));
        // Stamp explicit, well-separated access times (filesystem mtime
        // granularity is too coarse to rely on write order).
        let base = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
        for (key, age) in [(KEY_A, 30u64), (KEY_B, 10), (KEY_C, 20)] {
            let file = fs::File::open(store.entry_path("run", key)).unwrap();
            file.set_modified(base - Duration::from_secs(age)).unwrap();
        }
        let entry_len = fs::metadata(store.entry_path("run", KEY_A)).unwrap().len();
        // Budget for exactly one entry: the two oldest (A then C) go.
        let outcome = store.gc(entry_len);
        assert_eq!(outcome.evicted, 2);
        assert_eq!(outcome.remaining_entries, 1);
        assert_eq!(outcome.reclaimed_bytes, 2 * entry_len);
        assert_eq!(outcome.remaining_bytes, entry_len);
        assert_eq!(store.get("run", KEY_A), None);
        assert_eq!(store.get("run", KEY_C), None);
        assert!(store.get("run", KEY_B).is_some(), "the most recently used entry survives");
        assert_eq!(store.stats().gc_evictions, 2);
        // Within budget: a second pass is a no-op.
        assert_eq!(store.gc(u64::MAX).evicted, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn clear_wipes_entries_and_quarantine() {
        let root = fresh_root("clear");
        let store = PersistStore::open(&root).unwrap();
        assert!(store.put("run", KEY_A, b"x"));
        store.quarantine("run", KEY_A, "test");
        assert!(store.put("run", KEY_B, b"y"));
        assert_eq!(store.clear().unwrap(), 1);
        let stats = store.stats();
        assert_eq!((stats.entries, stats.quarantined), (0, 0));
        assert_eq!(store.get("run", KEY_B), None);
        // The store stays usable after a clear.
        assert!(store.put("run", KEY_C, b"z"));
        assert!(store.get("run", KEY_C).is_some());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hostile_kinds_and_keys_never_touch_the_filesystem() {
        let root = fresh_root("hostile");
        let store = PersistStore::open(&root).unwrap();
        for (kind, key) in [
            ("run", "../../etc/passwd"),
            ("run", "ABCDEF0000000000"),
            ("run", "g000000000000000"),
            ("run", "0"),
            ("", KEY_A),
            ("Run", KEY_A),
            ("run/x", KEY_A),
        ] {
            assert!(!store.put(kind, key, b"nope"), "{kind}/{key} must be rejected");
            assert_eq!(store.get(kind, key), None);
        }
        assert_eq!(store.stats().entries, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_writers_of_one_key_publish_atomically() {
        let root = fresh_root("concurrent");
        let store = PersistStore::open(&root).unwrap();
        let payload = vec![0xabu8; 512];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        assert!(store.put("run", KEY_A, &payload));
                        let got = store.get("run", KEY_A).expect("published entries read back");
                        assert_eq!(got, payload, "no reader ever sees a torn entry");
                    }
                });
            }
        });
        assert_eq!(store.stats().corrupt_quarantined, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn observer_sees_quarantines_and_gc() {
        let root = fresh_root("observer");
        let store = PersistStore::open(&root).unwrap();
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        store.set_observer(move |event| sink.lock().unwrap().push(event.clone()));
        assert!(store.put("run", KEY_A, b"x"));
        let path = store.entry_path("run", KEY_A);
        fs::write(&path, b"garbage").unwrap();
        assert_eq!(store.get("run", KEY_A), None);
        assert!(store.put("run", KEY_B, b"y"));
        store.gc(0);
        let events = events.lock().unwrap();
        assert!(matches!(
            &events[0],
            PersistEvent::CorruptQuarantined { kind, key, .. }
                if kind == "run" && key == KEY_A
        ));
        assert!(matches!(&events[1], PersistEvent::GcEvicted { entries: 1, .. }));
    }

    #[test]
    fn stats_json_is_stable() {
        let stats = PersistStats {
            hits: 1,
            misses: 2,
            writes: 3,
            corrupt_quarantined: 4,
            gc_evictions: 5,
            entries: 6,
            disk_bytes: 7,
            quarantined: 8,
        };
        assert_eq!(
            stats.to_json(),
            "{\"hits\": 1, \"misses\": 2, \"writes\": 3, \"corrupt_quarantined\": 4, \
             \"gc_evictions\": 5, \"entries\": 6, \"disk_bytes\": 7, \"quarantined\": 8}"
        );
        let outcome =
            GcOutcome { evicted: 1, reclaimed_bytes: 2, remaining_entries: 3, remaining_bytes: 4 };
        assert_eq!(
            outcome.to_json(),
            "{\"evicted\": 1, \"reclaimed_bytes\": 2, \"remaining_entries\": 3, \
             \"remaining_bytes\": 4}"
        );
    }
}
