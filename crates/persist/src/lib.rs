//! `dbt-persist` — the durable, content-addressed cache tier.
//!
//! Every cache above the simulated platform — the `TranslationService`
//! memo, the `RunMemo`, the `ProgramStore` — lives in memory, so a daemon
//! restart is cold: the whole hot working set re-simulates and
//! re-translates until the hit rate rebuilds from scratch. This crate is
//! the missing tier between "fast while up" and "fast, period": a
//! ccache-style on-disk store that survives process lifetimes.
//!
//! The design in one paragraph: entries are addressed by the **existing**
//! content fingerprints (program fingerprint, analysis key, run-memo
//! key), stored under a two-level `objects/<xx>/<rest>` fanout, published
//! only by **atomic rename** of a checksum-framed, fsynced temp file (the
//! `dbt-persist/entry/v1` format, see [`ENTRY_SCHEMA`]), and validated in
//! full on every read — a torn, truncated or bit-flipped entry is
//! **quarantined** to `corrupt/` and reported as a miss, never as an
//! error, so the caller transparently recomputes. A manifest stamped with
//! the schema and crate version makes incompatible caches be ignored
//! wholesale, and a byte-budget LRU GC (by access-stamped mtime) bounds
//! the directory.
//!
//! The crate is bottom-level and std-only: it knows nothing about
//! programs, runs or verdicts — callers bring their own binary codecs
//! (the [`codec`] module has the length-prefixed reader/writer they
//! share) and their own counters glue.
//!
//! **Determinism invariant**: the store caches *pure functions of the
//! key*. A hit returns exactly the bytes a recompute would produce, so
//! responses are byte-identical whatever the cache warmth; only
//! wall-clock and `*_persist_*` counters may differ.

pub mod codec;
mod store;

pub use store::{GcOutcome, PersistEvent, PersistStats, PersistStore, ENTRY_SCHEMA, ENTRY_VERSION};
