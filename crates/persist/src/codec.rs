//! Length-prefixed little-endian binary encoding, shared by every layer
//! that persists an artifact.
//!
//! The store itself frames entries with this codec (magic, version, kind,
//! key, checksum, payload), and the layers above reuse it for their
//! payloads (run summaries, program images, taint verdicts). It is
//! deliberately tiny: fixed-width integers, `u64`-length-prefixed byte
//! strings, and nothing self-describing — the entry key already names the
//! payload's type and version, so the bytes can stay minimal.
//!
//! Decoding is total: every read returns `Option`, `None` meaning the
//! input is torn or foreign. Callers treat `None` as a cache miss (and
//! usually quarantine the entry), never as an error.

/// Builds a byte buffer out of fixed-width little-endian fields.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends raw bytes with no length prefix (fixed-width fields like
    /// the entry magic).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (portable across
    /// pointer widths).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends a bool as one byte (`0` or `1`).
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(value as u8);
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, text: &str) {
        self.put_bytes(text.as_bytes());
    }

    /// The finished buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads the fields a [`ByteWriter`] wrote, returning `None` on any
/// truncation or malformed field instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// The next `n` raw bytes, if that many remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// The next byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// The next little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// The next little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// The next `u64`, narrowed to `usize` (fails on overflow rather
    /// than truncating).
    pub fn usize(&mut self) -> Option<usize> {
        self.u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The next bool; bytes other than `0`/`1` are malformed.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// The next `u64`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.usize()?;
        self.take(len)
    }

    /// The next `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        self.bytes().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// True when every byte has been consumed — decoders check this so
    /// trailing garbage counts as corruption, not as a valid entry.
    pub fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut w = ByteWriter::new();
        w.put_raw(b"HDR!");
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(b"payload");
        w.put_str("text");
        let buf = w.finish();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take(4), Some(&b"HDR!"[..]));
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.usize(), Some(42));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.bool(), Some(false));
        assert_eq!(r.bytes(), Some(&b"payload"[..]));
        assert_eq!(r.str(), Some("text"));
        assert!(r.done());
    }

    #[test]
    fn truncation_reads_none_not_panic() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"0123456789");
        let buf = w.finish();
        // Cut inside the byte string: the length prefix promises more
        // bytes than remain.
        let mut r = ByteReader::new(&buf[..buf.len() - 3]);
        assert_eq!(r.bytes(), None);
        // Cut inside the length prefix itself.
        let mut r = ByteReader::new(&buf[..4]);
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn malformed_bools_and_utf8_are_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.bool(), None);
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        assert_eq!(ByteReader::new(&buf).str(), None);
    }

    #[test]
    fn done_flags_trailing_garbage() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        let mut buf = w.finish();
        buf.push(9);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Some(1));
        assert!(!r.done(), "a decoder must notice leftover bytes");
    }
}
