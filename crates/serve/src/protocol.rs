//! The wire protocol of the lab daemon: newline-delimited JSON frames.
//!
//! Every request and every response is exactly one line of JSON followed
//! by `\n`. Multi-line payloads (the lab's byte-stable report JSON) travel
//! *inside* a frame as an escaped string in the `body` member, so framing
//! never depends on payload shape and the unescaped body is byte-identical
//! to what the `lab` CLI would have printed locally.
//!
//! See `docs/PROTOCOL.md` for the full specification with examples; the
//! summary (protocol v2):
//!
//! | request `op` | payload members          | answer                          |
//! |--------------|--------------------------|---------------------------------|
//! | `run`        | `scenario`               | one-scenario lab report JSON    |
//! | `run`        | `program`, `policy?`, knobs | ad-hoc program-ref report JSON |
//! | `sweep`      | `sweep`, `threads?`      | full sweep report JSON          |
//! | `analyze`    | `program`                | taint-verdict report JSON       |
//! | `upload`     | `asm` \| `image`         | content fingerprint + dedup     |
//! | `profile`    | `program?`, `policy?`    | cycle profile / server trace log|
//! | `stats`      | —                        | server + cache counters         |
//! | `metrics`    | —                        | Prometheus text exposition      |
//! | `trace`      | `target`                 | span tree of one trace id       |
//! | `logs`       | `level?`                 | structured event-log ring       |
//! | `health`     | —                        | liveness + capacity             |
//! | `shutdown`   | —                        | ack, then the daemon stops      |
//!
//! v2 turns programs into data: `upload` submits a guest program (text
//! assembly or a program-image JSON document, both escaped into one frame
//! member) into the daemon's content-addressed program store, and the
//! `program` members of `run`/`analyze`/`profile` accept the program-ref
//! grammar (`registry:<name>` or a bare name, `fp:<16-hex>` for uploaded
//! content). Program-ref `run` frames additionally accept the sparse
//! platform knobs of [`RunKnobs`] plus a planted `secret`, and any
//! request frame may carry a `trace_id` member — echoed verbatim on the
//! response, generated deterministically by the server when absent (see
//! [`Request::decode_frame`]).
//!
//! Responses carry `status`: `"ok"` (with `body`), `"busy"` (bounded job
//! queue full — explicit backpressure, retry later) or `"error"` (with
//! `error`).
//!
//! **Protocol v3** adds the fleet envelope, strictly additively: any
//! request frame may carry an `auth` member (a bearer token, checked by
//! the `dbt-router` front door; single daemons ignore it), and responses
//! gain a fourth status, `"quota_exceeded"` — the router's deterministic
//! token-bucket rate limiter bounced the request; back off and retry,
//! like `busy`. Both members are optional and off by default, so v2
//! clients and daemons interoperate unchanged (unknown request members
//! are ignored by design). [`FrameMeta`] bundles the per-frame envelope
//! (`trace_id` + `parent_span` + `auth`) for clients and proxies that
//! speak v3.
//!
//! Distributed tracing rides the same envelope: a frame may carry a
//! `parent_span` member naming the span the receiver's request-root span
//! should attach under (the router sets it when relaying, so backend
//! trees stitch under the router's relay span); the `trace` op fetches
//! the assembled span tree of one trace id (`dbt-serve/trace/v1`) and
//! the `logs` op the structured event-log ring (`dbt-serve/logs/v1`).
//! Both are cheap ops answered inline, like `stats`.

use crate::json::{escape, JsonValue};

/// Mitigation-policy label applied when a program-ref `run` request does
/// not name one: the verdict-gated selective policy, the flagship of this
/// repo's analysis pipeline.
pub const DEFAULT_RUN_POLICY: &str = "selective";

/// The optional per-frame envelope members a v3 request may carry next to
/// its payload: the `trace_id` echoed on the response and the `auth`
/// bearer token the `dbt-router` front door checks. Both default to
/// absent, which encodes — and decodes — exactly like a v2 frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameMeta {
    /// Request trace id, echoed verbatim on the response.
    pub trace_id: Option<String>,
    /// Span id the receiver's request-root span should attach under —
    /// how the router threads causal context through to backends.
    /// Receivers without a span layer ignore it like any unknown member.
    pub parent_span: Option<String>,
    /// Bearer token for router-enforced per-connection auth. Plain
    /// daemons ignore it (unknown members pass through), so a token-
    /// carrying client works against both a router and a bare daemon.
    pub auth: Option<String>,
}

impl FrameMeta {
    /// `true` when no member is set (the frame needs no envelope members).
    pub fn is_empty(&self) -> bool {
        *self == FrameMeta::default()
    }
}

/// The source form of an uploaded guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// Text assembly (the `dbt-riscv` `.s` grammar).
    Asm(String),
    /// A program-image JSON document (`dbt-riscv/program-image/v1`).
    Image(String),
}

impl ProgramSource {
    /// The frame member carrying this source form.
    pub fn member(&self) -> &'static str {
        match self {
            ProgramSource::Asm(_) => "asm",
            ProgramSource::Image(_) => "image",
        }
    }

    /// The source text.
    pub fn text(&self) -> &str {
        match self {
            ProgramSource::Asm(text) | ProgramSource::Image(text) => text,
        }
    }
}

/// Sparse platform knobs an ad-hoc program-ref `run` request may carry,
/// as flat optional frame members. `None` members keep the per-policy
/// default platform — an all-`None` knob set is exactly the v2 behaviour.
/// Cache geometry is not wire-settable (it is a structured object, not a
/// scalar knob); sweeps over cache shapes stay a registry concern.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunKnobs {
    /// VLIW issue width (scheduler and core).
    pub issue_width: Option<u64>,
    /// Hot threshold of the DBT profiler.
    pub hot_threshold: Option<u64>,
    /// Enable/disable branch (trace-scheduling) speculation.
    pub branch_speculation: Option<bool>,
    /// Enable/disable memory (MCB) speculation.
    pub memory_speculation: Option<bool>,
    /// Memory Conflict Buffer capacity.
    pub mcb_capacity: Option<u64>,
    /// Rollback penalty in cycles.
    pub rollback_penalty: Option<u64>,
    /// Block budget of the run.
    pub max_blocks: Option<u64>,
    /// Secret to plant into the program's `secret` buffer; its presence
    /// turns the run into an attack-style measurement (recovery rate
    /// against the planted bytes).
    pub secret: Option<String>,
}

impl RunKnobs {
    /// `true` when no knob is set (the frame needs no knob members).
    pub fn is_default(&self) -> bool {
        *self == RunKnobs::default()
    }

    /// Appends the set knobs as `, "name": value` members.
    fn encode_members(&self, out: &mut String) {
        fn number(out: &mut String, name: &str, value: Option<u64>) {
            if let Some(value) = value {
                out.push_str(&format!(", \"{name}\": {value}"));
            }
        }
        fn boolean(out: &mut String, name: &str, value: Option<bool>) {
            if let Some(value) = value {
                out.push_str(&format!(", \"{name}\": {value}"));
            }
        }
        number(out, "issue_width", self.issue_width);
        number(out, "hot_threshold", self.hot_threshold);
        boolean(out, "branch_speculation", self.branch_speculation);
        boolean(out, "memory_speculation", self.memory_speculation);
        number(out, "mcb_capacity", self.mcb_capacity);
        number(out, "rollback_penalty", self.rollback_penalty);
        number(out, "max_blocks", self.max_blocks);
        if let Some(secret) = &self.secret {
            out.push_str(&format!(", \"secret\": \"{}\"", escape(secret)));
        }
    }

    /// Reads the knob members out of a parsed request frame.
    fn decode(value: &JsonValue) -> Result<RunKnobs, String> {
        let number = |name: &str| match value.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("`{name}` must be a non-negative integer")),
        };
        let boolean = |name: &str| match value.get(name) {
            None => Ok(None),
            Some(v) => v.as_bool().map(Some).ok_or_else(|| format!("`{name}` must be a boolean")),
        };
        let secret = match value.get("secret") {
            None => None,
            Some(v) => Some(v.as_str().ok_or("`secret` must be a string")?.to_string()),
        };
        Ok(RunKnobs {
            issue_width: number("issue_width")?,
            hot_threshold: number("hot_threshold")?,
            branch_speculation: boolean("branch_speculation")?,
            memory_speculation: boolean("memory_speculation")?,
            mcb_capacity: number("mcb_capacity")?,
            rollback_penalty: number("rollback_penalty")?,
            max_blocks: number("max_blocks")?,
            secret,
        })
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run one scenario by its full `sweep/program/policy/platform` name.
    Run {
        /// The scenario name.
        scenario: String,
    },
    /// Run an ad-hoc program named by a program ref under one policy.
    RunProgram {
        /// Program ref (`registry:<name>`, bare name, or `fp:<16-hex>`).
        program: String,
        /// Mitigation-policy label (`unsafe`, `selective`, ...).
        policy: String,
        /// Sparse platform overrides and optional planted secret.
        knobs: RunKnobs,
    },
    /// The deterministic cycle-domain profile of one program run
    /// (`program` set), or the server's request trace log (no
    /// `program`).
    Profile {
        /// Program ref to profile; absent = answer the trace log.
        program: Option<String>,
        /// Mitigation-policy label for the profiled run.
        policy: String,
    },
    /// Run one registered sweep.
    Sweep {
        /// The sweep name.
        name: String,
        /// Worker threads for this sweep's executor; `0` = daemon default.
        threads: usize,
    },
    /// Per-block speculative-taint verdicts of one program.
    Analyze {
        /// Program ref: a registry name (a workload, `ptr-matmul`,
        /// `spectre-v1`, `spectre-v4`) or `fp:<16-hex>` of uploaded
        /// content.
        program: String,
    },
    /// Submit a guest program into the daemon's program store.
    Upload {
        /// The program source (text assembly or image JSON).
        source: ProgramSource,
    },
    /// Server and cache counters.
    Stats,
    /// Prometheus text-format metrics exposition.
    Metrics,
    /// The assembled span tree of one trace id (`dbt-serve/trace/v1`).
    /// The router answers with its own spans stitched over the owning
    /// backend's; a daemon answers with its local spans.
    Trace {
        /// The trace id to assemble (`target`, because `trace_id` is the
        /// envelope member naming *this* request's trace).
        target: String,
    },
    /// The structured event-log ring (`dbt-serve/logs/v1`).
    Logs {
        /// Minimum level to include (`debug|info|warn|error`); absent =
        /// everything.
        level: Option<String>,
    },
    /// Liveness and capacity.
    Health,
    /// Stop the daemon (in-flight jobs finish first).
    Shutdown,
}

impl Request {
    /// The `op` tag of this request.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run { .. } | Request::RunProgram { .. } => "run",
            Request::Profile { .. } => "profile",
            Request::Sweep { .. } => "sweep",
            Request::Analyze { .. } => "analyze",
            Request::Upload { .. } => "upload",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace { .. } => "trace",
            Request::Logs { .. } => "logs",
            Request::Health => "health",
            Request::Shutdown => "shutdown",
        }
    }

    /// `true` if the request is executed on the worker pool (and therefore
    /// subject to queue backpressure) rather than answered inline. A
    /// `profile` request is heavy only when it actually profiles a
    /// program; the trace-log form is answered inline.
    pub fn is_heavy(&self) -> bool {
        match self {
            Request::Run { .. }
            | Request::RunProgram { .. }
            | Request::Sweep { .. }
            | Request::Analyze { .. }
            | Request::Upload { .. } => true,
            Request::Profile { program, .. } => program.is_some(),
            _ => false,
        }
    }

    /// Encodes the frame (one line, no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Run { scenario } => {
                format!("{{\"op\": \"run\", \"scenario\": \"{}\"}}", escape(scenario))
            }
            Request::RunProgram { program, policy, knobs } => {
                let mut out = format!(
                    "{{\"op\": \"run\", \"program\": \"{}\", \"policy\": \"{}\"",
                    escape(program),
                    escape(policy)
                );
                knobs.encode_members(&mut out);
                out.push('}');
                out
            }
            Request::Profile { program, policy } => match program {
                Some(program) => format!(
                    "{{\"op\": \"profile\", \"program\": \"{}\", \"policy\": \"{}\"}}",
                    escape(program),
                    escape(policy)
                ),
                None => "{\"op\": \"profile\"}".to_string(),
            },
            Request::Sweep { name, threads } => format!(
                "{{\"op\": \"sweep\", \"sweep\": \"{}\", \"threads\": {threads}}}",
                escape(name)
            ),
            Request::Analyze { program } => {
                format!("{{\"op\": \"analyze\", \"program\": \"{}\"}}", escape(program))
            }
            Request::Upload { source } => format!(
                "{{\"op\": \"upload\", \"{}\": \"{}\"}}",
                source.member(),
                escape(source.text())
            ),
            Request::Stats => "{\"op\": \"stats\"}".to_string(),
            Request::Metrics => "{\"op\": \"metrics\"}".to_string(),
            Request::Trace { target } => {
                format!("{{\"op\": \"trace\", \"target\": \"{}\"}}", escape(target))
            }
            Request::Logs { level } => match level {
                Some(level) => format!("{{\"op\": \"logs\", \"level\": \"{}\"}}", escape(level)),
                None => "{\"op\": \"logs\"}".to_string(),
            },
            Request::Health => "{\"op\": \"health\"}".to_string(),
            Request::Shutdown => "{\"op\": \"shutdown\"}".to_string(),
        }
    }

    /// Decodes one request line, discarding any `trace_id`.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` response frame: malformed
    /// JSON, missing/ill-typed members, or an unknown `op`.
    pub fn decode(line: &str) -> Result<Request, String> {
        Request::decode_frame(line).map(|(request, _)| request)
    }

    /// Decodes one request line, extracting the optional `trace_id`
    /// member alongside the request. The server echoes this id verbatim
    /// on the response (and generates a deterministic per-connection one
    /// when the frame carries none).
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` response frame: malformed
    /// JSON, missing/ill-typed members, or an unknown `op`.
    pub fn decode_frame(line: &str) -> Result<(Request, Option<String>), String> {
        Request::decode_frame_meta(line).map(|(request, meta)| (request, meta.trace_id))
    }

    /// Decodes one request line together with its full v3 envelope
    /// ([`FrameMeta`]: the optional `trace_id` and `auth` members).
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` response frame: malformed
    /// JSON, missing/ill-typed members, or an unknown `op`.
    pub fn decode_frame_meta(line: &str) -> Result<(Request, FrameMeta), String> {
        let value = JsonValue::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let optional = |name: &str| match value.get(name) {
            None => Ok(None),
            Some(v) => {
                v.as_str().map(|s| Some(s.to_string())).ok_or(format!("`{name}` must be a string"))
            }
        };
        let meta = FrameMeta {
            trace_id: optional("trace_id")?,
            parent_span: optional("parent_span")?,
            auth: optional("auth")?,
        };
        Ok((Request::from_value(&value)?, meta))
    }

    /// Decodes an already-parsed request frame.
    fn from_value(value: &JsonValue) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string `op` member")?;
        let need = |member: &str| {
            value
                .get(member)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("`{op}` needs a string `{member}` member"))
        };
        let policy = |value: &JsonValue| match value.get("policy") {
            None => Ok(DEFAULT_RUN_POLICY.to_string()),
            Some(_) => need("policy"),
        };
        match op {
            "run" => {
                if value.get("program").is_some() {
                    Ok(Request::RunProgram {
                        program: need("program")?,
                        policy: policy(value)?,
                        knobs: RunKnobs::decode(value)?,
                    })
                } else {
                    Ok(Request::Run { scenario: need("scenario")? })
                }
            }
            "profile" => Ok(Request::Profile {
                program: match value.get("program") {
                    None => None,
                    Some(_) => Some(need("program")?),
                },
                policy: policy(value)?,
            }),
            "sweep" => {
                let threads = match value.get("threads") {
                    None => 0,
                    Some(t) => {
                        t.as_u64().ok_or("`threads` must be a non-negative integer")? as usize
                    }
                };
                Ok(Request::Sweep { name: need("sweep")?, threads })
            }
            "analyze" => Ok(Request::Analyze { program: need("program")? }),
            "upload" => match (value.get("asm"), value.get("image")) {
                (Some(_), None) => Ok(Request::Upload { source: ProgramSource::Asm(need("asm")?) }),
                (None, Some(_)) => {
                    Ok(Request::Upload { source: ProgramSource::Image(need("image")?) })
                }
                (Some(_), Some(_)) => Err("`upload` takes `asm` or `image`, not both".to_string()),
                (None, None) => Err("`upload` needs an `asm` or `image` string member".to_string()),
            },
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "trace" => Ok(Request::Trace { target: need("target")? }),
            "logs" => Ok(Request::Logs {
                level: match value.get("level") {
                    None => None,
                    Some(_) => Some(need("level")?),
                },
            }),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected run|profile|sweep|analyze|upload|trace|logs|stats|metrics|health|shutdown)"
            )),
        }
    }

    /// [`Request::encode`] with a `trace_id` member appended, for clients
    /// that want to correlate responses with their own ids.
    pub fn encode_with_trace(&self, trace_id: &str) -> String {
        append_trace(self.encode(), trace_id)
    }

    /// [`Request::encode`] with the set members of `meta` appended
    /// (`trace_id`, then `parent_span`, then `auth`). An empty meta
    /// encodes exactly like [`Request::encode`].
    pub fn encode_with_meta(&self, meta: &FrameMeta) -> String {
        let mut frame = self.encode();
        if let Some(trace_id) = &meta.trace_id {
            frame = append_trace(frame, trace_id);
        }
        if let Some(parent_span) = &meta.parent_span {
            frame = append_member(frame, "parent_span", parent_span);
        }
        if let Some(auth) = &meta.auth {
            frame = append_member(frame, "auth", auth);
        }
        frame
    }
}

/// Appends `, "trace_id": "..."` to an encoded frame (which always ends
/// in `}`).
fn append_trace(frame: String, trace_id: &str) -> String {
    append_member(frame, "trace_id", trace_id)
}

/// Appends `, "<name>": "<value>"` to an encoded frame (which always ends
/// in `}`).
fn append_member(mut frame: String, name: &str, value: &str) -> String {
    frame.pop();
    frame.push_str(&format!(", \"{name}\": \"{}\"}}", escape(value)));
    frame
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded; `body` is the payload (itself JSON text).
    Ok {
        /// Echo of the request's `op`.
        op: String,
        /// Payload, unescaped — for `run`/`sweep`/`analyze` this is the
        /// exact multi-line JSON the `lab` CLI would print locally.
        body: String,
    },
    /// The bounded job queue is full: explicit backpressure, retry later.
    Busy {
        /// Echo of the request's `op`.
        op: String,
    },
    /// A v3 rate quota bounced the request (the router's token bucket ran
    /// dry for this client): back off and retry, like [`Response::Busy`].
    /// Only the `dbt-router` front door emits this status; single daemons
    /// never do.
    QuotaExceeded {
        /// Echo of the request's `op`.
        op: String,
    },
    /// The request failed.
    Error {
        /// Echo of the request's `op` (`"invalid"` if it never parsed).
        op: String,
        /// Human-readable cause.
        error: String,
    },
}

impl Response {
    /// Encodes the frame (one line, no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok { op, body } => format!(
                "{{\"status\": \"ok\", \"op\": \"{}\", \"body\": \"{}\"}}",
                escape(op),
                escape(body)
            ),
            Response::Busy { op } => {
                format!("{{\"status\": \"busy\", \"op\": \"{}\"}}", escape(op))
            }
            Response::QuotaExceeded { op } => {
                format!("{{\"status\": \"quota_exceeded\", \"op\": \"{}\"}}", escape(op))
            }
            Response::Error { op, error } => format!(
                "{{\"status\": \"error\", \"op\": \"{}\", \"error\": \"{}\"}}",
                escape(op),
                escape(error)
            ),
        }
    }

    /// [`Response::encode`] with the request's `trace_id` echoed as the
    /// frame's last member (when one is known).
    pub fn encode_with_trace(&self, trace_id: Option<&str>) -> String {
        match trace_id {
            None => self.encode(),
            Some(trace_id) => append_trace(self.encode(), trace_id),
        }
    }

    /// Decodes one response line, discarding any echoed `trace_id`.
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not a valid response frame.
    pub fn decode(line: &str) -> Result<Response, String> {
        Response::decode_frame(line).map(|(response, _)| response)
    }

    /// Decodes one response line together with the echoed `trace_id`, if
    /// the server attached one.
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not a valid response frame.
    pub fn decode_frame(line: &str) -> Result<(Response, Option<String>), String> {
        let value = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        let member = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("response needs a string `{name}` member"))
        };
        let trace_id = match value.get("trace_id") {
            None => None,
            Some(v) => Some(v.as_str().ok_or("`trace_id` must be a string")?.to_string()),
        };
        let op = member("op")?;
        let response = match member("status")?.as_str() {
            "ok" => Response::Ok { op, body: member("body")? },
            "busy" => Response::Busy { op },
            "quota_exceeded" => Response::QuotaExceeded { op },
            "error" => Response::Error { op, error: member("error")? },
            other => return Err(format!("unknown status `{other}`")),
        };
        Ok((response, trace_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Run { scenario: "figure4/gemm (flat)/our-approach/default".to_string() },
            Request::RunProgram {
                program: "fp:0123456789abcdef".to_string(),
                policy: "selective".to_string(),
                knobs: RunKnobs::default(),
            },
            Request::RunProgram {
                program: "histogram".to_string(),
                policy: "unsafe".to_string(),
                knobs: RunKnobs {
                    issue_width: Some(8),
                    hot_threshold: Some(2),
                    branch_speculation: Some(true),
                    memory_speculation: Some(false),
                    mcb_capacity: Some(16),
                    rollback_penalty: Some(11),
                    max_blocks: Some(50_000),
                    secret: Some("GhostBusters!".to_string()),
                },
            },
            Request::Profile {
                program: Some("spectre-v1".to_string()),
                policy: "selective".to_string(),
            },
            Request::Profile { program: None, policy: DEFAULT_RUN_POLICY.to_string() },
            Request::Sweep { name: "figure4".to_string(), threads: 7 },
            Request::Analyze { program: "histogram".to_string() },
            Request::Upload { source: ProgramSource::Asm("li a0, 1\necall\n".to_string()) },
            Request::Upload { source: ProgramSource::Image("{\"schema\": \"x\"}".to_string()) },
            Request::Stats,
            Request::Metrics,
            Request::Trace { target: "c0-17".to_string() },
            Request::Logs { level: None },
            Request::Logs { level: Some("warn".to_string()) },
            Request::Health,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Request::decode(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn trace_ids_ride_any_frame_and_round_trip() {
        // Requests: absent by default, extracted when present.
        let request = Request::Analyze { program: "gemm".to_string() };
        assert_eq!(Request::decode_frame(&request.encode()).unwrap(), (request.clone(), None));
        let line = request.encode_with_trace("c3-17");
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Request::decode_frame(&line).unwrap(), (request, Some("c3-17".to_string())));
        // Responses: the echo survives encode/decode, and plain `decode`
        // (v2 clients) ignores it.
        let response = Response::Ok { op: "analyze".to_string(), body: "{}\n".to_string() };
        let line = response.encode_with_trace(Some("c3-17"));
        assert_eq!(
            Response::decode_frame(&line).unwrap(),
            (response.clone(), Some("c3-17".to_string()))
        );
        assert_eq!(Response::decode(&line).unwrap(), response);
        assert_eq!(response.encode_with_trace(None), response.encode());
        // Ill-typed ids are rejected, not silently dropped.
        assert!(Request::decode_frame(r#"{"op": "stats", "trace_id": 7}"#)
            .unwrap_err()
            .contains("trace_id"));
    }

    #[test]
    fn v3_meta_members_ride_any_frame_and_round_trip() {
        let request = Request::Analyze { program: "gemm".to_string() };
        // An empty meta encodes exactly like v2 — byte for byte.
        assert_eq!(request.encode_with_meta(&FrameMeta::default()), request.encode());
        assert!(FrameMeta::default().is_empty());
        // All members set: still one line, and all decode back out.
        let meta = FrameMeta {
            trace_id: Some("c3-17".to_string()),
            parent_span: Some("r:relay".to_string()),
            auth: Some("fleet-secret".to_string()),
        };
        assert!(!meta.is_empty());
        let line = request.encode_with_meta(&meta);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Request::decode_frame_meta(&line).unwrap(), (request.clone(), meta));
        // Auth alone: the trace id stays absent, and v2 decode paths
        // (which know nothing about `auth`) ignore the member entirely.
        let auth_only = FrameMeta { auth: Some("tok".to_string()), ..FrameMeta::default() };
        let line = request.encode_with_meta(&auth_only);
        assert_eq!(Request::decode_frame(&line).unwrap(), (request.clone(), None));
        assert_eq!(Request::decode(&line).unwrap(), request);
        // Ill-typed tokens are rejected, not silently dropped.
        assert!(Request::decode_frame_meta(r#"{"op": "stats", "auth": 7}"#)
            .unwrap_err()
            .contains("auth"));
        assert!(Request::decode_frame_meta(r#"{"op": "stats", "parent_span": 7}"#)
            .unwrap_err()
            .contains("parent_span"));
    }

    #[test]
    fn quota_exceeded_responses_round_trip() {
        let response = Response::QuotaExceeded { op: "run".to_string() };
        let line = response.encode();
        assert_eq!(line, "{\"status\": \"quota_exceeded\", \"op\": \"run\"}");
        assert_eq!(Response::decode(&line).unwrap(), response);
        let traced = response.encode_with_trace(Some("c0-1"));
        assert_eq!(Response::decode_frame(&traced).unwrap(), (response, Some("c0-1".to_string())));
    }

    #[test]
    fn run_knobs_default_to_empty_and_reject_ill_typed_members() {
        let request = Request::decode(r#"{"op": "run", "program": "gemm"}"#).unwrap();
        assert_eq!(
            request,
            Request::RunProgram {
                program: "gemm".to_string(),
                policy: DEFAULT_RUN_POLICY.to_string(),
                knobs: RunKnobs::default(),
            }
        );
        assert!(RunKnobs::default().is_default());
        assert!(!RunKnobs { issue_width: Some(4), ..RunKnobs::default() }.is_default());
        for (line, needle) in [
            (r#"{"op": "run", "program": "gemm", "issue_width": "wide"}"#, "`issue_width`"),
            (
                r#"{"op": "run", "program": "gemm", "branch_speculation": 1}"#,
                "`branch_speculation`",
            ),
            (r#"{"op": "run", "program": "gemm", "secret": 42}"#, "`secret`"),
        ] {
            let error = Request::decode(line).unwrap_err();
            assert!(error.contains(needle), "{line}: {error}");
        }
    }

    #[test]
    fn profile_requests_default_policy_and_classify_weight() {
        let heavy = Request::decode(r#"{"op": "profile", "program": "spectre-v1"}"#).unwrap();
        assert_eq!(
            heavy,
            Request::Profile {
                program: Some("spectre-v1".to_string()),
                policy: DEFAULT_RUN_POLICY.to_string(),
            }
        );
        assert!(heavy.is_heavy(), "profiling a program runs on the worker pool");
        let light = Request::decode(r#"{"op": "profile"}"#).unwrap();
        assert_eq!(
            light,
            Request::Profile { program: None, policy: DEFAULT_RUN_POLICY.to_string() }
        );
        assert!(!light.is_heavy(), "the trace-log form is answered inline");
        assert_eq!(heavy.op(), "profile");
        // The observability ops are always cheap: answered inline, never
        // queued, never quota-charged.
        assert!(!Request::Trace { target: "c0-1".to_string() }.is_heavy());
        assert!(!Request::Logs { level: None }.is_heavy());
    }

    #[test]
    fn sweep_threads_default_to_zero() {
        let request = Request::decode(r#"{"op": "sweep", "sweep": "figure4"}"#).unwrap();
        assert_eq!(request, Request::Sweep { name: "figure4".to_string(), threads: 0 });
    }

    #[test]
    fn program_ref_runs_default_to_the_selective_policy() {
        let request =
            Request::decode(r#"{"op": "run", "program": "fp:00000000000000aa"}"#).unwrap();
        assert_eq!(
            request,
            Request::RunProgram {
                program: "fp:00000000000000aa".to_string(),
                policy: DEFAULT_RUN_POLICY.to_string(),
                knobs: RunKnobs::default(),
            }
        );
        // A scenario-form `run` still decodes as before.
        let request = Request::decode(r#"{"op": "run", "scenario": "a/b/c/d"}"#).unwrap();
        assert_eq!(request, Request::Run { scenario: "a/b/c/d".to_string() });
    }

    #[test]
    fn upload_sources_carry_multiline_programs() {
        let source = ProgramSource::Asm(".word table, 1, 2\nli a0, 3\necall\n".to_string());
        let line = Request::Upload { source: source.clone() }.encode();
        assert!(!line.contains('\n'), "frames are single lines: {line}");
        assert_eq!(Request::decode(&line).unwrap(), Request::Upload { source });
    }

    #[test]
    fn responses_round_trip_with_multiline_bodies() {
        let body = "{\n  \"schema\": \"dbt-lab/v1\",\n  \"jobs\": []\n}\n";
        let responses = [
            Response::Ok { op: "sweep".to_string(), body: body.to_string() },
            Response::Busy { op: "run".to_string() },
            Response::Error { op: "analyze".to_string(), error: "unknown program `x`".to_string() },
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Response::decode(&line).unwrap(), response);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("nonsense", "malformed"),
            ("{}", "`op`"),
            (r#"{"op": "run"}"#, "`scenario`"),
            (r#"{"op": "run", "program": "x", "policy": 3}"#, "`policy`"),
            (r#"{"op": "sweep", "sweep": "x", "threads": -1}"#, "threads"),
            (r#"{"op": "upload"}"#, "`asm` or `image`"),
            (r#"{"op": "upload", "asm": "ecall", "image": "{}"}"#, "not both"),
            (r#"{"op": "trace"}"#, "`target`"),
            (r#"{"op": "logs", "level": 3}"#, "`level`"),
            (r#"{"op": "teleport"}"#, "unknown op"),
        ] {
            let error = Request::decode(line).unwrap_err();
            assert!(error.contains(needle), "{line}: {error}");
        }
    }
}
