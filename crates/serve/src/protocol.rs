//! The wire protocol of the lab daemon: newline-delimited JSON frames.
//!
//! Every request and every response is exactly one line of JSON followed
//! by `\n`. Multi-line payloads (the lab's byte-stable report JSON) travel
//! *inside* a frame as an escaped string in the `body` member, so framing
//! never depends on payload shape and the unescaped body is byte-identical
//! to what the `lab` CLI would have printed locally.
//!
//! See `docs/PROTOCOL.md` for the full specification with examples; the
//! summary (protocol v2):
//!
//! | request `op` | payload members        | answer                          |
//! |--------------|------------------------|---------------------------------|
//! | `run`        | `scenario`             | one-scenario lab report JSON    |
//! | `run`        | `program`, `policy?`   | ad-hoc program-ref report JSON  |
//! | `sweep`      | `sweep`, `threads?`    | full sweep report JSON          |
//! | `analyze`    | `program`              | taint-verdict report JSON       |
//! | `upload`     | `asm` \| `image`       | content fingerprint + dedup     |
//! | `stats`      | —                      | server + cache counters         |
//! | `metrics`    | —                      | Prometheus text exposition      |
//! | `health`     | —                      | liveness + capacity             |
//! | `shutdown`   | —                      | ack, then the daemon stops      |
//!
//! v2 turns programs into data: `upload` submits a guest program (text
//! assembly or a program-image JSON document, both escaped into one frame
//! member) into the daemon's content-addressed program store, and the
//! `program` members of `run`/`analyze` accept the program-ref grammar
//! (`registry:<name>` or a bare name, `fp:<16-hex>` for uploaded
//! content).
//!
//! Responses carry `status`: `"ok"` (with `body`), `"busy"` (bounded job
//! queue full — explicit backpressure, retry later) or `"error"` (with
//! `error`).

use crate::json::{escape, JsonValue};

/// Mitigation-policy label applied when a program-ref `run` request does
/// not name one: the verdict-gated selective policy, the flagship of this
/// repo's analysis pipeline.
pub const DEFAULT_RUN_POLICY: &str = "selective";

/// The source form of an uploaded guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// Text assembly (the `dbt-riscv` `.s` grammar).
    Asm(String),
    /// A program-image JSON document (`dbt-riscv/program-image/v1`).
    Image(String),
}

impl ProgramSource {
    /// The frame member carrying this source form.
    pub fn member(&self) -> &'static str {
        match self {
            ProgramSource::Asm(_) => "asm",
            ProgramSource::Image(_) => "image",
        }
    }

    /// The source text.
    pub fn text(&self) -> &str {
        match self {
            ProgramSource::Asm(text) | ProgramSource::Image(text) => text,
        }
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run one scenario by its full `sweep/program/policy/platform` name.
    Run {
        /// The scenario name.
        scenario: String,
    },
    /// Run an ad-hoc program named by a program ref under one policy.
    RunProgram {
        /// Program ref (`registry:<name>`, bare name, or `fp:<16-hex>`).
        program: String,
        /// Mitigation-policy label (`unsafe`, `selective`, ...).
        policy: String,
    },
    /// Run one registered sweep.
    Sweep {
        /// The sweep name.
        name: String,
        /// Worker threads for this sweep's executor; `0` = daemon default.
        threads: usize,
    },
    /// Per-block speculative-taint verdicts of one program.
    Analyze {
        /// Program ref: a registry name (a workload, `ptr-matmul`,
        /// `spectre-v1`, `spectre-v4`) or `fp:<16-hex>` of uploaded
        /// content.
        program: String,
    },
    /// Submit a guest program into the daemon's program store.
    Upload {
        /// The program source (text assembly or image JSON).
        source: ProgramSource,
    },
    /// Server and cache counters.
    Stats,
    /// Prometheus text-format metrics exposition.
    Metrics,
    /// Liveness and capacity.
    Health,
    /// Stop the daemon (in-flight jobs finish first).
    Shutdown,
}

impl Request {
    /// The `op` tag of this request.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run { .. } | Request::RunProgram { .. } => "run",
            Request::Sweep { .. } => "sweep",
            Request::Analyze { .. } => "analyze",
            Request::Upload { .. } => "upload",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Health => "health",
            Request::Shutdown => "shutdown",
        }
    }

    /// `true` if the request is executed on the worker pool (and therefore
    /// subject to queue backpressure) rather than answered inline.
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            Request::Run { .. }
                | Request::RunProgram { .. }
                | Request::Sweep { .. }
                | Request::Analyze { .. }
                | Request::Upload { .. }
        )
    }

    /// Encodes the frame (one line, no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Run { scenario } => {
                format!("{{\"op\": \"run\", \"scenario\": \"{}\"}}", escape(scenario))
            }
            Request::RunProgram { program, policy } => format!(
                "{{\"op\": \"run\", \"program\": \"{}\", \"policy\": \"{}\"}}",
                escape(program),
                escape(policy)
            ),
            Request::Sweep { name, threads } => format!(
                "{{\"op\": \"sweep\", \"sweep\": \"{}\", \"threads\": {threads}}}",
                escape(name)
            ),
            Request::Analyze { program } => {
                format!("{{\"op\": \"analyze\", \"program\": \"{}\"}}", escape(program))
            }
            Request::Upload { source } => format!(
                "{{\"op\": \"upload\", \"{}\": \"{}\"}}",
                source.member(),
                escape(source.text())
            ),
            Request::Stats => "{\"op\": \"stats\"}".to_string(),
            Request::Metrics => "{\"op\": \"metrics\"}".to_string(),
            Request::Health => "{\"op\": \"health\"}".to_string(),
            Request::Shutdown => "{\"op\": \"shutdown\"}".to_string(),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` response frame: malformed
    /// JSON, missing/ill-typed members, or an unknown `op`.
    pub fn decode(line: &str) -> Result<Request, String> {
        let value = JsonValue::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string `op` member")?;
        let need = |member: &str| {
            value
                .get(member)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("`{op}` needs a string `{member}` member"))
        };
        match op {
            "run" => {
                if value.get("program").is_some() {
                    let policy = match value.get("policy") {
                        None => DEFAULT_RUN_POLICY.to_string(),
                        Some(_) => need("policy")?,
                    };
                    Ok(Request::RunProgram { program: need("program")?, policy })
                } else {
                    Ok(Request::Run { scenario: need("scenario")? })
                }
            }
            "sweep" => {
                let threads = match value.get("threads") {
                    None => 0,
                    Some(t) => {
                        t.as_u64().ok_or("`threads` must be a non-negative integer")? as usize
                    }
                };
                Ok(Request::Sweep { name: need("sweep")?, threads })
            }
            "analyze" => Ok(Request::Analyze { program: need("program")? }),
            "upload" => match (value.get("asm"), value.get("image")) {
                (Some(_), None) => Ok(Request::Upload { source: ProgramSource::Asm(need("asm")?) }),
                (None, Some(_)) => {
                    Ok(Request::Upload { source: ProgramSource::Image(need("image")?) })
                }
                (Some(_), Some(_)) => Err("`upload` takes `asm` or `image`, not both".to_string()),
                (None, None) => Err("`upload` needs an `asm` or `image` string member".to_string()),
            },
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected run|sweep|analyze|upload|stats|metrics|health|shutdown)"
            )),
        }
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded; `body` is the payload (itself JSON text).
    Ok {
        /// Echo of the request's `op`.
        op: String,
        /// Payload, unescaped — for `run`/`sweep`/`analyze` this is the
        /// exact multi-line JSON the `lab` CLI would print locally.
        body: String,
    },
    /// The bounded job queue is full: explicit backpressure, retry later.
    Busy {
        /// Echo of the request's `op`.
        op: String,
    },
    /// The request failed.
    Error {
        /// Echo of the request's `op` (`"invalid"` if it never parsed).
        op: String,
        /// Human-readable cause.
        error: String,
    },
}

impl Response {
    /// Encodes the frame (one line, no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok { op, body } => format!(
                "{{\"status\": \"ok\", \"op\": \"{}\", \"body\": \"{}\"}}",
                escape(op),
                escape(body)
            ),
            Response::Busy { op } => {
                format!("{{\"status\": \"busy\", \"op\": \"{}\"}}", escape(op))
            }
            Response::Error { op, error } => format!(
                "{{\"status\": \"error\", \"op\": \"{}\", \"error\": \"{}\"}}",
                escape(op),
                escape(error)
            ),
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not a valid response frame.
    pub fn decode(line: &str) -> Result<Response, String> {
        let value = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        let member = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("response needs a string `{name}` member"))
        };
        let op = member("op")?;
        match member("status")?.as_str() {
            "ok" => Ok(Response::Ok { op, body: member("body")? }),
            "busy" => Ok(Response::Busy { op }),
            "error" => Ok(Response::Error { op, error: member("error")? }),
            other => Err(format!("unknown status `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Run { scenario: "figure4/gemm (flat)/our-approach/default".to_string() },
            Request::RunProgram {
                program: "fp:0123456789abcdef".to_string(),
                policy: "selective".to_string(),
            },
            Request::Sweep { name: "figure4".to_string(), threads: 7 },
            Request::Analyze { program: "histogram".to_string() },
            Request::Upload { source: ProgramSource::Asm("li a0, 1\necall\n".to_string()) },
            Request::Upload { source: ProgramSource::Image("{\"schema\": \"x\"}".to_string()) },
            Request::Stats,
            Request::Metrics,
            Request::Health,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Request::decode(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn sweep_threads_default_to_zero() {
        let request = Request::decode(r#"{"op": "sweep", "sweep": "figure4"}"#).unwrap();
        assert_eq!(request, Request::Sweep { name: "figure4".to_string(), threads: 0 });
    }

    #[test]
    fn program_ref_runs_default_to_the_selective_policy() {
        let request =
            Request::decode(r#"{"op": "run", "program": "fp:00000000000000aa"}"#).unwrap();
        assert_eq!(
            request,
            Request::RunProgram {
                program: "fp:00000000000000aa".to_string(),
                policy: DEFAULT_RUN_POLICY.to_string(),
            }
        );
        // A scenario-form `run` still decodes as before.
        let request = Request::decode(r#"{"op": "run", "scenario": "a/b/c/d"}"#).unwrap();
        assert_eq!(request, Request::Run { scenario: "a/b/c/d".to_string() });
    }

    #[test]
    fn upload_sources_carry_multiline_programs() {
        let source = ProgramSource::Asm(".word table, 1, 2\nli a0, 3\necall\n".to_string());
        let line = Request::Upload { source: source.clone() }.encode();
        assert!(!line.contains('\n'), "frames are single lines: {line}");
        assert_eq!(Request::decode(&line).unwrap(), Request::Upload { source });
    }

    #[test]
    fn responses_round_trip_with_multiline_bodies() {
        let body = "{\n  \"schema\": \"dbt-lab/v1\",\n  \"jobs\": []\n}\n";
        let responses = [
            Response::Ok { op: "sweep".to_string(), body: body.to_string() },
            Response::Busy { op: "run".to_string() },
            Response::Error { op: "analyze".to_string(), error: "unknown program `x`".to_string() },
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Response::decode(&line).unwrap(), response);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("nonsense", "malformed"),
            ("{}", "`op`"),
            (r#"{"op": "run"}"#, "`scenario`"),
            (r#"{"op": "run", "program": "x", "policy": 3}"#, "`policy`"),
            (r#"{"op": "sweep", "sweep": "x", "threads": -1}"#, "threads"),
            (r#"{"op": "upload"}"#, "`asm` or `image`"),
            (r#"{"op": "upload", "asm": "ecall", "image": "{}"}"#, "not both"),
            (r#"{"op": "teleport"}"#, "unknown op"),
        ] {
            let error = Request::decode(line).unwrap_err();
            assert!(error.contains(needle), "{line}: {error}");
        }
    }
}
