//! **dbt-serve** — the concurrent lab daemon.
//!
//! Every experiment in this repo used to be a one-shot CLI process: each
//! `lab` invocation paid full startup and its translation memo died with
//! the process. This crate turns the lab into a long-lived service so that
//! repeated analysis queries and sweep requests become cheap, cached,
//! concurrent operations:
//!
//! * [`protocol`] — newline-delimited JSON frames over TCP (`run`,
//!   `profile`, `sweep`, `analyze`, `upload`, `stats`, `metrics`,
//!   `health`, `shutdown`); multi-line lab reports travel escaped inside
//!   single-line frames, byte-identical to local CLI output once
//!   unescaped; ad-hoc `run` frames carry sparse platform knobs
//!   ([`RunKnobs`]) and any frame may carry a `trace_id`, echoed on the
//!   response; protocol v3 adds the optional `auth` member and the
//!   `quota_exceeded` response status ([`FrameMeta`]) that the
//!   `dbt-router` fleet front door enforces;
//! * [`json`] — the dependency-free JSON reader the protocol needs (the
//!   repo's emitters are hand-rolled writers; this is the matching
//!   parser);
//! * [`queue`] — a bounded MPMC job queue: admission control with an
//!   explicit `busy` response when full, never unbounded buffering;
//! * [`server`] — the daemon: acceptor, per-connection handlers, a fixed
//!   `std::thread` worker pool, all generic over the [`LabBackend`] trait
//!   (implemented by `dbt-lab`'s `LabDaemon`, which owns the process-wide
//!   `TranslationService` and the content-addressed `RunMemo` — the two
//!   cache levels a client fleet amortizes);
//! * [`client`] — a blocking NDJSON client (`lab submit` is a thin
//!   wrapper);
//! * [`loadgen`] — N concurrent clients driving a request mix, with an
//!   on-the-fly response-consistency check, throughput counters (feeds
//!   the `BENCH_serve-throughput.json` artifact) and per-op latency
//!   percentiles from `dbt-obs` histograms (operator output only).
//!
//! The server instruments itself through `dbt-obs`: per-op request
//! counters and latency histograms, in-flight and queue-depth gauges,
//! busy/frame-cap/byte counters — scraped via the `metrics` op as
//! Prometheus text exposition (see `docs/PROTOCOL.md`).
//!
//! The crate is `std`-only and knows nothing about the lab itself — the
//! dependency points the other way (`dbt-lab` depends on `dbt-serve`), so
//! the `lab` CLI can host both the daemon and the client subcommands.

pub mod client;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ConnectOptions};
pub use json::JsonValue;
pub use loadgen::{drive, LoadOptions, LoadOutcome, OpLatency};
pub use protocol::{FrameMeta, ProgramSource, Request, Response, RunKnobs, DEFAULT_RUN_POLICY};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    read_frame, serve, serve_with_clock, Frame, LabBackend, ServerConfig, ServerHandle,
    DEFAULT_MAX_FRAME_BYTES, TRACE_LOG_CAPACITY,
};
