//! The in-repo load generator: N concurrent clients hammering a daemon.
//!
//! [`drive`] opens `clients` connections, each of which submits the given
//! request list `iterations` times, and reports throughput plus outcome
//! counts. A caller-supplied normalizer lets the driver check *response
//! consistency* on the fly: every `ok` body is normalized (e.g. the lab
//! strips the warmth-dependent `stats` block) and compared against the
//! first body seen for the same request — so a sustained run proves not
//! just that the daemon keeps up but that every client sees identical
//! payloads.
//!
//! Beyond aggregate throughput, the outcome carries client-observed
//! latency percentiles and a busy rate *per op* ([`OpLatency`]): each
//! request round trip is timed into a fixed-bucket histogram, and
//! p50/p95/p99 are deterministic bucket upper bounds. Timing data stays
//! out of the `BENCH_*.json` artifacts — it is operator output only, so
//! byte-stable determinism checks keep passing.
//!
//! Every request is tagged with a deterministic trace id
//! (`c<client>-<seq>`) and the driver checks the server echoes it back
//! verbatim on the matching response — under full concurrency, a wrong or
//! missing echo means cross-request correlation broke, and is counted as
//! an error.

use crate::client::Client;
use crate::protocol::{Request, Response};
use dbt_obs::{Counter, Histogram, MetricsRegistry, Span, DEFAULT_LATENCY_BOUNDS_MICROS};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Load shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// How many times each client submits the whole request list.
    pub iterations: usize,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions { clients: 4, iterations: 8 }
    }
}

/// Per-op latency percentiles and busy rate, measured client-side over
/// one load run.
///
/// Percentiles come from a fixed-bucket histogram
/// ([`Histogram::quantile_micros`]), so they are deterministic bucket
/// upper bounds — and, the buckets starting at 50µs, always nonzero once
/// an op was exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    /// The request op (`run`, `sweep`, ...).
    pub op: String,
    /// Requests submitted for this op (every outcome, not just `ok`).
    pub requests: u64,
    /// `busy` answers for this op.
    pub busy: u64,
    /// Median round-trip latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_micros: u64,
    /// Round-trip micros of the slowest request observed for this op.
    pub slowest_micros: u64,
    /// Trace id of that slowest request (`c<client>-<seq>`) — the handle
    /// for fetching its span tree through the `trace` op afterwards.
    pub slowest_trace: String,
}

impl OpLatency {
    /// Fraction of this op's requests bounced with `busy`, in `[0, 1]`.
    pub fn busy_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.busy as f64 / self.requests as f64
        }
    }
}

/// What a load run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Total requests submitted.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `busy` responses (bounced by backpressure).
    pub busy: u64,
    /// `error` responses and transport failures.
    pub errors: u64,
    /// `ok` bodies whose normalized form differed from the first response
    /// to the same request (must be 0 for a deterministic backend).
    pub mismatches: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Client-side latency percentiles and busy rate per distinct op, in
    /// op name order.
    pub per_op: Vec<OpLatency>,
}

impl LoadOutcome {
    /// Sustained request throughput (requests per wall-clock second).
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }
}

/// Drives `opts.clients` concurrent clients against the daemon at `addr`,
/// each submitting `requests` in order `opts.iterations` times.
///
/// `normalize` maps an `ok` body to its comparison form before the
/// cross-client consistency check (identity if every body is expected to
/// be byte-identical as-is).
///
/// # Errors
///
/// Returns a message if a client cannot connect at all; per-request
/// failures are counted in the outcome instead.
pub fn drive(
    addr: SocketAddr,
    requests: &[Request],
    opts: LoadOptions,
    normalize: &(dyn Fn(&Request, &str) -> String + Sync),
) -> Result<LoadOutcome, String> {
    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let canonical: Vec<Mutex<Option<String>>> = requests.iter().map(|_| Mutex::new(None)).collect();
    // Slowest observed round trip per request slot: (micros, trace id).
    // The trace id is the handle for pulling that request's span tree
    // through the `trace` op once the run is over.
    let slowest: Vec<Mutex<(u64, String)>> =
        requests.iter().map(|_| Mutex::new((0, String::new()))).collect();

    // Per-op measurement on a run-local registry: a latency histogram plus
    // request/busy counters per distinct op, resolved once per request
    // slot so the client threads only touch atomics.
    let registry = MetricsRegistry::new();
    let measures: Vec<(Arc<Histogram>, Arc<Counter>, Arc<Counter>)> = requests
        .iter()
        .map(|request| {
            let labels = [("op", request.op())];
            (
                registry.histogram_with(
                    "dbt_loadgen_request_seconds",
                    "Client-observed round-trip latency, by op.",
                    DEFAULT_LATENCY_BOUNDS_MICROS,
                    &labels,
                ),
                registry.counter_with(
                    "dbt_loadgen_requests_total",
                    "Requests submitted, by op.",
                    &labels,
                ),
                registry.counter_with("dbt_loadgen_busy_total", "Busy answers, by op.", &labels),
            )
        })
        .collect();

    // Connect up front so a dead daemon is a hard error, not an error count.
    let mut clients = Vec::with_capacity(opts.clients);
    for i in 0..opts.clients {
        clients.push(Client::connect(addr).map_err(|e| format!("client {i} cannot connect: {e}"))?);
    }

    let started = Instant::now();
    {
        let (ok, busy, errors, mismatches, canonical, measures, slowest) =
            (&ok, &busy, &errors, &mismatches, &canonical, &measures, &slowest);
        std::thread::scope(|scope| {
            for (client_index, mut client) in clients.drain(..).enumerate() {
                scope.spawn(move || {
                    let mut seq = 0u64;
                    for _ in 0..opts.iterations {
                        for (index, request) in requests.iter().enumerate() {
                            let (latency, submitted, busy_count) = &measures[index];
                            submitted.inc();
                            let trace_id = format!("c{client_index}-{seq}");
                            seq += 1;
                            let begun = Instant::now();
                            let traced = {
                                let _span = Span::on(latency);
                                client.request_traced(request, Some(&trace_id))
                            };
                            let took_micros = begun.elapsed().as_micros() as u64;
                            {
                                let mut slot =
                                    slowest[index].lock().expect("slowest slot poisoned");
                                if took_micros >= slot.0 {
                                    *slot = (took_micros, trace_id.clone());
                                }
                            }
                            // A wrong or missing trace echo is a broken
                            // response correlation: count it as an error,
                            // whatever the response status said.
                            let response = traced.and_then(|(response, echoed)| {
                                if echoed.as_deref() == Some(trace_id.as_str()) {
                                    Ok(response)
                                } else {
                                    Err(format!(
                                        "trace echo mismatch: sent `{trace_id}`, got {echoed:?}"
                                    ))
                                }
                            });
                            match response {
                                Ok(Response::Ok { body, .. }) => {
                                    ok.fetch_add(1, Ordering::SeqCst);
                                    let normalized = normalize(request, &body);
                                    let mut slot =
                                        canonical[index].lock().expect("canonical body poisoned");
                                    match slot.as_ref() {
                                        None => *slot = Some(normalized),
                                        Some(first) if *first == normalized => {}
                                        Some(_) => {
                                            mismatches.fetch_add(1, Ordering::SeqCst);
                                        }
                                    }
                                }
                                // A quota bounce is backpressure too: the
                                // router asked this client to slow down,
                                // exactly like a full daemon queue.
                                Ok(Response::Busy { .. } | Response::QuotaExceeded { .. }) => {
                                    busy.fetch_add(1, Ordering::SeqCst);
                                    busy_count.inc();
                                }
                                Ok(Response::Error { .. }) | Err(_) => {
                                    errors.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    // One OpLatency per distinct op, in name order (deterministic output
    // shape whatever the request mix order was).
    let mut ops: Vec<&str> = requests.iter().map(Request::op).collect();
    ops.sort_unstable();
    ops.dedup();
    let per_op = ops
        .into_iter()
        .map(|op| {
            let index = requests.iter().position(|request| request.op() == op).expect("op known");
            let (latency, submitted, busy_count) = &measures[index];
            // Several request slots may share an op; the op's slowest
            // request is the max across its slots.
            let (slowest_micros, slowest_trace) = requests
                .iter()
                .enumerate()
                .filter(|(_, request)| request.op() == op)
                .map(|(slot, _)| slowest[slot].lock().expect("slowest slot poisoned").clone())
                .max_by_key(|(micros, _)| *micros)
                .unwrap_or((0, String::new()));
            OpLatency {
                op: op.to_string(),
                requests: submitted.get(),
                busy: busy_count.get(),
                p50_micros: latency.quantile_micros(0.50),
                p95_micros: latency.quantile_micros(0.95),
                p99_micros: latency.quantile_micros(0.99),
                slowest_micros,
                slowest_trace,
            }
        })
        .collect();

    Ok(LoadOutcome {
        requests: (opts.clients * opts.iterations * requests.len()) as u64,
        ok: ok.into_inner(),
        busy: busy.into_inner(),
        errors: errors.into_inner(),
        mismatches: mismatches.into_inner(),
        elapsed: started.elapsed(),
        per_op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, LabBackend, ServerConfig};
    use std::sync::Arc;

    struct CountingBackend {
        runs: AtomicU64,
    }

    impl LabBackend for CountingBackend {
        fn run_scenario(&self, scenario: &str) -> Result<String, String> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            Ok(format!("result for {scenario}"))
        }
        fn sweep(&self, _name: &str, _threads: usize) -> Result<String, String> {
            Err("no sweeps here".to_string())
        }
        fn analyze(&self, _program: &str) -> Result<String, String> {
            Err("no analyses here".to_string())
        }
        fn stats_json(&self) -> String {
            format!("{{\"runs\": {}}}", self.runs.load(Ordering::SeqCst))
        }
    }

    #[test]
    fn drives_every_client_through_every_iteration() {
        let backend = Arc::new(CountingBackend { runs: AtomicU64::new(0) });
        let handle = serve(
            "127.0.0.1:0",
            Arc::clone(&backend) as Arc<dyn LabBackend>,
            ServerConfig { workers: 3, queue_depth: 32, ..ServerConfig::default() },
        )
        .unwrap();
        let requests = [
            Request::Run { scenario: "alpha".to_string() },
            Request::Run { scenario: "beta".to_string() },
            Request::Sweep { name: "nope".to_string(), threads: 0 },
        ];
        let outcome = drive(
            handle.addr(),
            &requests,
            LoadOptions { clients: 3, iterations: 4 },
            &|_, body| body.to_string(),
        )
        .unwrap();
        assert_eq!(outcome.requests, 36);
        assert_eq!(outcome.ok, 24, "both run requests succeed");
        assert_eq!(outcome.errors, 12, "the sweep request errors every time");
        assert_eq!(outcome.busy, 0);
        assert_eq!(outcome.mismatches, 0, "a deterministic backend never diverges");
        assert_eq!(backend.runs.load(Ordering::SeqCst), 24);
        assert!(outcome.requests_per_sec() > 0.0);

        // Per-op latency: distinct ops in name order, counts per op, and
        // nonzero monotone percentiles for every exercised op.
        let ops: Vec<&str> = outcome.per_op.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["run", "sweep"]);
        let run = &outcome.per_op[0];
        assert_eq!((run.requests, run.busy), (24, 0));
        let sweep = &outcome.per_op[1];
        assert_eq!(sweep.requests, 12, "errored requests are still measured");
        for op in &outcome.per_op {
            assert!(op.p50_micros > 0, "{op:?}");
            assert!(op.p50_micros <= op.p95_micros && op.p95_micros <= op.p99_micros, "{op:?}");
            assert_eq!(op.busy_rate(), 0.0);
            // Every exercised op remembers its slowest request's trace id.
            assert!(op.slowest_trace.starts_with('c'), "{op:?}");
        }

        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn divergent_bodies_are_counted_as_mismatches() {
        let backend = Arc::new(CountingBackend { runs: AtomicU64::new(0) });
        let handle = serve(
            "127.0.0.1:0",
            backend as Arc<dyn LabBackend>,
            ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let requests = [Request::Run { scenario: "x".to_string() }];
        // A normalizer that leaks the (monotonic) backend call count makes
        // every response after the first "diverge".
        let outcome =
            drive(handle.addr(), &requests, LoadOptions { clients: 1, iterations: 3 }, &{
                let calls = AtomicU64::new(0);
                move |_: &Request, body: &str| {
                    format!("{}#{body}", calls.fetch_add(1, Ordering::SeqCst))
                }
            })
            .unwrap();
        assert_eq!(outcome.ok, 3);
        assert_eq!(outcome.mismatches, 2);
        handle.shutdown();
        handle.wait();
    }
}
