//! The daemon itself: TCP listener, bounded job queue, fixed worker pool.
//!
//! The server is generic over a [`LabBackend`] — the object that actually
//! runs scenarios, sweeps and analyses (in this repo: `dbt-lab`'s
//! `LabDaemon`, which owns the process-wide `TranslationService` and the
//! content-addressed `RunMemo`). Keeping the backend abstract keeps this
//! crate `std`-only and lets the tests drive the concurrency machinery
//! with a controllable mock.
//!
//! Request flow:
//!
//! 1. the acceptor thread hands each connection to a detached handler
//!    thread that reads newline-delimited request frames;
//! 2. cheap requests (`stats`, `health`, `shutdown`, the trace-log form
//!    of `profile`) are answered inline;
//! 3. heavy requests (`run`, `sweep`, `analyze`, `upload`, the
//!    program-profiling form of `profile`) are pushed onto
//!    the bounded [`BoundedQueue`]; a full queue answers `busy` immediately
//!    — explicit backpressure instead of unbounded buffering (request
//!    lines themselves are bounded too: see
//!    [`ServerConfig::max_frame_bytes`]);
//! 4. the fixed pool of worker threads pops jobs, executes them on the
//!    backend, and sends the result back to the waiting handler, which
//!    writes the response frame.
//!
//! Shutdown (`shutdown` request or [`ServerHandle::shutdown`]) closes the
//! queue — workers drain what was admitted, later pushes answer an error
//! — and wakes the acceptor, so [`ServerHandle::wait`] returns once all
//! admitted work is done.
//!
//! Every answered request is tagged with a trace id — the frame's own
//! `trace_id` when the client sent one, a deterministic per-connection
//! `t<n>` otherwise — echoed on the response frame and recorded in a
//! bounded in-memory trace log that the inline form of the `profile`
//! request reads back.
//!
//! Heavy requests additionally get a causal span tree keyed by that
//! trace id: a `d:request` root (attached under the frame's
//! `parent_span` when a router relayed it), with `d:decode`,
//! `d:queue-wait`, `d:encode` children recorded here, and the deeper
//! `translate.*`/`simulate` stages recorded by the lab layers through
//! the ambient [`dbt_obs::TraceHandle`] the worker enters around
//! execution. The `trace` op assembles the tree; the `logs` op serves
//! the daemon's structured [`EventLog`] (lifecycle events live there).
//! All three rings are bounded by [`ServerConfig`] knobs.

use crate::json::escape;
use crate::protocol::{ProgramSource, Request, Response, RunKnobs};
use crate::queue::{BoundedQueue, PushError};
use dbt_obs::{
    Counter, EventLog, Gauge, Histogram, LogLevel, MetricsRegistry, Span, SpanRecord, SpanRecorder,
    TraceClock, TraceHandle, DEFAULT_LATENCY_BOUNDS_MICROS,
};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What the daemon delegates actual lab work to.
///
/// Implementations must be thread-safe: the worker pool calls these
/// concurrently. Every method returns the *payload* of an `ok` response —
/// for the report-producing operations that is expected to be the lab's
/// byte-stable report JSON, so a daemon answer is byte-identical to what a
/// local CLI invocation would have printed.
pub trait LabBackend: Send + Sync {
    /// Runs one scenario by full name, returning the report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn run_scenario(&self, scenario: &str) -> Result<String, String>;

    /// Runs one registered sweep (`threads == 0` = backend default),
    /// returning the report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn sweep(&self, name: &str, threads: usize) -> Result<String, String>;

    /// Analyzes one program (named by a program ref), returning the
    /// verdict report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn analyze(&self, program: &str) -> Result<String, String>;

    /// Submits a guest program into the backend's program store,
    /// returning a single-line JSON object with at least `fingerprint`
    /// (the `fp:<16-hex>` content address) and `dedup` (whether identical
    /// content was already resident).
    ///
    /// The default implementation rejects uploads, so backends without a
    /// program store keep working unchanged.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn upload(&self, source: &ProgramSource) -> Result<String, String> {
        let _ = source;
        Err("this backend does not accept program uploads".to_string())
    }

    /// Runs an ad-hoc program named by a program ref under `policy` with
    /// the request's sparse platform `knobs`, returning the report JSON.
    /// Rejected by default, like [`LabBackend::upload`].
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn run_program(&self, program: &str, policy: &str, knobs: &RunKnobs) -> Result<String, String> {
        let _ = (program, policy, knobs);
        Err("this backend does not run ad-hoc programs".to_string())
    }

    /// Profiles one program (named by a program ref) under `policy`,
    /// returning the deterministic cycle-domain profile report JSON.
    /// Rejected by default, like [`LabBackend::upload`].
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn profile(&self, program: &str, policy: &str) -> Result<String, String> {
        let _ = (program, policy);
        Err("this backend does not profile programs".to_string())
    }

    /// Single-line JSON object with the backend's cache/service counters
    /// (embedded verbatim in the `stats` response body).
    fn stats_json(&self) -> String;

    /// Prometheus text-format exposition of the backend's own metric
    /// families, appended after the server's families in the `metrics`
    /// response body. Backends are expected to mirror the *same*
    /// snapshots [`LabBackend::stats_json`] reports, so the two views
    /// agree exactly. The default is empty: backends without metrics
    /// keep working unchanged.
    fn metrics_text(&self) -> String {
        String::new()
    }

    /// The backend's own structured event log, if it keeps one. When
    /// present, the server adopts it as the log behind the `logs` op —
    /// backend events (durable-cache lifecycle, quarantines, GC) and
    /// server lifecycle events interleave in one stream. The default is
    /// `None`: the server creates its own log bounded by
    /// [`ServerConfig::event_log_capacity`], exactly as before.
    fn event_log(&self) -> Option<Arc<EventLog>> {
        None
    }
}

/// Default bound on one request frame, in bytes. Large enough for any
/// realistic program upload (the biggest in-repo image is a few hundred
/// KiB), small enough that a hostile or broken client cannot make a
/// handler buffer unboundedly.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// Daemon sizing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Fixed number of worker threads executing heavy requests.
    pub workers: usize,
    /// Bound of the job queue; `0` makes every heavy request answer
    /// `busy` (useful to exercise the backpressure path).
    pub queue_depth: usize,
    /// Bound on one request line: longer frames are answered with a clean
    /// `error` frame and the connection is closed (the line's framing can
    /// no longer be trusted), instead of buffering without limit.
    pub max_frame_bytes: usize,
    /// Bound of the request trace log (oldest entries evicted; `0` keeps
    /// nothing).
    pub trace_log_capacity: usize,
    /// Bound of the span ring behind the `trace` op.
    pub span_log_capacity: usize,
    /// Bound of the structured event log behind the `logs` op.
    pub event_log_capacity: usize,
    /// Root directory of the durable content-addressed cache the backend
    /// serving this config attaches (`lab serve --cache-dir`). `None` —
    /// the default — keeps every cache purely in-memory: behavior,
    /// counters and artifacts are byte-identical to builds without the
    /// persistence tier.
    pub cache_dir: Option<String>,
}

impl Default for ServerConfig {
    /// Two workers over a 16-deep queue: enough concurrency to overlap a
    /// sweep with single-scenario queries without oversubscribing the
    /// sweep executor's own threads. Frames are capped at
    /// [`DEFAULT_MAX_FRAME_BYTES`]; the observability rings keep their
    /// historical bounds ([`TRACE_LOG_CAPACITY`],
    /// [`dbt_obs::DEFAULT_SPAN_CAPACITY`],
    /// [`dbt_obs::DEFAULT_EVENT_CAPACITY`]).
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            trace_log_capacity: TRACE_LOG_CAPACITY,
            span_log_capacity: dbt_obs::DEFAULT_SPAN_CAPACITY,
            event_log_capacity: dbt_obs::DEFAULT_EVENT_CAPACITY,
            cache_dir: None,
        }
    }
}

/// One admitted job: the parsed request plus the channel its connection
/// handler is waiting on, plus the causal trace context the worker
/// re-enters around execution (heavy traced requests only).
struct Job {
    request: Request,
    reply: mpsc::Sender<Result<String, String>>,
    trace: Option<JobTrace>,
}

/// The span context a job carries across the queue.
struct JobTrace {
    handle: TraceHandle,
    /// Clock reading at admission; the worker turns the gap until pop
    /// into the `d:queue-wait` span.
    enqueued_micros: u64,
}

/// The request `op` labels the server pre-registers, so every per-op
/// sample renders (at zero) from the very first scrape. `invalid` labels
/// frames that never decoded to an op.
const OP_LABELS: [&str; 12] = [
    "analyze", "health", "invalid", "logs", "metrics", "profile", "run", "shutdown", "stats",
    "sweep", "trace", "upload",
];

/// Default bound of the in-memory request trace log (oldest entries
/// evicted); override via [`ServerConfig::trace_log_capacity`].
pub const TRACE_LOG_CAPACITY: usize = 256;

/// Span-id prefix and root span id of daemon-side spans.
const SPAN_PREFIX: &str = "d";
const ROOT_SPAN: &str = "d:request";

/// The server's own metric families, resolved once at startup on a
/// per-daemon registry (a process can host several daemons — tests do —
/// without their counters bleeding into each other).
struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    /// `dbt_serve_requests_total{op=...}`, parallel to [`OP_LABELS`].
    requests: Vec<Arc<Counter>>,
    /// `dbt_serve_request_seconds{op=...}`, parallel to [`OP_LABELS`].
    latency: Vec<Arc<Histogram>>,
    inflight: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    completed: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    frame_cap_errors: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = MetricsRegistry::new();
        let requests = OP_LABELS
            .iter()
            .map(|op| {
                registry.counter_with(
                    "dbt_serve_requests_total",
                    "Request frames seen, by op (`invalid` = never decoded).",
                    &[("op", op)],
                )
            })
            .collect();
        let latency = OP_LABELS
            .iter()
            .map(|op| {
                registry.histogram_with(
                    "dbt_serve_request_seconds",
                    "Wall-clock request latency as observed by the connection handler, by op.",
                    DEFAULT_LATENCY_BOUNDS_MICROS,
                    &[("op", op)],
                )
            })
            .collect();
        ServerMetrics {
            requests,
            latency,
            inflight: registry.gauge("dbt_serve_inflight", "Requests currently being answered."),
            queue_depth: registry
                .gauge("dbt_serve_queue_depth", "Heavy jobs queued (sampled at scrape time)."),
            completed: registry
                .counter("dbt_serve_completed_total", "Heavy jobs completed by the worker pool."),
            busy_rejections: registry.counter(
                "dbt_serve_busy_rejections_total",
                "Heavy requests bounced because the job queue was full.",
            ),
            frame_cap_errors: registry.counter(
                "dbt_serve_frame_cap_errors_total",
                "Request frames rejected for exceeding the size cap.",
            ),
            bytes_read: registry
                .counter("dbt_serve_bytes_read_total", "Request frame payload bytes read."),
            bytes_written: registry
                .counter("dbt_serve_bytes_written_total", "Response frame bytes written."),
            registry,
        }
    }

    /// Index of `op` in [`OP_LABELS`]; unknown strings land on `invalid`
    /// (cannot happen for responses the server itself produced).
    fn op_index(op: &str) -> usize {
        OP_LABELS.iter().position(|known| *known == op).unwrap_or_else(|| {
            OP_LABELS.iter().position(|known| *known == "invalid").expect("invalid is registered")
        })
    }

    /// Total request frames seen (the sum of every per-op counter) — what
    /// the `stats` JSON reports as `server.requests`.
    fn total_requests(&self) -> u64 {
        self.requests.iter().map(|counter| counter.get()).sum()
    }
}

struct Shared {
    backend: Arc<dyn LabBackend>,
    queue: BoundedQueue<Job>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    started: Instant,
    metrics: ServerMetrics,
    /// The request trace log: `(trace_id, op, micros)` of the last
    /// [`ServerConfig::trace_log_capacity`] answered requests, newest
    /// last. Latencies are wall-clock and operator-facing, like the
    /// metrics exposition.
    traces: Mutex<VecDeque<(String, String, u64)>>,
    /// Finished request spans, served by the `trace` op.
    spans: Arc<SpanRecorder>,
    /// Structured lifecycle events, served by the `logs` op. Shared with
    /// the backend when it lends its own log via [`LabBackend::event_log`].
    events: Arc<EventLog>,
}

impl Shared {
    /// Parses and answers one request line, timing it into the per-op
    /// latency histogram and the trace log. `generated` is the
    /// connection's deterministic fallback trace id, used when the frame
    /// carries none. Returns the encoded response frame and whether the
    /// server must begin shutting down after sending it.
    fn respond(&self, line: &str, generated: String) -> (String, bool) {
        self.metrics.inflight.inc();
        let decode_start = self.spans.now_micros();
        let (decoded, meta) = match Request::decode_frame_meta(line) {
            Ok((request, meta)) => (Ok(request), meta),
            Err(error) => (Err(error), Default::default()),
        };
        let decode_end = self.spans.now_micros();
        let trace_id = meta.trace_id.unwrap_or(generated);
        // Count the frame up front (under its op as soon as it is known),
        // so a `stats` or `metrics` answer includes the very request that
        // asked.
        let op = decoded.as_ref().map(Request::op).unwrap_or("invalid");
        let index = ServerMetrics::op_index(op);
        self.metrics.requests[index].inc();
        let span = Span::on(&self.metrics.latency[index]);
        let started = Instant::now();
        // Heavy requests get a span tree under the request root; cheap
        // ones (including the `trace` fetch itself) stay span-free.
        let trace = decoded.as_ref().map(Request::is_heavy).unwrap_or(false).then(|| {
            self.spans.record(SpanRecord {
                trace_id: trace_id.clone(),
                span_id: format!("{SPAN_PREFIX}:decode"),
                parent: Some(ROOT_SPAN.to_string()),
                stage: "decode".to_string(),
                start_micros: decode_start,
                duration_micros: decode_end.saturating_sub(decode_start),
            });
            TraceHandle::new(Arc::clone(&self.spans), &trace_id, SPAN_PREFIX, ROOT_SPAN)
        });
        let (response, stop) = self.answer(decoded, trace.as_ref());
        let answered = self.spans.now_micros();
        let frame = response.encode_with_trace(Some(&trace_id));
        if trace.is_some() {
            let encoded = self.spans.now_micros();
            self.spans.record(SpanRecord {
                trace_id: trace_id.clone(),
                span_id: format!("{SPAN_PREFIX}:encode"),
                parent: Some(ROOT_SPAN.to_string()),
                stage: "encode".to_string(),
                start_micros: answered,
                duration_micros: encoded.saturating_sub(answered),
            });
            self.spans.record(SpanRecord {
                trace_id: trace_id.clone(),
                span_id: ROOT_SPAN.to_string(),
                parent: meta.parent_span,
                stage: "request".to_string(),
                start_micros: decode_start,
                duration_micros: encoded.saturating_sub(decode_start),
            });
        }
        drop(span);
        // Recorded *after* answering, so a trace-log answer describes only
        // the requests before it, never itself.
        self.record_trace(&trace_id, op, started.elapsed().as_micros() as u64);
        self.metrics.inflight.dec();
        (frame, stop)
    }

    /// Appends one entry to the bounded trace log.
    fn record_trace(&self, trace_id: &str, op: &str, micros: u64) {
        let capacity = self.config.trace_log_capacity;
        let mut traces = self.traces.lock().expect("trace log lock");
        if capacity == 0 {
            return;
        }
        if traces.len() == capacity {
            traces.pop_front();
        }
        traces.push_back((trace_id.to_string(), op.to_string(), micros));
    }

    /// The single-line JSON body of the inline (trace-log) `profile`
    /// answer.
    fn trace_log_json(&self) -> String {
        let traces = self.traces.lock().expect("trace log lock");
        let entries = traces
            .iter()
            .map(|(trace_id, op, micros)| {
                format!(
                    "{{\"trace_id\": \"{}\", \"op\": \"{}\", \"micros\": {micros}}}",
                    escape(trace_id),
                    escape(op)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"schema\": \"dbt-serve/trace-log/v1\", \"capacity\": {}, \
             \"entries\": [{entries}]}}",
            self.config.trace_log_capacity
        )
    }

    /// The untimed request dispatch behind [`Shared::respond`]; `trace`
    /// is the span context of a heavy traced request, handed across the
    /// queue to the executing worker.
    fn answer(
        &self,
        decoded: Result<Request, String>,
        trace: Option<&TraceHandle>,
    ) -> (Response, bool) {
        let request = match decoded {
            Ok(request) => request,
            Err(error) => return (Response::Error { op: "invalid".to_string(), error }, false),
        };
        let op = request.op().to_string();
        match request {
            Request::Health => {
                let body = format!(
                    "{{\"workers\": {}, \"queue_depth\": {}, \"queued\": {}, \
                     \"uptime_secs\": {}, \"version\": \"{}\"}}",
                    self.config.workers,
                    self.config.queue_depth,
                    self.queue.len(),
                    self.started.elapsed().as_secs(),
                    env!("CARGO_PKG_VERSION")
                );
                (Response::Ok { op, body }, false)
            }
            Request::Stats => {
                let body = format!(
                    "{{\"server\": {{\"requests\": {}, \"completed\": {}, \
                     \"busy_rejections\": {}}}, \"lab\": {}}}",
                    self.metrics.total_requests(),
                    self.metrics.completed.get(),
                    self.metrics.busy_rejections.get(),
                    self.backend.stats_json()
                );
                (Response::Ok { op, body }, false)
            }
            Request::Metrics => {
                self.metrics.queue_depth.set(self.queue.len() as i64);
                let body =
                    format!("{}{}", self.metrics.registry.render(), self.backend.metrics_text());
                (Response::Ok { op, body }, false)
            }
            Request::Shutdown => {
                (Response::Ok { op, body: "{\"stopping\": true}".to_string() }, true)
            }
            Request::Profile { program: None, .. } => {
                (Response::Ok { op, body: self.trace_log_json() }, false)
            }
            Request::Trace { target } => {
                (Response::Ok { op, body: self.spans.tree_json(&target) }, false)
            }
            Request::Logs { level } => match level
                .as_deref()
                .map_or(Some(LogLevel::Debug), LogLevel::parse)
            {
                Some(min_level) => (Response::Ok { op, body: self.events.json(min_level) }, false),
                None => (
                    Response::Error {
                        op,
                        error: format!(
                            "unknown log level `{}` (expected debug|info|warn|error)",
                            level.unwrap_or_default()
                        ),
                    },
                    false,
                ),
            },
            request => {
                let trace = trace.map(|handle| JobTrace {
                    handle: handle.clone(),
                    enqueued_micros: self.spans.now_micros(),
                });
                let (reply, result) = mpsc::channel();
                match self.queue.try_push(Job { request, reply, trace }) {
                    Ok(()) => match result.recv() {
                        Ok(Ok(body)) => (Response::Ok { op, body }, false),
                        Ok(Err(error)) => (Response::Error { op, error }, false),
                        Err(_) => (
                            Response::Error {
                                op,
                                error: "worker dropped the job (server shutting down)".to_string(),
                            },
                            false,
                        ),
                    },
                    Err(PushError::Full) => {
                        self.metrics.busy_rejections.inc();
                        (Response::Busy { op }, false)
                    }
                    Err(PushError::Closed) => (
                        Response::Error { op, error: "server is shutting down".to_string() },
                        false,
                    ),
                }
            }
        }
    }

    /// Idempotently starts the shutdown: closes the queue (workers drain
    /// admitted jobs and exit) and pokes the acceptor awake.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.events.log(LogLevel::Info, "serve.lifecycle", "stopping", None, &[]);
            self.queue.close();
            // The acceptor blocks in `accept`; a throwaway connection to
            // ourselves unblocks it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle on a running daemon: address, counters, shutdown, join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Number of jobs currently queued (racy by nature; for observability
    /// and tests).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Asks the daemon to stop, without waiting. Equivalent to a client
    /// sending a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the daemon has stopped (acceptor and workers joined).
    /// Connections still open at that point are served their remaining
    /// cheap requests; heavy requests answer an error.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn execute(backend: &dyn LabBackend, request: &Request) -> Result<String, String> {
    match request {
        Request::Run { scenario } => backend.run_scenario(scenario),
        Request::RunProgram { program, policy, knobs } => {
            backend.run_program(program, policy, knobs)
        }
        Request::Profile { program: Some(program), policy } => backend.profile(program, policy),
        Request::Sweep { name, threads } => backend.sweep(name, *threads),
        Request::Analyze { program } => backend.analyze(program),
        Request::Upload { source } => backend.upload(source),
        // Cheap requests never reach the queue.
        Request::Profile { program: None, .. }
        | Request::Stats
        | Request::Metrics
        | Request::Trace { .. }
        | Request::Logs { .. }
        | Request::Health
        | Request::Shutdown => Err("internal: cheap request on the worker pool".to_string()),
    }
}

/// What one bounded frame read produced. Public so other NDJSON servers
/// (the `dbt-router` front door) reuse the exact same bounded framing —
/// one implementation of the drain-before-error dance, not two.
pub enum Frame {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The peer closed the connection (or the read failed).
    Eof,
    /// The line exceeded the frame cap: answer a clean `error` frame,
    /// count it, and close — mid-line, the framing cannot be trusted any
    /// further.
    TooLong(String),
    /// The line was not UTF-8: answer a clean `error` frame and close.
    Fatal(String),
}

/// Reads one newline-terminated frame, never buffering more than
/// `max_bytes` of it.
pub fn read_frame(reader: &mut BufReader<TcpStream>, max_bytes: usize) -> Frame {
    let mut buf = Vec::new();
    let mut limited = (&mut *reader).take(max_bytes as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Err(_) | Ok(0) => return Frame::Eof,
        Ok(_) => {}
    }
    // The newline is framing, not payload: drop it before checking the
    // cap, so a line of exactly `max_bytes` is accepted.
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.len() > max_bytes {
        // Discard the rest of the line (bounded, never buffered) before
        // answering: closing with unread bytes in the socket would RST
        // the connection and destroy the error frame we promise. A peer
        // that streams more than the drain cap without a newline gets
        // cut off regardless.
        let mut scratch = [0u8; 8192];
        let mut drained = 0u64;
        while drained <= 16 * max_bytes as u64 {
            match reader.read(&mut scratch) {
                Err(_) | Ok(0) => break,
                Ok(n) => {
                    drained += n as u64;
                    if scratch[..n].contains(&b'\n') {
                        break;
                    }
                }
            }
        }
        return Frame::TooLong(format!(
            "request frame exceeds the {max_bytes}-byte limit; closing the connection"
        ));
    }
    match String::from_utf8(buf) {
        Ok(line) => Frame::Line(line),
        Err(_) => Frame::Fatal("request frame is not valid UTF-8".to_string()),
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    // Deterministic per-connection fallback trace ids: the n-th frame of a
    // connection is `t<n>` unless the client chose its own.
    let mut frame_seq = 0u64;
    loop {
        let line = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Frame::Eof => return,
            Frame::TooLong(error) => {
                shared.metrics.frame_cap_errors.inc();
                send_fatal(&mut writer, shared, error);
                return;
            }
            Frame::Fatal(error) => {
                send_fatal(&mut writer, shared, error);
                return;
            }
            Frame::Line(line) => line,
        };
        shared.metrics.bytes_read.add(line.len() as u64 + 1);
        if line.trim().is_empty() {
            continue;
        }
        let generated = format!("t{frame_seq}");
        frame_seq += 1;
        let (frame, stop) = shared.respond(&line, generated);
        shared.metrics.bytes_written.add(frame.len() as u64 + 1);
        if writeln!(writer, "{frame}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if stop {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Writes the one `error` frame a connection gets before a fatal close.
fn send_fatal(writer: &mut TcpStream, shared: &Shared, error: String) {
    let frame = Response::Error { op: "invalid".to_string(), error }.encode();
    shared.metrics.bytes_written.add(frame.len() as u64 + 1);
    let _ = writeln!(writer, "{frame}").and_then(|()| writer.flush());
}

/// Starts the daemon on `addr` (use port `0` for an ephemeral port; the
/// bound address is available via [`ServerHandle::addr`]).
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind.
///
/// ```
/// use dbt_serve::{serve, Client, LabBackend, Request, Response, ServerConfig};
/// use std::sync::Arc;
///
/// struct Echo;
/// impl LabBackend for Echo {
///     fn run_scenario(&self, scenario: &str) -> Result<String, String> {
///         Ok(format!("ran {scenario}\n"))
///     }
///     fn sweep(&self, name: &str, _threads: usize) -> Result<String, String> {
///         Ok(format!("swept {name}\n"))
///     }
///     fn analyze(&self, program: &str) -> Result<String, String> {
///         Err(format!("unknown program `{program}`"))
///     }
///     fn stats_json(&self) -> String {
///         "{}".to_string()
///     }
/// }
///
/// let handle = serve("127.0.0.1:0", Arc::new(Echo), ServerConfig::default()).unwrap();
/// let mut client = Client::connect(handle.addr()).unwrap();
/// let reply = client.request(&Request::Run { scenario: "x".to_string() }).unwrap();
/// assert_eq!(reply, Response::Ok { op: "run".to_string(), body: "ran x\n".to_string() });
/// client.request(&Request::Shutdown).unwrap();
/// handle.wait();
/// ```
pub fn serve<A: ToSocketAddrs>(
    addr: A,
    backend: Arc<dyn LabBackend>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_with_clock(addr, backend, config, TraceClock::wall())
}

/// [`serve`] with an explicit span clock — a [`TraceClock::scripted`]
/// clock makes recorded span trees structurally deterministic for tests.
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind.
pub fn serve_with_clock<A: ToSocketAddrs>(
    addr: A,
    backend: Arc<dyn LabBackend>,
    config: ServerConfig,
    clock: TraceClock,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    // The pool never runs empty: clamp here so both the spawn loop and the
    // `health` response describe the same daemon.
    let config = ServerConfig { workers: config.workers.max(1), ..config };
    // A backend that keeps its own event log (the durable-cache daemon
    // does, so persistence events and server lifecycle interleave in one
    // `logs` stream) lends it to the server; otherwise the server owns one.
    let events = backend
        .event_log()
        .unwrap_or_else(|| Arc::new(EventLog::with_capacity(config.event_log_capacity)));
    let shared = Arc::new(Shared {
        backend,
        queue: BoundedQueue::new(config.queue_depth),
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        metrics: ServerMetrics::new(),
        traces: Mutex::new(VecDeque::new()),
        spans: Arc::new(SpanRecorder::with_capacity(config.span_log_capacity, clock)),
        events,
        config,
    });
    shared.events.log(
        LogLevel::Info,
        "serve.lifecycle",
        "listening",
        None,
        &[("addr", &shared.addr.to_string()), ("workers", &shared.config.workers.to_string())],
    );

    let workers = (0..shared.config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(job) = shared.queue.pop() {
                    // Re-enter the request's trace context on this thread
                    // (the lab layers' stage spans flow through it) and
                    // surface the time the job sat admitted-but-unpopped.
                    let scope = job.trace.as_ref().map(|trace| {
                        let popped = shared.spans.now_micros();
                        shared.spans.record(SpanRecord {
                            trace_id: trace.handle.trace_id().to_string(),
                            span_id: format!("{SPAN_PREFIX}:queue-wait"),
                            parent: Some(ROOT_SPAN.to_string()),
                            stage: "queue-wait".to_string(),
                            start_micros: trace.enqueued_micros,
                            duration_micros: popped.saturating_sub(trace.enqueued_micros),
                        });
                        trace.handle.enter()
                    });
                    let result = execute(&*shared.backend, &job.request);
                    drop(scope);
                    // A handler that gave up (client disconnected) is fine.
                    let _ = job.reply.send(result);
                    shared.metrics.completed.inc();
                }
            })
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            // Check the flag on *every* iteration — including accept
            // errors — so a failed or aborted wake-up connection (fd
            // exhaustion, ECONNABORTED on the immediately-dropped socket)
            // cannot leave the acceptor blocked forever, and persistent
            // accept errors cannot busy-spin past a shutdown.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    // Back off instead of spinning on persistent errors
                    // (e.g. EMFILE while handlers hold every fd).
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        })
    };

    Ok(ServerHandle { shared, acceptor, workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::DEFAULT_RUN_POLICY;

    /// A backend whose `run_scenario` blocks until the test releases it,
    /// so queue occupancy is fully under test control.
    struct BlockingBackend {
        started: mpsc::Sender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    impl LabBackend for BlockingBackend {
        fn run_scenario(&self, scenario: &str) -> Result<String, String> {
            self.started.send(()).expect("test alive");
            self.release.lock().expect("lock").recv().expect("release signal");
            Ok(format!("done {scenario}"))
        }
        fn sweep(&self, name: &str, threads: usize) -> Result<String, String> {
            Ok(format!("sweep {name} on {threads}"))
        }
        fn analyze(&self, program: &str) -> Result<String, String> {
            Ok(format!("analyze {program}"))
        }
        fn stats_json(&self) -> String {
            "{\"mock\": true}".to_string()
        }
    }

    fn run_request(name: &str) -> Request {
        Request::Run { scenario: name.to_string() }
    }

    #[test]
    fn full_queue_answers_busy_not_hang() {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = handle.addr();

        // Job A occupies the single worker (we *know* it was popped once
        // the backend signals `started`).
        let a = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&run_request("a")).unwrap()
        });
        started_rx.recv().expect("job a must reach the backend");

        // Job B fills the single queue slot; wait until it is visibly
        // queued before provoking the rejection.
        let b = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&run_request("b")).unwrap()
        });
        while handle.queue_len() < 1 {
            std::thread::yield_now();
        }

        // Job C must bounce immediately: the queue is full.
        let mut client = Client::connect(addr).unwrap();
        let c = client.request(&run_request("c")).unwrap();
        assert_eq!(c, Response::Busy { op: "run".to_string() });

        // Cheap requests are not subject to backpressure.
        let health = client.request(&Request::Health).unwrap();
        let Response::Ok { body, .. } = health else { panic!("health must answer ok") };
        assert!(body.contains("\"queued\": 1"), "{body}");

        // Release A and B; both complete normally.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert_eq!(
            a.join().unwrap(),
            Response::Ok { op: "run".to_string(), body: "done a".to_string() }
        );
        assert_eq!(
            b.join().unwrap(),
            Response::Ok { op: "run".to_string(), body: "done b".to_string() }
        );

        let stats = client.request(&Request::Stats).unwrap();
        let Response::Ok { body, .. } = stats else { panic!("stats must answer ok") };
        assert!(body.contains("\"busy_rejections\": 1"), "{body}");
        assert!(body.contains("\"mock\": true"), "backend stats embedded: {body}");

        client.request(&Request::Shutdown).unwrap();
        handle.wait();
    }

    #[test]
    fn zero_depth_queue_bounces_every_heavy_request() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { workers: 1, queue_depth: 0, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            let reply = client.request(&run_request("x")).unwrap();
            assert_eq!(reply, Response::Busy { op: "run".to_string() });
        }
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn invalid_lines_answer_an_error_frame() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve("127.0.0.1:0", Arc::new(backend), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.raw_request("this is not json").unwrap();
        assert!(matches!(&reply, Response::Error { op, .. } if op == "invalid"), "{reply:?}");
        // The connection survives a bad frame.
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn trace_ids_echo_and_fill_the_trace_log() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve("127.0.0.1:0", Arc::new(backend), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        // Generated ids are deterministic per connection: frame n gets `t<n>`.
        let (reply, trace) = client.request_traced(&Request::Health, None).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        assert_eq!(trace.as_deref(), Some("t0"));
        // Client-chosen ids are echoed verbatim.
        let (_, trace) = client.request_traced(&Request::Health, Some("probe-1")).unwrap();
        assert_eq!(trace.as_deref(), Some("probe-1"));

        // The inline `profile` form answers the trace log — which records
        // the earlier requests but never the answering request itself.
        let log_request =
            Request::Profile { program: None, policy: DEFAULT_RUN_POLICY.to_string() };
        let (reply, trace) = client.request_traced(&log_request, Some("log-probe")).unwrap();
        assert_eq!(trace.as_deref(), Some("log-probe"));
        let Response::Ok { op, body } = reply else { panic!("profile must answer ok") };
        assert_eq!(op, "profile");
        assert!(body.contains("\"schema\": \"dbt-serve/trace-log/v1\""), "{body}");
        assert!(body.contains("\"trace_id\": \"t0\", \"op\": \"health\""), "{body}");
        assert!(body.contains("\"trace_id\": \"probe-1\""), "{body}");
        assert!(!body.contains("log-probe"), "the trace-log answer excludes itself: {body}");

        // The program-profiling form reaches the backend, which rejects it
        // by default, and `request` (no trace) still works on trace-tagged
        // response frames.
        let reply = client
            .request(&Request::Profile {
                program: Some("gemm".to_string()),
                policy: DEFAULT_RUN_POLICY.to_string(),
            })
            .unwrap();
        assert!(
            matches!(&reply, Response::Error { error, .. } if error.contains("does not profile")),
            "{reply:?}"
        );

        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn oversized_frames_answer_a_clean_error_and_close() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { max_frame_bytes: 64, ..ServerConfig::default() },
        )
        .unwrap();

        // A frame under the cap still answers normally.
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));

        // A line of *exactly* the cap is within the limit (the newline is
        // framing, not payload): it fails as bad JSON, not as oversized,
        // and the connection survives.
        let exact = "x".repeat(64);
        let reply = client.raw_request(&exact).unwrap();
        let Response::Error { error, .. } = reply else { panic!("expected an error frame") };
        assert!(!error.contains("limit"), "{error}");
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));

        // A frame over the cap gets one clean error frame, not a hang and
        // not unbounded buffering...
        let huge = format!("{{\"op\": \"analyze\", \"program\": \"{}\"}}", "x".repeat(256));
        let reply = client.raw_request(&huge).unwrap();
        let Response::Error { op, error } = reply else { panic!("expected an error frame") };
        assert_eq!(op, "invalid");
        assert!(error.contains("64-byte limit"), "{error}");

        // ...and the connection is closed afterwards (mid-line, framing
        // cannot be trusted).
        assert!(client.request(&Request::Health).is_err(), "connection must be closed");

        // Fresh connections keep working, and the rejection is visible in
        // the metrics exposition.
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        let Response::Ok { body, .. } = client.request(&Request::Metrics).unwrap() else {
            panic!("metrics must answer ok")
        };
        assert!(body.contains("dbt_serve_frame_cap_errors_total 1"), "{body}");

        handle.shutdown();
        handle.wait();
    }

    fn quiet_backend() -> Arc<BlockingBackend> {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        Arc::new(BlockingBackend { started: started_tx, release: Mutex::new(release_rx) })
    }

    #[test]
    fn trace_log_capacity_knob_evicts_at_the_boundary() {
        let handle = serve(
            "127.0.0.1:0",
            quiet_backend(),
            ServerConfig { trace_log_capacity: 3, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for id in ["q1", "q2", "q3"] {
            client.request_traced(&Request::Health, Some(id)).unwrap();
        }
        // Exactly at capacity: nothing evicted yet.
        let log_request =
            Request::Profile { program: None, policy: DEFAULT_RUN_POLICY.to_string() };
        let (reply, _) = client.request_traced(&log_request, Some("scrape-1")).unwrap();
        let Response::Ok { body, .. } = reply else { panic!("profile must answer ok") };
        assert!(body.contains("\"capacity\": 3"), "{body}");
        for id in ["q1", "q2", "q3"] {
            assert!(body.contains(id), "{body}");
        }
        // One over (the scrape itself was recorded after answering): the
        // oldest entry, and only it, is gone.
        let (reply, _) = client.request_traced(&log_request, Some("scrape-2")).unwrap();
        let Response::Ok { body, .. } = reply else { panic!("profile must answer ok") };
        assert!(!body.contains("q1"), "oldest entry must be evicted: {body}");
        for id in ["q2", "q3", "scrape-1"] {
            assert!(body.contains(id), "{body}");
        }
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn trace_op_assembles_the_span_tree_of_a_heavy_request() {
        use crate::protocol::FrameMeta;
        let handle = serve_with_clock(
            "127.0.0.1:0",
            quiet_backend(),
            ServerConfig::default(),
            dbt_obs::TraceClock::scripted(10),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        // A heavy request without a parent_span roots its own tree...
        let analyze = Request::Analyze { program: "p".to_string() };
        client.request_traced(&analyze, Some("job-1")).unwrap();
        let Response::Ok { body, .. } =
            client.request(&Request::Trace { target: "job-1".to_string() }).unwrap()
        else {
            panic!("trace must answer ok")
        };
        assert!(
            body.starts_with("{\"schema\": \"dbt-serve/trace/v1\", \"trace_id\": \"job-1\""),
            "{body}"
        );
        for span in ["d:decode", "d:queue-wait", "d:request", "d:encode"] {
            assert!(body.contains(&format!("\"span_id\": \"{span}\"")), "{body}");
        }
        assert!(
            body.contains("\"span_id\": \"d:request\", \"parent\": null"),
            "no parent_span member means the request roots the tree: {body}"
        );
        // ...while a relayed frame's `parent_span` reparents the root.
        let meta = FrameMeta {
            trace_id: Some("job-2".to_string()),
            parent_span: Some("r:relay".to_string()),
            ..FrameMeta::default()
        };
        client.request_meta(&analyze, &meta).unwrap();
        let Response::Ok { body, .. } =
            client.request(&Request::Trace { target: "job-2".to_string() }).unwrap()
        else {
            panic!("trace must answer ok")
        };
        assert!(body.contains("\"span_id\": \"d:request\", \"parent\": \"r:relay\""), "{body}");
        // Cheap requests (the trace fetches above included) record nothing.
        let Response::Ok { body, .. } =
            client.request(&Request::Trace { target: "t2".to_string() }).unwrap()
        else {
            panic!("trace must answer ok")
        };
        assert!(body.contains("\"spans\": []"), "{body}");
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn logs_op_serves_leveled_lifecycle_events() {
        let handle = serve("127.0.0.1:0", quiet_backend(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let Response::Ok { body, .. } = client.request(&Request::Logs { level: None }).unwrap()
        else {
            panic!("logs must answer ok")
        };
        assert!(body.starts_with("{\"schema\": \"dbt-serve/logs/v1\""), "{body}");
        assert!(body.contains("\"target\": \"serve.lifecycle\""), "{body}");
        assert!(body.contains("\"message\": \"listening\""), "{body}");
        // The level filter hides info-level lifecycle chatter.
        let Response::Ok { body, .. } =
            client.request(&Request::Logs { level: Some("warn".to_string()) }).unwrap()
        else {
            panic!("logs must answer ok")
        };
        assert!(!body.contains("listening"), "{body}");
        // Unknown levels are described, not guessed.
        let reply = client.request(&Request::Logs { level: Some("loud".to_string()) }).unwrap();
        assert!(
            matches!(&reply, Response::Error { error, .. } if error.contains("unknown log level `loud`")),
            "{reply:?}"
        );
        handle.shutdown();
        handle.wait();
    }

    /// Extracts the value of the first sample line starting with `prefix`.
    fn sample_value(text: &str, prefix: &str) -> u64 {
        let line = text
            .lines()
            .find(|line| line.starts_with(prefix))
            .unwrap_or_else(|| panic!("no `{prefix}` sample in:\n{text}"));
        line.rsplit(' ').next().unwrap().parse().unwrap_or_else(|_| panic!("not a u64: {line}"))
    }

    #[test]
    fn health_reports_uptime_version_and_pool_size() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { workers: 3, queue_depth: 5, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let Response::Ok { body, .. } = client.request(&Request::Health).unwrap() else {
            panic!("health must answer ok")
        };
        assert!(body.contains("\"workers\": 3"), "{body}");
        assert!(body.contains("\"queue_depth\": 5"), "{body}");
        assert!(body.contains("\"uptime_secs\": "), "{body}");
        assert!(
            body.contains(&format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"))),
            "{body}"
        );
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn metrics_expose_per_op_counters_that_agree_with_stats() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve("127.0.0.1:0", Arc::new(backend), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        // A scripted sequence: one analyze (heavy, completes), one health,
        // one invalid frame, then the scrape itself.
        assert!(matches!(
            client.request(&Request::Analyze { program: "p".to_string() }).unwrap(),
            Response::Ok { .. }
        ));
        assert!(matches!(client.request(&Request::Health).unwrap(), Response::Ok { .. }));
        assert!(matches!(client.raw_request("not json").unwrap(), Response::Error { .. }));
        let Response::Ok { body, .. } = client.request(&Request::Metrics).unwrap() else {
            panic!("metrics must answer ok")
        };

        assert_eq!(sample_value(&body, "dbt_serve_requests_total{op=\"analyze\"}"), 1);
        assert_eq!(sample_value(&body, "dbt_serve_requests_total{op=\"health\"}"), 1);
        assert_eq!(sample_value(&body, "dbt_serve_requests_total{op=\"invalid\"}"), 1);
        assert_eq!(
            sample_value(&body, "dbt_serve_requests_total{op=\"metrics\"}"),
            1,
            "the scrape counts itself"
        );
        assert_eq!(
            sample_value(&body, "dbt_serve_requests_total{op=\"run\"}"),
            0,
            "pre-registered ops render at zero"
        );
        assert_eq!(sample_value(&body, "dbt_serve_request_seconds_count{op=\"analyze\"}"), 1);
        assert_eq!(sample_value(&body, "dbt_serve_completed_total"), 1);
        assert_eq!(sample_value(&body, "dbt_serve_frame_cap_errors_total"), 0);
        assert_eq!(sample_value(&body, "dbt_serve_inflight"), 1, "the scrape itself is in flight");
        assert!(sample_value(&body, "dbt_serve_bytes_read_total") > 0);
        assert!(sample_value(&body, "dbt_serve_bytes_written_total") > 0);

        // The stats view counts the same frames: analyze + health +
        // invalid + metrics + this stats request = 5.
        let Response::Ok { body, .. } = client.request(&Request::Stats).unwrap() else {
            panic!("stats must answer ok")
        };
        assert!(body.contains("\"requests\": 5"), "{body}");
        assert!(body.contains("\"completed\": 1"), "{body}");

        handle.shutdown();
        handle.wait();
    }
}
