//! The daemon itself: TCP listener, bounded job queue, fixed worker pool.
//!
//! The server is generic over a [`LabBackend`] — the object that actually
//! runs scenarios, sweeps and analyses (in this repo: `dbt-lab`'s
//! `LabDaemon`, which owns the process-wide `TranslationService` and the
//! content-addressed `RunMemo`). Keeping the backend abstract keeps this
//! crate `std`-only and lets the tests drive the concurrency machinery
//! with a controllable mock.
//!
//! Request flow:
//!
//! 1. the acceptor thread hands each connection to a detached handler
//!    thread that reads newline-delimited request frames;
//! 2. cheap requests (`stats`, `health`, `shutdown`) are answered inline;
//! 3. heavy requests (`run`, `sweep`, `analyze`, `upload`) are pushed onto
//!    the bounded [`BoundedQueue`]; a full queue answers `busy` immediately
//!    — explicit backpressure instead of unbounded buffering (request
//!    lines themselves are bounded too: see
//!    [`ServerConfig::max_frame_bytes`]);
//! 4. the fixed pool of worker threads pops jobs, executes them on the
//!    backend, and sends the result back to the waiting handler, which
//!    writes the response frame.
//!
//! Shutdown (`shutdown` request or [`ServerHandle::shutdown`]) closes the
//! queue — workers drain what was admitted, later pushes answer an error
//! — and wakes the acceptor, so [`ServerHandle::wait`] returns once all
//! admitted work is done.

use crate::protocol::{ProgramSource, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// What the daemon delegates actual lab work to.
///
/// Implementations must be thread-safe: the worker pool calls these
/// concurrently. Every method returns the *payload* of an `ok` response —
/// for the report-producing operations that is expected to be the lab's
/// byte-stable report JSON, so a daemon answer is byte-identical to what a
/// local CLI invocation would have printed.
pub trait LabBackend: Send + Sync {
    /// Runs one scenario by full name, returning the report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn run_scenario(&self, scenario: &str) -> Result<String, String>;

    /// Runs one registered sweep (`threads == 0` = backend default),
    /// returning the report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn sweep(&self, name: &str, threads: usize) -> Result<String, String>;

    /// Analyzes one program (named by a program ref), returning the
    /// verdict report JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn analyze(&self, program: &str) -> Result<String, String>;

    /// Submits a guest program into the backend's program store,
    /// returning a single-line JSON object with at least `fingerprint`
    /// (the `fp:<16-hex>` content address) and `dedup` (whether identical
    /// content was already resident).
    ///
    /// The default implementation rejects uploads, so backends without a
    /// program store keep working unchanged.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn upload(&self, source: &ProgramSource) -> Result<String, String> {
        let _ = source;
        Err("this backend does not accept program uploads".to_string())
    }

    /// Runs an ad-hoc program named by a program ref under `policy`,
    /// returning the report JSON. Rejected by default, like
    /// [`LabBackend::upload`].
    ///
    /// # Errors
    ///
    /// A human-readable message for the `error` response frame.
    fn run_program(&self, program: &str, policy: &str) -> Result<String, String> {
        let _ = (program, policy);
        Err("this backend does not run ad-hoc programs".to_string())
    }

    /// Single-line JSON object with the backend's cache/service counters
    /// (embedded verbatim in the `stats` response body).
    fn stats_json(&self) -> String;
}

/// Default bound on one request frame, in bytes. Large enough for any
/// realistic program upload (the biggest in-repo image is a few hundred
/// KiB), small enough that a hostile or broken client cannot make a
/// handler buffer unboundedly.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// Daemon sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Fixed number of worker threads executing heavy requests.
    pub workers: usize,
    /// Bound of the job queue; `0` makes every heavy request answer
    /// `busy` (useful to exercise the backpressure path).
    pub queue_depth: usize,
    /// Bound on one request line: longer frames are answered with a clean
    /// `error` frame and the connection is closed (the line's framing can
    /// no longer be trusted), instead of buffering without limit.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    /// Two workers over a 16-deep queue: enough concurrency to overlap a
    /// sweep with single-scenario queries without oversubscribing the
    /// sweep executor's own threads. Frames are capped at
    /// [`DEFAULT_MAX_FRAME_BYTES`].
    fn default() -> ServerConfig {
        ServerConfig { workers: 2, queue_depth: 16, max_frame_bytes: DEFAULT_MAX_FRAME_BYTES }
    }
}

/// One admitted job: the parsed request plus the channel its connection
/// handler is waiting on.
struct Job {
    request: Request,
    reply: mpsc::Sender<Result<String, String>>,
}

struct Shared {
    backend: Arc<dyn LabBackend>,
    queue: BoundedQueue<Job>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    requests: AtomicU64,
    completed: AtomicU64,
    busy_rejections: AtomicU64,
}

impl Shared {
    /// Parses and answers one request line. Returns the response frame and
    /// whether the server must begin shutting down after sending it.
    fn respond(&self, line: &str) -> (Response, bool) {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let request = match Request::decode(line) {
            Ok(request) => request,
            Err(error) => return (Response::Error { op: "invalid".to_string(), error }, false),
        };
        let op = request.op().to_string();
        match request {
            Request::Health => {
                let body = format!(
                    "{{\"workers\": {}, \"queue_depth\": {}, \"queued\": {}}}",
                    self.config.workers,
                    self.config.queue_depth,
                    self.queue.len()
                );
                (Response::Ok { op, body }, false)
            }
            Request::Stats => {
                let body = format!(
                    "{{\"server\": {{\"requests\": {}, \"completed\": {}, \
                     \"busy_rejections\": {}}}, \"lab\": {}}}",
                    self.requests.load(Ordering::SeqCst),
                    self.completed.load(Ordering::SeqCst),
                    self.busy_rejections.load(Ordering::SeqCst),
                    self.backend.stats_json()
                );
                (Response::Ok { op, body }, false)
            }
            Request::Shutdown => {
                (Response::Ok { op, body: "{\"stopping\": true}".to_string() }, true)
            }
            request => {
                let (reply, result) = mpsc::channel();
                match self.queue.try_push(Job { request, reply }) {
                    Ok(()) => match result.recv() {
                        Ok(Ok(body)) => (Response::Ok { op, body }, false),
                        Ok(Err(error)) => (Response::Error { op, error }, false),
                        Err(_) => (
                            Response::Error {
                                op,
                                error: "worker dropped the job (server shutting down)".to_string(),
                            },
                            false,
                        ),
                    },
                    Err(PushError::Full) => {
                        self.busy_rejections.fetch_add(1, Ordering::SeqCst);
                        (Response::Busy { op }, false)
                    }
                    Err(PushError::Closed) => (
                        Response::Error { op, error: "server is shutting down".to_string() },
                        false,
                    ),
                }
            }
        }
    }

    /// Idempotently starts the shutdown: closes the queue (workers drain
    /// admitted jobs and exit) and pokes the acceptor awake.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
            // The acceptor blocks in `accept`; a throwaway connection to
            // ourselves unblocks it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle on a running daemon: address, counters, shutdown, join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Number of jobs currently queued (racy by nature; for observability
    /// and tests).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Asks the daemon to stop, without waiting. Equivalent to a client
    /// sending a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the daemon has stopped (acceptor and workers joined).
    /// Connections still open at that point are served their remaining
    /// cheap requests; heavy requests answer an error.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn execute(backend: &dyn LabBackend, request: &Request) -> Result<String, String> {
    match request {
        Request::Run { scenario } => backend.run_scenario(scenario),
        Request::RunProgram { program, policy } => backend.run_program(program, policy),
        Request::Sweep { name, threads } => backend.sweep(name, *threads),
        Request::Analyze { program } => backend.analyze(program),
        Request::Upload { source } => backend.upload(source),
        // Cheap requests never reach the queue.
        Request::Stats | Request::Health | Request::Shutdown => {
            Err("internal: cheap request on the worker pool".to_string())
        }
    }
}

/// What one bounded frame read produced.
enum Frame {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The peer closed the connection (or the read failed).
    Eof,
    /// The line exceeded the frame cap, or was not UTF-8: answer a clean
    /// `error` frame and close — mid-line, the framing cannot be trusted
    /// any further.
    Fatal(String),
}

/// Reads one newline-terminated frame, never buffering more than
/// `max_bytes` of it.
fn read_frame(reader: &mut BufReader<TcpStream>, max_bytes: usize) -> Frame {
    let mut buf = Vec::new();
    let mut limited = (&mut *reader).take(max_bytes as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Err(_) | Ok(0) => return Frame::Eof,
        Ok(_) => {}
    }
    // The newline is framing, not payload: drop it before checking the
    // cap, so a line of exactly `max_bytes` is accepted.
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.len() > max_bytes {
        // Discard the rest of the line (bounded, never buffered) before
        // answering: closing with unread bytes in the socket would RST
        // the connection and destroy the error frame we promise. A peer
        // that streams more than the drain cap without a newline gets
        // cut off regardless.
        let mut scratch = [0u8; 8192];
        let mut drained = 0u64;
        while drained <= 16 * max_bytes as u64 {
            match reader.read(&mut scratch) {
                Err(_) | Ok(0) => break,
                Ok(n) => {
                    drained += n as u64;
                    if scratch[..n].contains(&b'\n') {
                        break;
                    }
                }
            }
        }
        return Frame::Fatal(format!(
            "request frame exceeds the {max_bytes}-byte limit; closing the connection"
        ));
    }
    match String::from_utf8(buf) {
        Ok(line) => Frame::Line(line),
        Err(_) => Frame::Fatal("request frame is not valid UTF-8".to_string()),
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Frame::Eof => return,
            Frame::Fatal(error) => {
                let response = Response::Error { op: "invalid".to_string(), error };
                let _ = writeln!(writer, "{}", response.encode()).and_then(|()| writer.flush());
                return;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = shared.respond(&line);
        if writeln!(writer, "{}", response.encode()).and_then(|()| writer.flush()).is_err() {
            return;
        }
        if stop {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Starts the daemon on `addr` (use port `0` for an ephemeral port; the
/// bound address is available via [`ServerHandle::addr`]).
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind.
///
/// ```
/// use dbt_serve::{serve, Client, LabBackend, Request, Response, ServerConfig};
/// use std::sync::Arc;
///
/// struct Echo;
/// impl LabBackend for Echo {
///     fn run_scenario(&self, scenario: &str) -> Result<String, String> {
///         Ok(format!("ran {scenario}\n"))
///     }
///     fn sweep(&self, name: &str, _threads: usize) -> Result<String, String> {
///         Ok(format!("swept {name}\n"))
///     }
///     fn analyze(&self, program: &str) -> Result<String, String> {
///         Err(format!("unknown program `{program}`"))
///     }
///     fn stats_json(&self) -> String {
///         "{}".to_string()
///     }
/// }
///
/// let handle = serve("127.0.0.1:0", Arc::new(Echo), ServerConfig::default()).unwrap();
/// let mut client = Client::connect(handle.addr()).unwrap();
/// let reply = client.request(&Request::Run { scenario: "x".to_string() }).unwrap();
/// assert_eq!(reply, Response::Ok { op: "run".to_string(), body: "ran x\n".to_string() });
/// client.request(&Request::Shutdown).unwrap();
/// handle.wait();
/// ```
pub fn serve<A: ToSocketAddrs>(
    addr: A,
    backend: Arc<dyn LabBackend>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    // The pool never runs empty: clamp here so both the spawn loop and the
    // `health` response describe the same daemon.
    let config = ServerConfig { workers: config.workers.max(1), ..config };
    let shared = Arc::new(Shared {
        backend,
        queue: BoundedQueue::new(config.queue_depth),
        config,
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        busy_rejections: AtomicU64::new(0),
    });

    let workers = (0..config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(job) = shared.queue.pop() {
                    let result = execute(&*shared.backend, &job.request);
                    // A handler that gave up (client disconnected) is fine.
                    let _ = job.reply.send(result);
                    shared.completed.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            // Check the flag on *every* iteration — including accept
            // errors — so a failed or aborted wake-up connection (fd
            // exhaustion, ECONNABORTED on the immediately-dropped socket)
            // cannot leave the acceptor blocked forever, and persistent
            // accept errors cannot busy-spin past a shutdown.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    // Back off instead of spinning on persistent errors
                    // (e.g. EMFILE while handlers hold every fd).
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        })
    };

    Ok(ServerHandle { shared, acceptor, workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::sync::Mutex;

    /// A backend whose `run_scenario` blocks until the test releases it,
    /// so queue occupancy is fully under test control.
    struct BlockingBackend {
        started: mpsc::Sender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    impl LabBackend for BlockingBackend {
        fn run_scenario(&self, scenario: &str) -> Result<String, String> {
            self.started.send(()).expect("test alive");
            self.release.lock().expect("lock").recv().expect("release signal");
            Ok(format!("done {scenario}"))
        }
        fn sweep(&self, name: &str, threads: usize) -> Result<String, String> {
            Ok(format!("sweep {name} on {threads}"))
        }
        fn analyze(&self, program: &str) -> Result<String, String> {
            Ok(format!("analyze {program}"))
        }
        fn stats_json(&self) -> String {
            "{\"mock\": true}".to_string()
        }
    }

    fn run_request(name: &str) -> Request {
        Request::Run { scenario: name.to_string() }
    }

    #[test]
    fn full_queue_answers_busy_not_hang() {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = handle.addr();

        // Job A occupies the single worker (we *know* it was popped once
        // the backend signals `started`).
        let a = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&run_request("a")).unwrap()
        });
        started_rx.recv().expect("job a must reach the backend");

        // Job B fills the single queue slot; wait until it is visibly
        // queued before provoking the rejection.
        let b = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&run_request("b")).unwrap()
        });
        while handle.queue_len() < 1 {
            std::thread::yield_now();
        }

        // Job C must bounce immediately: the queue is full.
        let mut client = Client::connect(addr).unwrap();
        let c = client.request(&run_request("c")).unwrap();
        assert_eq!(c, Response::Busy { op: "run".to_string() });

        // Cheap requests are not subject to backpressure.
        let health = client.request(&Request::Health).unwrap();
        let Response::Ok { body, .. } = health else { panic!("health must answer ok") };
        assert!(body.contains("\"queued\": 1"), "{body}");

        // Release A and B; both complete normally.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert_eq!(
            a.join().unwrap(),
            Response::Ok { op: "run".to_string(), body: "done a".to_string() }
        );
        assert_eq!(
            b.join().unwrap(),
            Response::Ok { op: "run".to_string(), body: "done b".to_string() }
        );

        let stats = client.request(&Request::Stats).unwrap();
        let Response::Ok { body, .. } = stats else { panic!("stats must answer ok") };
        assert!(body.contains("\"busy_rejections\": 1"), "{body}");
        assert!(body.contains("\"mock\": true"), "backend stats embedded: {body}");

        client.request(&Request::Shutdown).unwrap();
        handle.wait();
    }

    #[test]
    fn zero_depth_queue_bounces_every_heavy_request() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { workers: 1, queue_depth: 0, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            let reply = client.request(&run_request("x")).unwrap();
            assert_eq!(reply, Response::Busy { op: "run".to_string() });
        }
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn invalid_lines_answer_an_error_frame() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve("127.0.0.1:0", Arc::new(backend), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.raw_request("this is not json").unwrap();
        assert!(matches!(&reply, Response::Error { op, .. } if op == "invalid"), "{reply:?}");
        // The connection survives a bad frame.
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn oversized_frames_answer_a_clean_error_and_close() {
        let (started_tx, _started_rx) = mpsc::channel();
        let (_release_tx, release_rx) = mpsc::channel();
        let backend = BlockingBackend { started: started_tx, release: Mutex::new(release_rx) };
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(backend),
            ServerConfig { max_frame_bytes: 64, ..ServerConfig::default() },
        )
        .unwrap();

        // A frame under the cap still answers normally.
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));

        // A line of *exactly* the cap is within the limit (the newline is
        // framing, not payload): it fails as bad JSON, not as oversized,
        // and the connection survives.
        let exact = "x".repeat(64);
        let reply = client.raw_request(&exact).unwrap();
        let Response::Error { error, .. } = reply else { panic!("expected an error frame") };
        assert!(!error.contains("limit"), "{error}");
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));

        // A frame over the cap gets one clean error frame, not a hang and
        // not unbounded buffering...
        let huge = format!("{{\"op\": \"analyze\", \"program\": \"{}\"}}", "x".repeat(256));
        let reply = client.raw_request(&huge).unwrap();
        let Response::Error { op, error } = reply else { panic!("expected an error frame") };
        assert_eq!(op, "invalid");
        assert!(error.contains("64-byte limit"), "{error}");

        // ...and the connection is closed afterwards (mid-line, framing
        // cannot be trusted).
        assert!(client.request(&Request::Health).is_err(), "connection must be closed");

        // Fresh connections keep working.
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.request(&Request::Health).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));

        handle.shutdown();
        handle.wait();
    }
}
