//! A bounded MPMC job queue with explicit backpressure.
//!
//! The daemon's admission control: producers (connection handlers) use the
//! non-blocking [`BoundedQueue::try_push`] and translate [`PushError::Full`]
//! into a `busy` response instead of queueing unboundedly or blocking the
//! client; consumers (the worker pool) block on [`BoundedQueue::pop`].
//! After [`BoundedQueue::close`], pushes fail with [`PushError::Closed`]
//! and poppers drain the remaining items before receiving `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure, try again later.
    Full,
    /// The queue was closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO queue.
///
/// A capacity of `0` is legal and makes every push report [`PushError::Full`]
/// — a server configured that way answers `busy` to every job, which the
/// tests use to pin down the backpressure path deterministically.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued (racy by nature; for observability).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// `true` if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`BoundedQueue::close`],
    /// [`PushError::Full`] when at capacity (the item is dropped in both
    /// cases — the caller still owns whatever reply channel it created).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: wakes all blocked poppers, fails all later pushes.
    /// Items already queued are still handed out.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rejects_pushes_beyond_capacity() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        assert_eq!(queue.try_push(3), Err(PushError::Full));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()), "popping frees a slot");
    }

    #[test]
    fn zero_capacity_is_always_full() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.try_push(1), Err(PushError::Full));
        assert!(queue.is_empty());
        assert_eq!(queue.capacity(), 0);
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = BoundedQueue::new(4);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        assert_eq!(queue.try_push(3), Err(PushError::Closed));
        assert_eq!(queue.pop(), Some(1), "queued items survive the close");
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let queue = BoundedQueue::<u32>::new(1);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| queue.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            queue.close();
            assert_eq!(popper.join().unwrap(), None);
        });
    }

    #[test]
    fn every_item_is_consumed_exactly_once_under_contention() {
        let queue = BoundedQueue::new(64);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while queue.pop().is_some() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..64 {
                queue.try_push(i).unwrap();
            }
            queue.close();
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 64);
    }
}
