//! A blocking client for the daemon's NDJSON protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are answered in
//! order, so a client can be reused for any number of frames (`lab
//! submit` sends one, the load generator thousands).

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one request frame and waits for its response frame.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection drops or the response does not
    /// parse. Protocol-level failures are *not* errors: they come back as
    /// [`Response::Busy`] / [`Response::Error`] values.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.raw_request(&request.encode())
    }

    /// Sends one already-encoded line and waits for the response frame
    /// (used by tests to exercise the daemon's handling of bad frames).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn raw_request(&mut self, line: &str) -> Result<Response, String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        let read =
            self.reader.read_line(&mut reply).map_err(|e| format!("cannot read response: {e}"))?;
        if read == 0 {
            return Err("connection closed before a response arrived".to_string());
        }
        Response::decode(reply.trim_end_matches('\n'))
    }
}
