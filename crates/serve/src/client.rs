//! A blocking client for the daemon's NDJSON protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are answered in
//! order, so a client can be reused for any number of frames (`lab
//! submit` sends one, the load generator thousands).
//!
//! [`Client::connect`] keeps the original fire-once semantics; callers
//! that face daemons which may still be binding (CI scripts, the router's
//! health prober) use [`Client::connect_with`] — bounded connect retries
//! with exponential backoff plus an optional read timeout, so a dead
//! daemon surfaces as a clean error instead of a forever-hanging
//! `read_line`.

use crate::protocol::{FrameMeta, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection policy for [`Client::connect_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectOptions {
    /// Total connect attempts (at least 1).
    pub attempts: u32,
    /// Sleep before the second attempt; doubles per further attempt.
    pub initial_backoff: Duration,
    /// Per-response read timeout once connected (`None` = block forever,
    /// the v2 behaviour). A timed-out read surfaces as a request error.
    pub read_timeout: Option<Duration>,
}

impl Default for ConnectOptions {
    /// One attempt, no timeout — exactly [`Client::connect`].
    fn default() -> ConnectOptions {
        ConnectOptions {
            attempts: 1,
            initial_backoff: Duration::from_millis(50),
            read_timeout: None,
        }
    }
}

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with(addr, ConnectOptions::default())
    }

    /// Connects to a daemon at `addr` under `opts`: up to `opts.attempts`
    /// connect attempts with exponential backoff between them, and
    /// `opts.read_timeout` applied to every response read on the
    /// resulting connection.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error of the *last* attempt if every attempt
    /// fails.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        opts: ConnectOptions,
    ) -> std::io::Result<Client> {
        let attempts = opts.attempts.max(1);
        let mut backoff = opts.initial_backoff;
        let mut last_error = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_read_timeout(opts.read_timeout)?;
                    let writer = stream.try_clone()?;
                    return Ok(Client { reader: BufReader::new(stream), writer });
                }
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error.expect("at least one attempt ran"))
    }

    /// Changes the per-response read timeout of this connection (`None` =
    /// block forever).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request frame and waits for its response frame.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection drops or the response does not
    /// parse. Protocol-level failures are *not* errors: they come back as
    /// [`Response::Busy`] / [`Response::Error`] values.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.raw_request(&request.encode())
    }

    /// [`Client::request`] with request tracing: sends `trace_id` on the
    /// frame when given (the server generates a deterministic one
    /// otherwise) and returns the trace id the server echoed alongside
    /// the response.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn request_traced(
        &mut self,
        request: &Request,
        trace_id: Option<&str>,
    ) -> Result<(Response, Option<String>), String> {
        let line = match trace_id {
            Some(trace_id) => request.encode_with_trace(trace_id),
            None => request.encode(),
        };
        self.raw_request_traced(&line)
    }

    /// [`Client::request`] with the full v3 envelope: the frame carries
    /// the set members of `meta` (`trace_id` and/or `auth`), and the
    /// echoed trace id rides back alongside the response.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn request_meta(
        &mut self,
        request: &Request,
        meta: &FrameMeta,
    ) -> Result<(Response, Option<String>), String> {
        self.raw_request_traced(&request.encode_with_meta(meta))
    }

    /// Sends one already-encoded line and waits for the response frame
    /// (used by tests to exercise the daemon's handling of bad frames).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn raw_request(&mut self, line: &str) -> Result<Response, String> {
        self.raw_request_traced(line).map(|(response, _)| response)
    }

    /// [`Client::raw_request`], keeping the echoed `trace_id`.
    fn raw_request_traced(&mut self, line: &str) -> Result<(Response, Option<String>), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        let read =
            self.reader.read_line(&mut reply).map_err(|e| format!("cannot read response: {e}"))?;
        if read == 0 {
            return Err("connection closed before a response arrived".to_string());
        }
        Response::decode_frame(reply.trim_end_matches('\n'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn connect_retries_until_the_daemon_binds() {
        // Reserve a port, release it, and only bind it again after the
        // first connect attempt has already failed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let listener = TcpListener::bind(addr).unwrap();
            let _conn = listener.accept().unwrap();
        });
        let opts = ConnectOptions {
            attempts: 20,
            initial_backoff: Duration::from_millis(10),
            read_timeout: None,
        };
        assert!(Client::connect_with(addr, opts).is_ok(), "retries must find the late daemon");
        binder.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_the_last_error_after_backing_off() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let opts = ConnectOptions {
            attempts: 3,
            initial_backoff: Duration::from_millis(5),
            read_timeout: None,
        };
        let started = Instant::now();
        assert!(Client::connect_with(addr, opts).is_err());
        // Two sleeps happened: 5ms + 10ms (exponential), so at least ~15ms.
        assert!(started.elapsed() >= Duration::from_millis(15), "{:?}", started.elapsed());
    }

    #[test]
    fn read_timeout_turns_a_silent_server_into_a_clean_error() {
        // A listener that accepts but never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (_conn, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let opts = ConnectOptions {
            read_timeout: Some(Duration::from_millis(50)),
            ..ConnectOptions::default()
        };
        let mut client = Client::connect_with(addr, opts).unwrap();
        let error = client.request(&Request::Health).unwrap_err();
        assert!(error.contains("cannot read response"), "{error}");
        server.join().unwrap();
    }
}
