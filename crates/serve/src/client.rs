//! A blocking client for the daemon's NDJSON protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are answered in
//! order, so a client can be reused for any number of frames (`lab
//! submit` sends one, the load generator thousands).

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one request frame and waits for its response frame.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection drops or the response does not
    /// parse. Protocol-level failures are *not* errors: they come back as
    /// [`Response::Busy`] / [`Response::Error`] values.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.raw_request(&request.encode())
    }

    /// [`Client::request`] with request tracing: sends `trace_id` on the
    /// frame when given (the server generates a deterministic one
    /// otherwise) and returns the trace id the server echoed alongside
    /// the response.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn request_traced(
        &mut self,
        request: &Request,
        trace_id: Option<&str>,
    ) -> Result<(Response, Option<String>), String> {
        let line = match trace_id {
            Some(trace_id) => request.encode_with_trace(trace_id),
            None => request.encode(),
        };
        self.raw_request_traced(&line)
    }

    /// Sends one already-encoded line and waits for the response frame
    /// (used by tests to exercise the daemon's handling of bad frames).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn raw_request(&mut self, line: &str) -> Result<Response, String> {
        self.raw_request_traced(line).map(|(response, _)| response)
    }

    /// [`Client::raw_request`], keeping the echoed `trace_id`.
    fn raw_request_traced(&mut self, line: &str) -> Result<(Response, Option<String>), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        let read =
            self.reader.read_line(&mut reply).map_err(|e| format!("cannot read response: {e}"))?;
        if read == 0 {
            return Err("connection closed before a response arrived".to_string());
        }
        Response::decode_frame(reply.trim_end_matches('\n'))
    }
}
