//! The wire protocol's JSON reader — a re-export of the workspace-shared
//! [`dbt_json`] crate.
//!
//! The parser historically lived here; it moved into its own bottom-level
//! crate when the `dbt-riscv` program-image codec also needed to *read*
//! JSON (uploaded guest programs arrive as image documents the repo did
//! not emit). This module keeps every `dbt_serve::json::…` path working,
//! and the daemon's byte-identity contract still hangs on the whole
//! workspace sharing one set of escaping rules.

pub use dbt_json::{escape, JsonValue};
