//! Wall-clock bench over a representative subset of the Figure 4 workloads:
//! time to *simulate* each kernel under each mitigation policy. The
//! interesting output is the relative ordering (our approach ≈ unsafe,
//! no-speculation slower in simulated cycles); the simulated cycle counts
//! themselves are printed by `cargo run -p dbt-bench --bin figure4`.
//!
//! Criterion is not available in the build environment, so this is a plain
//! `harness = false` bench around [`dbt_bench::median_micros`].

use dbt_bench::median_micros;
use dbt_platform::{run_program, PlatformConfig};
use dbt_workloads::{suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

fn main() {
    println!("{:<12} {:<15} {:>14} {:>16}", "kernel", "policy", "median (us)", "guest cycles");
    let workloads = suite(WorkloadSize::Mini);
    for workload in workloads.iter().filter(|w| matches!(w.name, "gemm" | "atax" | "jacobi-1d")) {
        for policy in [
            MitigationPolicy::Unprotected,
            MitigationPolicy::FineGrained,
            MitigationPolicy::NoSpeculation,
        ] {
            let (us, cycles) = median_micros(|| {
                run_program(&workload.program, PlatformConfig::for_policy(policy))
                    .expect("workload runs")
                    .cycles
            });
            println!("{:<12} {:<15} {:>14} {:>16}", workload.name, policy.label(), us, cycles);
        }
    }
}
