//! Criterion bench over a representative subset of the Figure 4 workloads:
//! wall-clock time of simulating each kernel under each mitigation policy.
//! The interesting output is the relative ordering (our approach ≈ unsafe,
//! no-speculation slower in simulated cycles); the simulated cycle counts
//! themselves are printed by `cargo run -p dbt-bench --bin figure4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbt_platform::{run_program, PlatformConfig};
use dbt_workloads::{suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    let workloads = suite(WorkloadSize::Mini);
    for workload in workloads.iter().filter(|w| matches!(w.name, "gemm" | "atax" | "jacobi-1d")) {
        for policy in [MitigationPolicy::Unprotected, MitigationPolicy::FineGrained, MitigationPolicy::NoSpeculation] {
            group.bench_with_input(
                BenchmarkId::new(workload.name, policy.label()),
                &policy,
                |b, policy| {
                    b.iter(|| {
                        run_program(&workload.program, PlatformConfig::for_policy(*policy))
                            .expect("workload runs")
                            .cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
