//! Wall-clock bench over a representative subset of the Figure 4 workloads:
//! time to *simulate* each kernel under each mitigation policy. The
//! interesting output is the relative ordering (our approach ≈ unsafe,
//! no-speculation slower in simulated cycles); the simulated cycle counts
//! themselves are printed by `cargo run -p dbt-bench --bin figure4`.
//!
//! Criterion is not available in the build environment, so this is a plain
//! `harness = false` bench around [`dbt_bench::median_micros`].

use dbt_bench::median_micros;
use dbt_platform::{Session, TranslationService};
use dbt_workloads::{suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

fn main() {
    println!("{:<12} {:<15} {:>14} {:>16}", "kernel", "policy", "median (us)", "guest cycles");
    // One shared service across all samples: after the first iteration the
    // simulation no longer pays for translation, which is exactly the
    // cross-run reuse a real DBT-based processor gets from its tcache.
    let service = TranslationService::new();
    let workloads = suite(WorkloadSize::Mini);
    for workload in workloads.iter().filter(|w| matches!(w.name, "gemm" | "atax" | "jacobi-1d")) {
        for policy in [
            MitigationPolicy::Unprotected,
            MitigationPolicy::FineGrained,
            MitigationPolicy::NoSpeculation,
        ] {
            let (us, cycles) = median_micros(|| {
                Session::builder()
                    .program(&workload.program)
                    .policy(policy)
                    .service(&service)
                    .run()
                    .expect("workload runs")
                    .cycles
            });
            println!("{:<12} {:<15} {:>14} {:>16}", workload.name, policy.label(), us, cycles);
        }
    }
    let stats = service.stats();
    println!(
        "\ntranslation service: {} hits / {} misses ({:.1}% reuse)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
