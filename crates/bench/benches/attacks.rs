//! Wall-clock bench of the two Spectre proof-of-concepts (one secret byte)
//! under the unsafe and fine-grained configurations.
//!
//! Criterion is not available in the build environment, so this is a plain
//! `harness = false` bench around [`dbt_bench::median_micros`].

use dbt_attacks::{run_spectre_v1, run_spectre_v4};
use dbt_bench::median_micros;
use ghostbusters::MitigationPolicy;

fn main() {
    println!("{:<12} {:<15} {:>14} {:>16}", "attack", "policy", "median (us)", "guest cycles");
    for policy in [MitigationPolicy::Unprotected, MitigationPolicy::FineGrained] {
        let (us, cycles) = median_micros(|| run_spectre_v1(policy, b"G").expect("v1 runs").cycles);
        println!("{:<12} {:<15} {:>14} {:>16}", "spectre-v1", policy.label(), us, cycles);
        let (us, cycles) = median_micros(|| run_spectre_v4(policy, b"G").expect("v4 runs").cycles);
        println!("{:<12} {:<15} {:>14} {:>16}", "spectre-v4", policy.label(), us, cycles);
    }
}
