//! Criterion bench of the two Spectre proof-of-concepts (one secret byte)
//! under the unsafe and fine-grained configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbt_attacks::{run_spectre_v1, run_spectre_v4};
use ghostbusters::MitigationPolicy;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks");
    group.sample_size(10);
    for policy in [MitigationPolicy::Unprotected, MitigationPolicy::FineGrained] {
        group.bench_with_input(BenchmarkId::new("spectre-v1", policy.label()), &policy, |b, p| {
            b.iter(|| run_spectre_v1(*p, b"G").expect("v1 runs").cycles)
        });
        group.bench_with_input(BenchmarkId::new("spectre-v4", policy.label()), &policy, |b, p| {
            b.iter(|| run_spectre_v4(*p, b"G").expect("v4 runs").cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
