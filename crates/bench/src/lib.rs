//! Paper-artifact binaries for the evaluation, as thin declarations over
//! the [`dbt_lab`] sweep engine.
//!
//! The four binaries in `src/bin/` regenerate the paper's evaluation:
//!
//! * `attack_table` — Section V-A: both Spectre variants under every
//!   mitigation policy (recovery rate, rollbacks, patterns detected);
//! * `figure4` — Figure 4: per-kernel slowdown of "our approach" and
//!   "no speculation" relative to the unsafe baseline (plus the fence
//!   variant discussed in the text);
//! * `ptr_matmul_table` — the pointer-array matrix multiplication
//!   experiment (fine-grained vs fence when the Spectre pattern is common);
//! * `ablation` — design-choice check: how much each speculation mechanism
//!   contributes on its own.
//!
//! Each binary looks its sweep up in [`dbt_lab::Registry::standard`] and
//! runs it through the parallel executor; measurement and formatting live
//! in `dbt-lab`. The historic helpers ([`measure_slowdowns`],
//! [`format_table`], [`SlowdownRow`]) are re-exported from there for
//! backwards compatibility.

pub use dbt_lab::{format_table, measure_slowdowns, SlowdownRow};

use dbt_lab::{ExecOptions, Registry};
use dbt_workloads::WorkloadSize;

/// Problem size selected by the shared `--mini` flag of the bench binaries.
pub fn size_from_args() -> WorkloadSize {
    if std::env::args().any(|a| a == "--mini") {
        WorkloadSize::Mini
    } else {
        WorkloadSize::Small
    }
}

/// The registry at the size selected on the command line.
pub fn registry_from_args() -> Registry {
    Registry::standard(size_from_args())
}

/// Executor options for the bench binaries: auto thread count, per-job
/// progress on stderr (like the historic `measuring <kernel> ...` lines).
pub fn exec_options() -> ExecOptions {
    ExecOptions { threads: 0, verbose: true }
}

/// Shared timing helper for the `harness = false` benches (criterion is not
/// available in the build environment): a couple of warm-up iterations, then
/// the median wall-clock time of a small sample. Returns
/// `(median microseconds, last simulated cycle count)`.
pub fn median_micros(mut f: impl FnMut() -> u64) -> (u128, u64) {
    const WARMUP: usize = 2;
    const SAMPLES: usize = 10;
    let mut cycles = 0;
    for _ in 0..WARMUP {
        cycles = f();
    }
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = std::time::Instant::now();
            cycles = f();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    (times[SAMPLES / 2], cycles)
}
