//! Shared helpers for the evaluation harness.
//!
//! The four binaries in `src/bin/` regenerate the paper's evaluation:
//!
//! * `attack_table` — Section V-A: both Spectre variants under every
//!   mitigation policy (recovery rate, rollbacks, patterns detected);
//! * `figure4` — Figure 4: per-kernel slowdown of "our approach" and
//!   "no speculation" relative to the unsafe baseline (plus the fence
//!   variant discussed in the text);
//! * `ptr_matmul_table` — the pointer-array matrix multiplication
//!   experiment (fine-grained vs fence when the Spectre pattern is common);
//! * `ablation` — design-choice check: how much each speculation mechanism
//!   contributes on its own.

use dbt_platform::{run_program, PlatformConfig, PlatformError};
use dbt_riscv::Program;
use ghostbusters::MitigationPolicy;

/// One row of a slowdown table.
#[derive(Debug, Clone)]
pub struct SlowdownRow {
    /// Workload name.
    pub name: String,
    /// Cycles of the unprotected baseline.
    pub baseline_cycles: u64,
    /// Slowdown (relative execution time, 1.0 = baseline) per policy, in the
    /// order of [`MitigationPolicy::ALL`].
    pub slowdown: [f64; 4],
}

/// Measures one workload under every mitigation policy.
///
/// # Errors
///
/// Propagates platform errors (translation faults, budget exhaustion).
pub fn measure_slowdowns(name: &str, program: &Program) -> Result<SlowdownRow, PlatformError> {
    let mut cycles = [0u64; 4];
    for (i, policy) in MitigationPolicy::ALL.iter().enumerate() {
        cycles[i] = run_program(program, PlatformConfig::for_policy(*policy))?.cycles;
    }
    let baseline = cycles[0].max(1);
    let mut slowdown = [0.0; 4];
    for i in 0..4 {
        slowdown[i] = cycles[i] as f64 / baseline as f64;
    }
    Ok(SlowdownRow { name: name.to_string(), baseline_cycles: cycles[0], slowdown })
}

/// Formats a slowdown table in the layout of the paper's Figure 4.
pub fn format_table(rows: &[SlowdownRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>14} {:>10} {:>16}",
        "kernel", "unsafe (cyc)", "our approach", "fence", "no speculation"
    );
    let mut sums = [0.0f64; 4];
    for row in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>13.1}% {:>9.1}% {:>15.1}%",
            row.name,
            row.baseline_cycles,
            row.slowdown[1] * 100.0,
            row.slowdown[2] * 100.0,
            row.slowdown[3] * 100.0,
        );
        for i in 0..4 {
            sums[i] += row.slowdown[i];
        }
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>13.1}% {:>9.1}% {:>15.1}%",
        "geo-mean*", "",
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0,
    );
    let _ = writeln!(out, "(* arithmetic mean of relative execution times, as in the paper's text)");
    out
}
