//! Regenerates the paper's Figure 4: slowdown of the countermeasures
//! relative to unsafe execution, per Polybench-style kernel plus the two
//! Spectre proof-of-concept applications.
//!
//! This is a thin view over the `figure4` sweep declared in
//! [`dbt_lab::Registry::standard`], run on the parallel executor.

use dbt_bench::{exec_options, registry_from_args};
use dbt_lab::{format_table, run_sweep};

fn main() {
    let registry = registry_from_args();
    let sweep = registry.find("figure4").expect("figure4 sweep is registered");
    let report = run_sweep(&sweep.name, &sweep.expand(), exec_options());
    for (name, error) in report.failures() {
        eprintln!("skipped {name} ({error})");
    }
    println!("Figure 4 — slowdown vs. unsafe execution (100% = no slowdown)\n");
    println!("{}", format_table(&report.slowdown_table()));
}
