//! Regenerates the paper's Figure 4: slowdown of the countermeasures
//! relative to unsafe execution, per Polybench-style kernel plus the two
//! Spectre proof-of-concept applications.

use dbt_bench::{format_table, measure_slowdowns, SlowdownRow};
use dbt_workloads::{suite, WorkloadSize};

fn main() {
    let size = if std::env::args().any(|a| a == "--mini") {
        WorkloadSize::Mini
    } else {
        WorkloadSize::Small
    };
    let mut rows: Vec<SlowdownRow> = Vec::new();
    for workload in suite(size) {
        eprintln!("measuring {} ...", workload.name);
        match measure_slowdowns(workload.name, &workload.program) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("  skipped ({e})"),
        }
    }
    // The paper also reports the two attack applications in Figure 4.
    let secret = b"GhostBusters";
    for (name, program) in [
        ("spectre-v1", dbt_attacks::spectre_v1::build(secret).expect("v1 assembles")),
        ("spectre-v4", dbt_attacks::spectre_v4::build(secret).expect("v4 assembles")),
    ] {
        eprintln!("measuring {name} ...");
        match measure_slowdowns(name, &program) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("  skipped ({e})"),
        }
    }
    println!("Figure 4 — slowdown vs. unsafe execution (100% = no slowdown)\n");
    println!("{}", format_table(&rows));
}
