//! Regenerates the Section V-A result: both Spectre variants under every
//! mitigation policy, with the secret-recovery rate.
//!
//! This is a thin view over the `attack-table` sweep declared in
//! [`dbt_lab::Registry::standard`], run on the parallel executor.

use dbt_bench::{exec_options, registry_from_args};
use dbt_lab::{format_attack_table, run_sweep, DEFAULT_SECRET};

fn main() {
    let registry = registry_from_args();
    let sweep = registry.find("attack-table").expect("attack-table sweep is registered");
    let report = run_sweep(&sweep.name, &sweep.expand(), exec_options());
    println!(
        "Attack results (secret = {:?}, {} bytes)\n",
        String::from_utf8_lossy(DEFAULT_SECRET),
        DEFAULT_SECRET.len()
    );
    println!("{}", format_attack_table(&report));
}
