//! Regenerates the Section V-A result: both Spectre variants under every
//! mitigation policy, with the secret-recovery rate.

use dbt_attacks::{run_spectre_v1, run_spectre_v4};
use ghostbusters::MitigationPolicy;

fn main() {
    let secret: &[u8] = b"GhostBusters";
    println!("Attack results (secret = {:?}, {} bytes)\n", String::from_utf8_lossy(secret), secret.len());
    println!(
        "{:<12} {:<15} {:>10} {:>12} {:>11} {:>10}",
        "attack", "policy", "recovered", "rate", "rollbacks", "patterns"
    );
    for policy in MitigationPolicy::ALL {
        let outcome = run_spectre_v1(policy, secret).expect("v1 run");
        println!(
            "{:<12} {:<15} {:>7}/{:<3} {:>11.0}% {:>11} {:>10}",
            outcome.attack,
            outcome.policy.label(),
            outcome.correct_bytes(),
            outcome.secret.len(),
            outcome.recovery_rate() * 100.0,
            outcome.rollbacks,
            outcome.patterns_detected
        );
    }
    for policy in MitigationPolicy::ALL {
        let outcome = run_spectre_v4(policy, secret).expect("v4 run");
        println!(
            "{:<12} {:<15} {:>7}/{:<3} {:>11.0}% {:>11} {:>10}",
            outcome.attack,
            outcome.policy.label(),
            outcome.correct_bytes(),
            outcome.secret.len(),
            outcome.recovery_rate() * 100.0,
            outcome.rollbacks,
            outcome.patterns_detected
        );
    }
}
