//! Regenerates the paper's pointer-array matrix multiplication experiment:
//! when the Spectre pattern is frequent (double indirections in the hot
//! loop), the fine-grained countermeasure stays cheap while the fence-based
//! one pays a visible penalty.
//!
//! This is a thin view over the `ptr-matmul` sweep declared in
//! [`dbt_lab::Registry::standard`], run on the parallel executor.

use dbt_bench::{exec_options, registry_from_args};
use dbt_lab::{format_table, run_sweep};

fn main() {
    let registry = registry_from_args();
    let sweep = registry.find("ptr-matmul").expect("ptr-matmul sweep is registered");
    let report = run_sweep(&sweep.name, &sweep.expand(), exec_options());
    for (name, error) in report.failures() {
        eprintln!("skipped {name} ({error})");
    }
    println!("Pointer-array matrix multiplication — slowdown vs. unsafe execution\n");
    println!("{}", format_table(&report.slowdown_table()));
}
