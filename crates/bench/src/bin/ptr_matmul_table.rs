//! Regenerates the paper's pointer-array matrix multiplication experiment:
//! when the Spectre pattern is frequent (double indirections in the hot
//! loop), the fine-grained countermeasure stays cheap while the fence-based
//! one pays a visible penalty.

use dbt_bench::{format_table, measure_slowdowns};
use dbt_workloads::{pointer_matmul, suite, WorkloadSize};

fn main() {
    let size = if std::env::args().any(|a| a == "--mini") {
        WorkloadSize::Mini
    } else {
        WorkloadSize::Small
    };
    let mut rows = Vec::new();
    // Plain gemm as the reference shape, then the pointer-array variant.
    if let Some(gemm) = suite(size).into_iter().find(|w| w.name == "gemm") {
        rows.push(measure_slowdowns("gemm (flat)", &gemm.program).expect("gemm measurement"));
    }
    let ptr = pointer_matmul(size);
    rows.push(measure_slowdowns("gemm (ptr rows)", &ptr.program).expect("ptr-matmul measurement"));
    println!("Pointer-array matrix multiplication — slowdown vs. unsafe execution\n");
    println!("{}", format_table(&rows));
}
