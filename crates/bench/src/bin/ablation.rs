//! Ablation: how much each speculation mechanism contributes.
//!
//! This regenerates the motivation behind the paper's "No speculation"
//! comparison point by disabling branch speculation and memory speculation
//! independently — a platform-axis sweep (`ablation`) declared in
//! [`dbt_lab::Registry::standard`]: every kernel runs unprotected on four
//! platform variants (both mechanisms, branch off, memory off, both off),
//! and cycles are reported relative to the both-enabled variant.

use dbt_bench::{exec_options, registry_from_args};
use dbt_lab::{format_variant_table, run_sweep};

fn main() {
    let registry = registry_from_args();
    let sweep = registry.find("ablation").expect("ablation sweep is registered");
    let report = run_sweep(&sweep.name, &sweep.expand(), exec_options());
    for (name, error) in report.failures() {
        eprintln!("skipped {name} ({error})");
    }
    println!("Speculation ablation — cycles relative to both mechanisms enabled\n");
    println!("{}", format_variant_table(&report));
}
