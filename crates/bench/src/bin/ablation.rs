//! Ablation: how much each speculation mechanism contributes.
//!
//! This regenerates the motivation behind the paper's "No speculation"
//! comparison point by disabling branch speculation and memory speculation
//! independently.

use dbt_ir_options::run_all;

mod dbt_ir_options {
    use dbt_platform::{run_program, PlatformConfig};
    use dbt_workloads::{suite, WorkloadSize};
    use ghostbusters::MitigationPolicy;

    pub fn run_all(size: WorkloadSize) {
        println!(
            "{:<12} {:>14} {:>18} {:>18} {:>16}",
            "kernel", "both (cyc)", "no branch spec", "no memory spec", "no speculation"
        );
        for workload in suite(size) {
            let mut configs = Vec::new();
            for (branch, memory) in [(true, true), (false, true), (true, false), (false, false)] {
                let mut config = PlatformConfig::for_policy(MitigationPolicy::Unprotected);
                config.dbt.speculation.branch_speculation = branch;
                config.dbt.speculation.memory_speculation = memory;
                configs.push(run_program(&workload.program, config).map(|s| s.cycles).unwrap_or(0));
            }
            let base = configs[0].max(1) as f64;
            println!(
                "{:<12} {:>14} {:>17.1}% {:>17.1}% {:>15.1}%",
                workload.name,
                configs[0],
                configs[1] as f64 / base * 100.0,
                configs[2] as f64 / base * 100.0,
                configs[3] as f64 / base * 100.0,
            );
        }
    }
}

fn main() {
    let size = if std::env::args().any(|a| a == "--mini") {
        dbt_workloads::WorkloadSize::Mini
    } else {
        dbt_workloads::WorkloadSize::Small
    };
    run_all(size);
}
