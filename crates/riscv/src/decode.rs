//! Decoding of 32-bit instruction words back into [`Inst`] values.

use crate::encode::{
    branch_funct3, load_funct3, store_funct3, CSR_CYCLE, OPCODE_AUIPC, OPCODE_BRANCH,
    OPCODE_CUSTOM0, OPCODE_JAL, OPCODE_JALR, OPCODE_LOAD, OPCODE_LUI, OPCODE_MISC_MEM, OPCODE_OP,
    OPCODE_OP_32, OPCODE_OP_IMM, OPCODE_OP_IMM_32, OPCODE_STORE, OPCODE_SYSTEM,
};
use crate::inst::{AluImmOp, AluOp, BranchCond, Inst, LoadWidth, StoreWidth};
use crate::reg::Reg;
use std::fmt;

/// Error returned when a 32-bit word does not correspond to a supported
/// guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn reg(bits: u32) -> Reg {
    Reg::from_index((bits & 0x1f) as u8).expect("5-bit field is always a valid register")
}

fn sign_extend(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((value as u64) << shift) as i64) >> shift
}

fn i_imm(word: u32) -> i64 {
    sign_extend(word >> 20, 12)
}

fn s_imm(word: u32) -> i64 {
    let imm = ((word >> 25) << 5) | ((word >> 7) & 0x1f);
    sign_extend(imm, 12)
}

fn b_imm(word: u32) -> i64 {
    let imm = (((word >> 31) & 0x1) << 12)
        | (((word >> 7) & 0x1) << 11)
        | (((word >> 25) & 0x3f) << 5)
        | (((word >> 8) & 0xf) << 1);
    sign_extend(imm, 13)
}

fn u_imm(word: u32) -> i64 {
    sign_extend(word & 0xffff_f000, 32)
}

fn j_imm(word: u32) -> i64 {
    let imm = (((word >> 31) & 0x1) << 20)
        | (((word >> 12) & 0xff) << 12)
        | (((word >> 20) & 0x1) << 11)
        | (((word >> 21) & 0x3ff) << 1);
    sign_extend(imm, 21)
}

fn decode_load_width(funct3: u32) -> Option<LoadWidth> {
    [
        LoadWidth::Byte,
        LoadWidth::Half,
        LoadWidth::Word,
        LoadWidth::Double,
        LoadWidth::ByteU,
        LoadWidth::HalfU,
        LoadWidth::WordU,
    ]
    .into_iter()
    .find(|w| load_funct3(*w) == funct3)
}

fn decode_store_width(funct3: u32) -> Option<StoreWidth> {
    [StoreWidth::Byte, StoreWidth::Half, StoreWidth::Word, StoreWidth::Double]
        .into_iter()
        .find(|w| store_funct3(*w) == funct3)
}

fn decode_branch_cond(funct3: u32) -> Option<BranchCond> {
    [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ]
    .into_iter()
    .find(|c| branch_funct3(*c) == funct3)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not encode an instruction in the
/// supported rv64im subset (plus the platform-specific instructions).
///
/// # Example
///
/// ```
/// use dbt_riscv::{decode, Inst};
/// assert_eq!(decode(0x0000_0013).unwrap(), Inst::Nop);
/// assert!(decode(0xffff_ffff).is_err());
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7f;
    let rd = reg(word >> 7);
    let rs1 = reg(word >> 15);
    let rs2 = reg(word >> 20);
    let funct3 = (word >> 12) & 0x7;
    let funct7 = word >> 25;
    let err = Err(DecodeError { word });

    let inst = match opcode {
        OPCODE_LUI => Inst::Lui { rd, imm: u_imm(word) },
        OPCODE_AUIPC => Inst::Auipc { rd, imm: u_imm(word) },
        OPCODE_JAL => Inst::Jal { rd, offset: j_imm(word) },
        OPCODE_JALR => {
            if funct3 != 0 {
                return err;
            }
            Inst::Jalr { rd, rs1, offset: i_imm(word) }
        }
        OPCODE_BRANCH => match decode_branch_cond(funct3) {
            Some(cond) => Inst::Branch { cond, rs1, rs2, offset: b_imm(word) },
            None => return err,
        },
        OPCODE_LOAD => match decode_load_width(funct3) {
            Some(width) => Inst::Load { width, rd, rs1, offset: i_imm(word) },
            None => return err,
        },
        OPCODE_STORE => match decode_store_width(funct3) {
            Some(width) => Inst::Store { width, rs2, rs1, offset: s_imm(word) },
            None => return err,
        },
        OPCODE_OP_IMM => {
            if word == 0x0000_0013 {
                return Ok(Inst::Nop);
            }
            let op = match funct3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if (word >> 26) != 0 {
                        return err;
                    }
                    return Ok(Inst::AluImm {
                        op: AluImmOp::Slli,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3f) as i64,
                    });
                }
                0b101 => {
                    let shamt = ((word >> 20) & 0x3f) as i64;
                    let op = match word >> 26 {
                        0x00 => AluImmOp::Srli,
                        0x10 => AluImmOp::Srai,
                        _ => return err,
                    };
                    return Ok(Inst::AluImm { op, rd, rs1, imm: shamt });
                }
                _ => return err,
            };
            Inst::AluImm { op, rd, rs1, imm: i_imm(word) }
        }
        OPCODE_OP_IMM_32 => {
            if funct3 != 0 {
                return err;
            }
            Inst::AluImm { op: AluImmOp::Addiw, rd, rs1, imm: i_imm(word) }
        }
        OPCODE_OP => {
            let op = match (funct7, funct3) {
                (0x00, 0b000) => AluOp::Add,
                (0x20, 0b000) => AluOp::Sub,
                (0x00, 0b001) => AluOp::Sll,
                (0x00, 0b010) => AluOp::Slt,
                (0x00, 0b011) => AluOp::Sltu,
                (0x00, 0b100) => AluOp::Xor,
                (0x00, 0b101) => AluOp::Srl,
                (0x20, 0b101) => AluOp::Sra,
                (0x00, 0b110) => AluOp::Or,
                (0x00, 0b111) => AluOp::And,
                (0x01, 0b000) => AluOp::Mul,
                (0x01, 0b001) => AluOp::Mulh,
                (0x01, 0b100) => AluOp::Div,
                (0x01, 0b101) => AluOp::Divu,
                (0x01, 0b110) => AluOp::Rem,
                (0x01, 0b111) => AluOp::Remu,
                _ => return err,
            };
            Inst::Alu { op, rd, rs1, rs2 }
        }
        OPCODE_OP_32 => {
            let op = match (funct7, funct3) {
                (0x00, 0b000) => AluOp::Addw,
                (0x20, 0b000) => AluOp::Subw,
                (0x01, 0b000) => AluOp::Mulw,
                _ => return err,
            };
            Inst::Alu { op, rd, rs1, rs2 }
        }
        OPCODE_MISC_MEM => Inst::Fence,
        OPCODE_SYSTEM => match funct3 {
            0b000 => match word >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return err,
            },
            0b010 => {
                if (word >> 20) != CSR_CYCLE || !rs1.is_zero() {
                    return err;
                }
                Inst::RdCycle { rd }
            }
            _ => return err,
        },
        OPCODE_CUSTOM0 => {
            if funct3 != 0 || !rd.is_zero() {
                return err;
            }
            Inst::CacheFlush { rs1, offset: i_imm(word) }
        }
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(inst: Inst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|e| panic!("decode failed for {inst}: {e}"));
        assert_eq!(back, inst, "roundtrip mismatch for word {word:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::inst::{AluImmOp::*, AluOp::*, BranchCond::*};
        let a0 = Reg::A0;
        let a1 = Reg::A1;
        let t0 = Reg::T0;
        let cases = vec![
            Inst::Lui { rd: a0, imm: 0x12345 << 12 },
            Inst::Auipc { rd: a1, imm: -(0x1000i64) },
            Inst::Alu { op: Add, rd: a0, rs1: a1, rs2: t0 },
            Inst::Alu { op: Sub, rd: a0, rs1: a1, rs2: t0 },
            Inst::Alu { op: Mul, rd: a0, rs1: a1, rs2: t0 },
            Inst::Alu { op: Divu, rd: a0, rs1: a1, rs2: t0 },
            Inst::Alu { op: Addw, rd: a0, rs1: a1, rs2: t0 },
            Inst::Alu { op: Mulw, rd: a0, rs1: a1, rs2: t0 },
            Inst::AluImm { op: Addi, rd: a0, rs1: a1, imm: -42 },
            Inst::AluImm { op: Slli, rd: a0, rs1: a1, imm: 17 },
            Inst::AluImm { op: Srai, rd: a0, rs1: a1, imm: 33 },
            Inst::AluImm { op: Addiw, rd: a0, rs1: a1, imm: 100 },
            Inst::Load { width: LoadWidth::ByteU, rd: a0, rs1: a1, offset: -8 },
            Inst::Load { width: LoadWidth::Double, rd: a0, rs1: a1, offset: 2040 },
            Inst::Store { width: StoreWidth::Word, rs2: a0, rs1: a1, offset: -16 },
            Inst::Branch { cond: Ltu, rs1: a0, rs2: a1, offset: -256 },
            Inst::Branch { cond: Geu, rs1: a0, rs2: a1, offset: 4094 },
            Inst::Jal { rd: Reg::RA, offset: -1048576 },
            Inst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Fence,
            Inst::RdCycle { rd: a0 },
            Inst::CacheFlush { rs1: a1, offset: 64 },
            Inst::Nop,
        ];
        for inst in cases {
            roundtrip(inst);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
        // Unsupported CSR.
        assert!(decode(0xc020_2573).is_err());
    }

    #[test]
    fn decode_error_display_mentions_word() {
        let e = decode(0xffff_ffff).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }
}
