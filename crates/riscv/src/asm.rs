//! A small label-resolving assembler used to build guest programs
//! programmatically.
//!
//! The Spectre proof-of-concept attacks and the Polybench-style workloads
//! are all written against this builder, which plays the role of the C
//! compiler + assembler toolchain of the original evaluation.

use crate::inst::{AluImmOp, AluOp, BranchCond, Inst, LoadWidth, StoreWidth};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A named data allocation returned by [`Assembler::alloc_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRef {
    addr: u64,
    len: u64,
}

impl DataRef {
    /// Guest address of the first byte of the allocation.
    pub fn addr(self) -> u64 {
        self.addr
    }

    /// Length of the allocation in bytes.
    pub fn len(self) -> u64 {
        self.len
    }

    /// Returns `true` for zero-sized allocations.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`Assembler::bind`].
    UnboundLabel {
        /// Index of the offending label.
        label: usize,
    },
    /// A resolved branch offset does not fit the B-type immediate.
    BranchOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The offset that did not fit.
        offset: i64,
    },
    /// A resolved jump offset does not fit the J-type immediate.
    JumpOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The offset that did not fit.
        offset: i64,
    },
    /// An immediate operand does not fit its 12-bit field.
    ImmOutOfRange {
        /// The offending immediate.
        imm: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label {label} was never bound"),
            AsmError::BranchOutOfRange { at, offset } => {
                write!(f, "branch at instruction {at} has out-of-range offset {offset}")
            }
            AsmError::JumpOutOfRange { at, offset } => {
                write!(f, "jump at instruction {at} has out-of-range offset {offset}")
            }
            AsmError::ImmOutOfRange { imm } => write!(f, "immediate {imm} does not fit 12 bits"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Pending {
    /// A fully resolved instruction.
    Ready(Inst),
    /// A conditional branch to a label.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: Label },
    /// An unconditional jump (`jal`) to a label.
    Jump { rd: Reg, target: Label },
}

/// Builder for guest [`Program`]s.
///
/// The assembler keeps a code stream, a data section and a symbol table.
/// Labels may be referenced before they are bound; all label arithmetic is
/// resolved by [`Assembler::assemble`].
///
/// Code is placed at [`Assembler::CODE_BASE`] and data at
/// [`Assembler::DATA_BASE`], mirroring a simple embedded memory map.
///
/// # Example
///
/// ```
/// use dbt_riscv::{Assembler, Reg};
/// # fn main() -> Result<(), dbt_riscv::AsmError> {
/// let mut asm = Assembler::new();
/// let loop_head = asm.new_label();
/// asm.li(Reg::T0, 10);
/// asm.li(Reg::T1, 0);
/// asm.bind(loop_head);
/// asm.addi(Reg::T1, Reg::T1, 3);
/// asm.addi(Reg::T0, Reg::T0, -1);
/// asm.bnez(Reg::T0, loop_head);
/// asm.ecall();
/// let program = asm.assemble()?;
/// assert!(program.len() >= 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    code: Vec<Pending>,
    labels: Vec<Option<usize>>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u64>,
    extra_memory: u64,
}

impl Assembler {
    /// Guest address where the code section starts.
    pub const CODE_BASE: u64 = 0x1_0000;
    /// Guest address where the data section starts.
    pub const DATA_BASE: u64 = 0x10_0000;
    /// Default amount of scratch memory beyond code and data.
    pub const DEFAULT_EXTRA_MEMORY: u64 = 0x1_0000;

    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler {
            code: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            symbols: BTreeMap::new(),
            extra_memory: Self::DEFAULT_EXTRA_MEMORY,
        }
    }

    /// Reserves `extra` bytes of zeroed guest memory beyond code and data
    /// (for stacks or eviction buffers).
    pub fn reserve_extra_memory(&mut self, extra: u64) {
        self.extra_memory = self.extra_memory.max(extra);
    }

    // ------------------------------------------------------------------
    // Labels and data
    // ------------------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current end of the code stream.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.code.len());
    }

    /// Allocates `len` bytes of zero-initialised data under `name`.
    ///
    /// The allocation is 8-byte aligned; the name is recorded in the symbol
    /// table of the assembled program.
    pub fn alloc_data(&mut self, name: &str, len: u64) -> DataRef {
        self.alloc_data_aligned(name, len, 8)
    }

    /// Allocates `len` bytes of zero-initialised data under `name`, aligned
    /// to `align` bytes (rounded up to at least 8; must be a power of two).
    ///
    /// Cache-line alignment matters for side-channel experiments: a probe
    /// array that shares a line with unrelated victim data would produce
    /// false hits.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_data_aligned(&mut self, name: &str, len: u64, align: u64) -> DataRef {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(8);
        let aligned = (self.data.len() as u64 + align - 1) & !(align - 1);
        self.data.resize(aligned as usize, 0);
        let addr = Self::DATA_BASE + aligned;
        self.data.resize((aligned + len) as usize, 0);
        self.symbols.insert(name.to_string(), addr);
        DataRef { addr, len }
    }

    /// Allocates and initialises a named data buffer.
    pub fn alloc_data_init(&mut self, name: &str, bytes: &[u8]) -> DataRef {
        let r = self.alloc_data(name, bytes.len() as u64);
        let start = (r.addr - Self::DATA_BASE) as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        r
    }

    /// Allocates a named buffer of 64-bit little-endian words.
    pub fn alloc_data_u64(&mut self, name: &str, words: &[u64]) -> DataRef {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.alloc_data_init(name, &bytes)
    }

    /// Records `name` as an alias for an arbitrary guest address.
    pub fn define_symbol(&mut self, name: &str, addr: u64) {
        self.symbols.insert(name.to_string(), addr);
    }

    /// Current guest address of the next emitted instruction.
    pub fn here(&self) -> u64 {
        Self::CODE_BASE + 4 * self.code.len() as u64
    }

    // ------------------------------------------------------------------
    // Raw emission
    // ------------------------------------------------------------------

    /// Emits an already-formed instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.code.push(Pending::Ready(inst));
    }

    // ------------------------------------------------------------------
    // ALU helpers
    // ------------------------------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm { op: AluImmOp::Addi, rd, rs1, imm });
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm { op: AluImmOp::Andi, rd, rs1, imm });
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.emit(Inst::AluImm { op: AluImmOp::Slli, rd, rs1, imm: shamt });
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.emit(Inst::AluImm { op: AluImmOp::Srli, rd, rs1, imm: shamt });
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Mul, rd, rs1, rs2 });
    }

    /// `div rd, rs1, rs2` (signed)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Div, rd, rs1, rs2 });
    }

    /// `rem rd, rs1, rs2` (signed)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Rem, rd, rs1, rs2 });
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu { op: AluOp::Sltu, rd, rs1, rs2 });
    }

    /// `mv rd, rs` (pseudo-instruction, `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Loads an arbitrary 64-bit constant into `rd`.
    ///
    /// Small constants use a single `addi`; 32-bit constants use
    /// `lui`+`addi`; larger constants are built with shift/or sequences.
    pub fn li(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
            return;
        }
        if (i32::MIN as i64..=i32::MAX as i64).contains(&value) {
            let low = (value << 52) >> 52; // low 12 bits, sign-extended
            let high = value - low;
            self.emit(Inst::Lui { rd, imm: high });
            if low != 0 {
                self.addi(rd, rd, low);
            }
            return;
        }
        // General case: build the upper 32 bits then shift and add lower bits
        // 12 bits at a time.
        let upper = value >> 32;
        self.li(rd, upper);
        let low32 = value & 0xffff_ffff;
        self.slli(rd, rd, 12);
        self.addi(rd, rd, (low32 >> 20) & 0xfff);
        self.slli(rd, rd, 12);
        self.addi(rd, rd, (low32 >> 8) & 0xfff);
        self.slli(rd, rd, 8);
        self.addi(rd, rd, low32 & 0xff);
    }

    /// Loads the address of a data allocation into `rd`.
    pub fn la(&mut self, rd: Reg, data: DataRef) {
        self.li(rd, data.addr() as i64);
    }

    // ------------------------------------------------------------------
    // Memory helpers
    // ------------------------------------------------------------------

    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Load { width: LoadWidth::Byte, rd, rs1, offset });
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Load { width: LoadWidth::ByteU, rd, rs1, offset });
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Load { width: LoadWidth::Word, rd, rs1, offset });
    }

    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Load { width: LoadWidth::Double, rd, rs1, offset });
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Store { width: StoreWidth::Byte, rs2, rs1, offset });
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Store { width: StoreWidth::Word, rs2, rs1, offset });
    }

    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.emit(Inst::Store { width: StoreWidth::Double, rs2, rs1, offset });
    }

    /// Flush the cache line containing `offset(rs1)`.
    pub fn cflush(&mut self, rs1: Reg, offset: i64) {
        self.emit(Inst::CacheFlush { rs1, offset });
    }

    /// Read the cycle counter into `rd`.
    pub fn rdcycle(&mut self, rd: Reg) {
        self.emit(Inst::RdCycle { rd });
    }

    /// `fence`
    pub fn fence(&mut self) {
        self.emit(Inst::Fence);
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.code.push(Pending::Branch { cond, rs1, rs2, target });
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }

    /// `blt rs1, rs2, target`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }

    /// `bge rs1, rs2, target`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }

    /// `bgeu rs1, rs2, target`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, target);
    }

    /// `bnez rs1, target` (pseudo-instruction)
    pub fn bnez(&mut self, rs1: Reg, target: Label) {
        self.bne(rs1, Reg::ZERO, target);
    }

    /// `beqz rs1, target` (pseudo-instruction)
    pub fn beqz(&mut self, rs1: Reg, target: Label) {
        self.beq(rs1, Reg::ZERO, target);
    }

    /// Unconditional jump to a label (`jal x0, target`).
    pub fn jump(&mut self, target: Label) {
        self.code.push(Pending::Jump { rd: Reg::ZERO, target });
    }

    /// Call a label (`jal ra, target`).
    pub fn call(&mut self, target: Label) {
        self.code.push(Pending::Jump { rd: Reg::RA, target });
    }

    /// Return from a call (`jalr x0, ra, 0`).
    pub fn ret(&mut self) {
        self.emit(Inst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
    }

    /// `ecall` — the platform's exit convention.
    pub fn ecall(&mut self) {
        self.emit(Inst::Ecall);
    }

    /// `ebreak`
    pub fn ebreak(&mut self) {
        self.emit(Inst::Ebreak);
    }

    // ------------------------------------------------------------------
    // Assembly
    // ------------------------------------------------------------------

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` if no instruction has been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] if a referenced label was never bound or a
    /// resolved offset does not fit its encoding.
    pub fn assemble(self) -> Result<Program, AsmError> {
        let Assembler { code, labels, data, symbols, extra_memory } = self;
        let resolve = |label: Label| -> Result<usize, AsmError> {
            labels[label.0].ok_or(AsmError::UnboundLabel { label: label.0 })
        };
        let mut out = Vec::with_capacity(code.len());
        for (index, pending) in code.iter().enumerate() {
            let inst = match *pending {
                Pending::Ready(inst) => inst,
                Pending::Branch { cond, rs1, rs2, target } => {
                    let dest = resolve(target)?;
                    let offset = (dest as i64 - index as i64) * 4;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { at: index, offset });
                    }
                    Inst::Branch { cond, rs1, rs2, offset }
                }
                Pending::Jump { rd, target } => {
                    let dest = resolve(target)?;
                    let offset = (dest as i64 - index as i64) * 4;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { at: index, offset });
                    }
                    Inst::Jal { rd, offset }
                }
            };
            out.push(inst);
        }
        let code_end = Self::CODE_BASE + 4 * out.len() as u64;
        let data_end = Self::DATA_BASE + data.len() as u64;
        let memory_size = code_end.max(data_end) + extra_memory;
        Ok(Program::new(
            Self::CODE_BASE,
            out,
            Self::DATA_BASE,
            data,
            Self::CODE_BASE,
            memory_size,
            symbols,
        ))
    }
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExitReason, Interpreter};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Assembler::new();
        let skip = asm.new_label();
        let back = asm.new_label();
        asm.li(Reg::T0, 2);
        asm.bind(back);
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, back);
        asm.beqz(Reg::T0, skip);
        asm.li(Reg::A0, 99); // skipped
        asm.bind(skip);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(100).unwrap(), ExitReason::Ecall);
        assert_eq!(interp.reg(Reg::A0), 0);
        assert_eq!(interp.reg(Reg::T0), 0);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.jump(l);
        assert!(matches!(asm.assemble(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn li_covers_all_ranges() {
        for value in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            -0x1234,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0u64 as i64,
            -0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
        ] {
            let mut asm = Assembler::new();
            asm.li(Reg::A0, value);
            asm.ecall();
            let program = asm.assemble().unwrap();
            let mut interp = Interpreter::new(&program);
            interp.run(1000).unwrap();
            assert_eq!(interp.reg(Reg::A0) as i64, value, "li {value:#x}");
        }
    }

    #[test]
    fn data_allocations_are_aligned_and_named() {
        let mut asm = Assembler::new();
        let a = asm.alloc_data("a", 3);
        let b = asm.alloc_data("b", 16);
        assert_eq!(a.addr() % 8, 0);
        assert_eq!(b.addr() % 8, 0);
        assert!(b.addr() >= a.addr() + 3);
        asm.ecall();
        let program = asm.assemble().unwrap();
        assert_eq!(program.symbol("a"), Some(a.addr()));
        assert_eq!(program.symbol("b"), Some(b.addr()));
    }

    #[test]
    fn initialised_data_appears_in_memory() {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data_u64("buf", &[0xdead_beef, 42]);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mem = program.build_memory().unwrap();
        assert_eq!(mem.load_u64(buf.addr()).unwrap(), 0xdead_beef);
        assert_eq!(mem.load_u64(buf.addr() + 8).unwrap(), 42);
    }

    #[test]
    fn call_and_ret_work() {
        let mut asm = Assembler::new();
        let func = asm.new_label();
        let done = asm.new_label();
        asm.li(Reg::A0, 5);
        asm.call(func);
        asm.jump(done);
        asm.bind(func);
        asm.addi(Reg::A0, Reg::A0, 10);
        asm.ret();
        asm.bind(done);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(100).unwrap();
        assert_eq!(interp.reg(Reg::A0), 15);
    }
}
