//! Flat little-endian guest memory image.

use std::fmt;

/// Error raised on an out-of-bounds or misaligned guest memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access touches bytes outside the allocated guest memory.
    OutOfBounds {
        /// Faulting guest address.
        addr: u64,
        /// Size of the access in bytes.
        size: u64,
        /// Size of the guest memory.
        limit: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size, limit } => write!(
                f,
                "guest memory access of {size} bytes at {addr:#x} is outside the {limit:#x}-byte image"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// A flat, byte-addressable, little-endian guest memory.
///
/// Guest addresses start at 0. The DBT platform and the reference
/// interpreter both operate on this type, so architectural results can be
/// compared byte-for-byte.
///
/// # Example
///
/// ```
/// use dbt_riscv::GuestMemory;
/// # fn main() -> Result<(), dbt_riscv::MemError> {
/// let mut mem = GuestMemory::new(4096);
/// mem.store_u32(0x100, 0xdead_beef)?;
/// assert_eq!(mem.load_u32(0x100)?, 0xdead_beef);
/// assert_eq!(mem.load_u8(0x100)?, 0xef);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestMemory {
    bytes: Vec<u8>,
}

impl GuestMemory {
    /// Creates a zero-initialised guest memory of `size` bytes.
    pub fn new(size: usize) -> GuestMemory {
        GuestMemory { bytes: vec![0; size] }
    }

    /// Size of the memory image in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the memory image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw view of the whole image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, MemError> {
        let limit = self.bytes.len() as u64;
        if addr.checked_add(size).is_none_or(|end| end > limit) {
            return Err(MemError::OutOfBounds { addr, size, limit });
        }
        Ok(addr as usize)
    }

    /// Loads `size` bytes (1, 2, 4 or 8) at `addr` as a zero-extended value.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access leaves the image.
    pub fn load(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        let base = self.check(addr, size)?;
        let mut value = 0u64;
        for i in 0..size as usize {
            value |= (self.bytes[base + i] as u64) << (8 * i);
        }
        Ok(value)
    }

    /// Stores the low `size` bytes (1, 2, 4 or 8) of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access leaves the image.
    pub fn store(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        let base = self.check(addr, size)?;
        for i in 0..size as usize {
            self.bytes[base + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Loads a byte.
    pub fn load_u8(&self, addr: u64) -> Result<u8, MemError> {
        Ok(self.load(addr, 1)? as u8)
    }

    /// Loads a 16-bit little-endian value.
    pub fn load_u16(&self, addr: u64) -> Result<u16, MemError> {
        Ok(self.load(addr, 2)? as u16)
    }

    /// Loads a 32-bit little-endian value.
    pub fn load_u32(&self, addr: u64) -> Result<u32, MemError> {
        Ok(self.load(addr, 4)? as u32)
    }

    /// Loads a 64-bit little-endian value.
    pub fn load_u64(&self, addr: u64) -> Result<u64, MemError> {
        self.load(addr, 8)
    }

    /// Stores a byte.
    pub fn store_u8(&mut self, addr: u64, value: u8) -> Result<(), MemError> {
        self.store(addr, 1, value as u64)
    }

    /// Stores a 16-bit little-endian value.
    pub fn store_u16(&mut self, addr: u64, value: u16) -> Result<(), MemError> {
        self.store(addr, 2, value as u64)
    }

    /// Stores a 32-bit little-endian value.
    pub fn store_u32(&mut self, addr: u64, value: u32) -> Result<(), MemError> {
        self.store(addr, 4, value as u64)
    }

    /// Stores a 64-bit little-endian value.
    pub fn store_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.store(addr, 8, value)
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the copy leaves the image.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let base = self.check(addr, data.len() as u64)?;
        self.bytes[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the read leaves the image.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        let base = self.check(addr, len as u64)?;
        Ok(self.bytes[base..base + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut mem = GuestMemory::new(64);
        mem.store_u64(8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(mem.load_u8(8).unwrap(), 0x08);
        assert_eq!(mem.load_u8(15).unwrap(), 0x01);
        assert_eq!(mem.load_u32(8).unwrap(), 0x0506_0708);
        assert_eq!(mem.load_u64(8).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn out_of_bounds_is_detected() {
        let mut mem = GuestMemory::new(16);
        assert!(mem.load_u64(9).is_err());
        assert!(mem.store_u8(16, 1).is_err());
        assert!(mem.load_u8(15).is_ok());
        // Address + size overflow must not wrap.
        assert!(mem.load(u64::MAX, 8).is_err());
    }

    #[test]
    fn write_and_read_bytes() {
        let mut mem = GuestMemory::new(32);
        mem.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read_bytes(4, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(mem.write_bytes(30, &[0; 4]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let mem = GuestMemory::new(16);
        let err = mem.load_u64(12).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("0xc"));
        assert!(msg.contains("8 bytes"));
    }
}
