//! Guest instruction set: a pragmatic rv64im subset plus the two
//! platform-specific instructions used by the Spectre proof-of-concepts.

use crate::reg::Reg;
use std::fmt;

/// Width (and sign treatment) of a load instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadWidth {
    /// `lb` — sign-extended byte.
    Byte,
    /// `lbu` — zero-extended byte.
    ByteU,
    /// `lh` — sign-extended half-word.
    Half,
    /// `lhu` — zero-extended half-word.
    HalfU,
    /// `lw` — sign-extended word.
    Word,
    /// `lwu` — zero-extended word.
    WordU,
    /// `ld` — double word.
    Double,
}

impl LoadWidth {
    /// Number of bytes accessed.
    pub fn bytes(self) -> u64 {
        match self {
            LoadWidth::Byte | LoadWidth::ByteU => 1,
            LoadWidth::Half | LoadWidth::HalfU => 2,
            LoadWidth::Word | LoadWidth::WordU => 4,
            LoadWidth::Double => 8,
        }
    }

    /// Whether the loaded value is sign-extended to 64 bits.
    pub fn sign_extends(self) -> bool {
        matches!(self, LoadWidth::Byte | LoadWidth::Half | LoadWidth::Word | LoadWidth::Double)
    }
}

/// Width of a store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreWidth {
    /// `sb` — byte.
    Byte,
    /// `sh` — half-word.
    Half,
    /// `sw` — word.
    Word,
    /// `sd` — double word.
    Double,
}

impl StoreWidth {
    /// Number of bytes accessed.
    pub fn bytes(self) -> u64 {
        match self {
            StoreWidth::Byte => 1,
            StoreWidth::Half => 2,
            StoreWidth::Word => 4,
            StoreWidth::Double => 8,
        }
    }
}

/// Condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bltu` (unsigned)
    Ltu,
    /// `bgeu` (unsigned)
    Geu,
}

impl BranchCond {
    /// Evaluates the branch condition on two 64-bit register values.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i64) < (rhs as i64),
            BranchCond::Ge => (lhs as i64) >= (rhs as i64),
            BranchCond::Ltu => lhs < rhs,
            BranchCond::Geu => lhs >= rhs,
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Ltu => BranchCond::Geu,
            BranchCond::Geu => BranchCond::Ltu,
        }
    }

    /// Assembly mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Register-register ALU operation (`op rd, rs1, rs2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `sll`
    Sll,
    /// `slt` (signed set-less-than)
    Slt,
    /// `sltu`
    Sltu,
    /// `xor`
    Xor,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `or`
    Or,
    /// `and`
    And,
    /// `mul` (M extension)
    Mul,
    /// `mulh` (M extension)
    Mulh,
    /// `div` (M extension, signed)
    Div,
    /// `divu` (M extension)
    Divu,
    /// `rem` (M extension, signed)
    Rem,
    /// `remu` (M extension)
    Remu,
    /// `addw` (32-bit add, sign-extended result)
    Addw,
    /// `subw`
    Subw,
    /// `mulw`
    Mulw,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128).wrapping_mul(b as i64 as i128)) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if (a as i64) == i64::MIN && (b as i64) == -1 {
                    a
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if (a as i64) == i64::MIN && (b as i64) == -1 {
                    0
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Addw => ((a as i32).wrapping_add(b as i32)) as i64 as u64,
            AluOp::Subw => ((a as i32).wrapping_sub(b as i32)) as i64 as u64,
            AluOp::Mulw => ((a as i32).wrapping_mul(b as i32)) as i64 as u64,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Mulw => "mulw",
        }
    }
}

/// Register-immediate ALU operation (`op rd, rs1, imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`
    Addi,
    /// `slti`
    Slti,
    /// `sltiu`
    Sltiu,
    /// `xori`
    Xori,
    /// `ori`
    Ori,
    /// `andi`
    Andi,
    /// `slli`
    Slli,
    /// `srli`
    Srli,
    /// `srai`
    Srai,
    /// `addiw`
    Addiw,
}

impl AluImmOp {
    /// Applies the operation to a register value and a sign-extended immediate.
    pub fn apply(self, a: u64, imm: i64) -> u64 {
        let b = imm as u64;
        match self {
            AluImmOp::Addi => a.wrapping_add(b),
            AluImmOp::Slti => ((a as i64) < imm) as u64,
            AluImmOp::Sltiu => (a < b) as u64,
            AluImmOp::Xori => a ^ b,
            AluImmOp::Ori => a | b,
            AluImmOp::Andi => a & b,
            AluImmOp::Slli => a.wrapping_shl((b & 0x3f) as u32),
            AluImmOp::Srli => a.wrapping_shr((b & 0x3f) as u32),
            AluImmOp::Srai => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluImmOp::Addiw => ((a as i32).wrapping_add(imm as i32)) as i64 as u64,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
        }
    }
}

/// A guest instruction.
///
/// The subset covers everything the Polybench-style workloads and the
/// Spectre proof-of-concepts need: integer ALU (I and M extensions), loads,
/// stores, conditional branches, `jal`/`jalr`, `lui`/`auipc`, `ecall`
/// (used as the program-exit convention), a cycle-CSR read and an explicit
/// data-cache line flush.
///
/// `RdCycle` models `csrrs rd, cycle, x0`; `CacheFlush` is a custom
/// instruction standing in for the explicit line-by-line flush the paper's
/// RISC-V attack performs (documented as a substitution in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm` — load upper immediate (imm is the already-shifted value).
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc { rd: Reg, imm: i64 },
    /// Register-register ALU operation.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate ALU operation.
    AluImm { op: AluImmOp, rd: Reg, rs1: Reg, imm: i64 },
    /// Load from memory: `rd <- mem[rs1 + offset]`.
    Load { width: LoadWidth, rd: Reg, rs1: Reg, offset: i64 },
    /// Store to memory: `mem[rs1 + offset] <- rs2`.
    Store { width: StoreWidth, rs2: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch: `if cond(rs1, rs2) pc += offset`.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, offset: i64 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, rs1, offset` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// `ecall` — environment call; the platform treats it as program exit.
    Ecall,
    /// `ebreak` — breakpoint; the platform treats it as an error stop.
    Ebreak,
    /// `fence` — memory ordering fence (also stops DBT speculation across it).
    Fence,
    /// Read the cycle CSR into `rd` (models `rdcycle rd`).
    RdCycle { rd: Reg },
    /// Flush the data-cache line containing address `rs1 + offset`.
    CacheFlush { rs1: Reg, offset: i64 },
    /// No operation (canonical `addi x0, x0, 0` is also accepted).
    Nop,
}

impl Inst {
    /// Returns `true` for instructions that terminate a basic block
    /// (branches, jumps, `ecall`, `ebreak`).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak
        )
    }

    /// Returns `true` for memory accesses (loads, stores, cache flushes).
    pub fn is_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. } | Inst::CacheFlush { .. })
    }

    /// Destination register, if the instruction writes one.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::RdCycle { rd } => {
                if rd.is_zero() {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }

    /// Source registers read by the instruction (x0 included if encoded).
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Inst::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::AluImm { rs1, .. } => vec![rs1],
            Inst::Load { rs1, .. } => vec![rs1],
            Inst::Store { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Jalr { rs1, .. } => vec![rs1],
            Inst::CacheFlush { rs1, .. } => vec![rs1],
            _ => vec![],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm),
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::Load { width, rd, rs1, offset } => {
                let m = match width {
                    LoadWidth::Byte => "lb",
                    LoadWidth::ByteU => "lbu",
                    LoadWidth::Half => "lh",
                    LoadWidth::HalfU => "lhu",
                    LoadWidth::Word => "lw",
                    LoadWidth::WordU => "lwu",
                    LoadWidth::Double => "ld",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Inst::Store { width, rs2, rs1, offset } => {
                let m = match width {
                    StoreWidth::Byte => "sb",
                    StoreWidth::Half => "sh",
                    StoreWidth::Word => "sw",
                    StoreWidth::Double => "sd",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Inst::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Fence => write!(f, "fence"),
            Inst::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Inst::CacheFlush { rs1, offset } => write!(f, "cflush {offset}({rs1})"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_cond_eval_and_negate() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(!BranchCond::Eq.eval(4, 5));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        for c in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 1)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn alu_ops_basic() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), (-1i64) as u64);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Sra.apply((-16i64) as u64, 2), (-4i64) as u64);
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
    }

    #[test]
    fn division_by_zero_follows_riscv_semantics() {
        assert_eq!(AluOp::Div.apply(10, 0), u64::MAX);
        assert_eq!(AluOp::Divu.apply(10, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(10, 0), 10);
        assert_eq!(AluOp::Remu.apply(10, 0), 10);
    }

    #[test]
    fn division_overflow_follows_riscv_semantics() {
        let min = i64::MIN as u64;
        assert_eq!(AluOp::Div.apply(min, (-1i64) as u64), min);
        assert_eq!(AluOp::Rem.apply(min, (-1i64) as u64), 0);
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(AluOp::Addw.apply(0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(AluImmOp::Addiw.apply(0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
    }

    #[test]
    fn alu_imm_ops_basic() {
        assert_eq!(AluImmOp::Addi.apply(5, -3), 2);
        assert_eq!(AluImmOp::Andi.apply(0xff, 0x0f), 0x0f);
        assert_eq!(AluImmOp::Slli.apply(3, 2), 12);
        assert_eq!(AluImmOp::Srai.apply((-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn dest_hides_x0() {
        let i = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.dest(), None);
        let i = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.dest(), Some(Reg::A0));
    }

    #[test]
    fn classification() {
        assert!(Inst::Ecall.is_control_flow());
        assert!(Inst::Jal { rd: Reg::ZERO, offset: 8 }.is_control_flow());
        assert!(
            Inst::Load { width: LoadWidth::Byte, rd: Reg::A0, rs1: Reg::A1, offset: 0 }.is_memory()
        );
        assert!(!Inst::Nop.is_memory());
    }

    #[test]
    fn display_formats_reasonably() {
        let i = Inst::Load { width: LoadWidth::Double, rd: Reg::A0, rs1: Reg::SP, offset: 16 };
        assert_eq!(i.to_string(), "ld a0, 16(sp)");
        let b = Inst::Branch { cond: BranchCond::Ltu, rs1: Reg::A0, rs2: Reg::A1, offset: -8 };
        assert_eq!(b.to_string(), "bltu a0, a1, -8");
    }

    #[test]
    fn loadwidth_bytes_and_sign() {
        assert_eq!(LoadWidth::Byte.bytes(), 1);
        assert_eq!(LoadWidth::Double.bytes(), 8);
        assert!(LoadWidth::Word.sign_extends());
        assert!(!LoadWidth::WordU.sign_extends());
        assert_eq!(StoreWidth::Word.bytes(), 4);
    }
}
