//! Reference instruction-set simulator.
//!
//! The interpreter executes guest programs instruction by instruction, in
//! strict program order, with no cache or pipeline model. Its purpose is
//! twofold:
//!
//! * it defines the *architectural* semantics the DBT engine must preserve
//!   (every translation/speculation/mitigation configuration is checked
//!   against it by differential tests);
//! * it gives a simple baseline instruction count.
//!
//! The `rdcycle` instruction returns the retired-instruction count here — the
//! reference machine has no micro-architectural timing, which is exactly why
//! the Spectre attacks cannot be expressed on it.

use crate::inst::Inst;
use crate::memory::{GuestMemory, MemError};
use crate::program::{Program, ProgramError};
use crate::reg::Reg;
use std::fmt;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `ecall` (normal termination).
    Ecall,
    /// The program executed `ebreak`.
    Ebreak,
    /// The step/instruction budget was exhausted before termination.
    BudgetExhausted,
}

/// Error raised while executing a guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Guest memory fault.
    Mem(MemError),
    /// Instruction fetch fault.
    Program(ProgramError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "{e}"),
            ExecError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

impl From<ProgramError> for ExecError {
    fn from(e: ProgramError) -> Self {
        ExecError::Program(e)
    }
}

/// Architectural state + executor for the reference machine.
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: [u64; Reg::COUNT],
    pc: u64,
    memory: GuestMemory,
    retired: u64,
}

impl Interpreter {
    /// Creates an interpreter with the program loaded and the PC at its
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if the program's memory image cannot be built (inconsistent
    /// `memory_size`, which cannot happen for assembler-produced programs).
    pub fn new(program: &Program) -> Interpreter {
        let memory = program.build_memory().expect("program memory image");
        let mut regs = [0u64; Reg::COUNT];
        // Give the guest a stack at the top of memory, as the platform does.
        regs[Reg::SP.index() as usize] = (memory.len() as u64) & !0xf;
        Interpreter { program: program.clone(), regs, pc: program.entry(), memory, retired: 0 }
    }

    /// Current value of a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index() as usize]
    }

    /// Overwrites a register (x0 writes are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Mutable guest memory (useful to plant secrets before running).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.memory
    }

    /// Executes a single instruction.
    ///
    /// Returns `Some(reason)` if the instruction terminated the program.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a fetch or memory fault.
    pub fn step(&mut self) -> Result<Option<ExitReason>, ExecError> {
        let inst = self.program.fetch(self.pc)?;
        let mut next_pc = self.pc.wrapping_add(4);
        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.set_reg(rd, self.pc.wrapping_add(imm as u64)),
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm);
                self.set_reg(rd, v);
            }
            Inst::Load { width, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let raw = self.memory.load(addr, width.bytes())?;
                let value = if width.sign_extends() {
                    let bits = width.bytes() * 8;
                    (((raw << (64 - bits)) as i64) >> (64 - bits)) as u64
                } else {
                    raw
                };
                self.set_reg(rd, value);
            }
            Inst::Store { width, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                self.memory.store(addr, width.bytes(), self.reg(rs2))?;
            }
            Inst::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next_pc = self.pc.wrapping_add(offset as u64);
                }
            }
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Ecall => {
                self.retired += 1;
                return Ok(Some(ExitReason::Ecall));
            }
            Inst::Ebreak => {
                self.retired += 1;
                return Ok(Some(ExitReason::Ebreak));
            }
            Inst::Fence | Inst::Nop => {}
            Inst::RdCycle { rd } => {
                // The reference machine has no cycle-level timing; expose the
                // retired-instruction count so programs still observe a
                // monotonically increasing counter.
                self.set_reg(rd, self.retired);
            }
            Inst::CacheFlush { .. } => {
                // No cache on the reference machine.
            }
        }
        self.retired += 1;
        self.pc = next_pc;
        Ok(None)
    }

    /// Runs until termination or until `max_steps` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a fetch or memory fault.
    pub fn run(&mut self, max_steps: u64) -> Result<ExitReason, ExecError> {
        for _ in 0..max_steps {
            if let Some(reason) = self.step()? {
                return Ok(reason);
            }
        }
        Ok(ExitReason::BudgetExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::BranchCond;

    #[test]
    fn arithmetic_and_memory_program() {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data("buf", 64);
        asm.li(Reg::T0, 6);
        asm.li(Reg::T1, 7);
        asm.mul(Reg::T2, Reg::T0, Reg::T1);
        asm.la(Reg::A0, buf);
        asm.sd(Reg::T2, Reg::A0, 0);
        asm.ld(Reg::A1, Reg::A0, 0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(100).unwrap(), ExitReason::Ecall);
        assert_eq!(interp.reg(Reg::A1), 42);
        assert_eq!(interp.memory().load_u64(buf.addr()).unwrap(), 42);
    }

    #[test]
    fn sign_extension_on_byte_loads() {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data_init("buf", &[0xff]);
        asm.la(Reg::A0, buf);
        asm.lb(Reg::A1, Reg::A0, 0);
        asm.lbu(Reg::A2, Reg::A0, 0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(100).unwrap();
        assert_eq!(interp.reg(Reg::A1), u64::MAX);
        assert_eq!(interp.reg(Reg::A2), 0xff);
    }

    #[test]
    fn taken_and_not_taken_branches() {
        let mut asm = Assembler::new();
        let over = asm.new_label();
        asm.li(Reg::T0, 1);
        asm.li(Reg::T1, 2);
        asm.branch(BranchCond::Lt, Reg::T0, Reg::T1, over);
        asm.li(Reg::A0, 111); // skipped
        asm.bind(over);
        asm.addi(Reg::A0, Reg::A0, 1);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(100).unwrap();
        assert_eq!(interp.reg(Reg::A0), 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut asm = Assembler::new();
        let spin = asm.new_label();
        asm.bind(spin);
        asm.jump(spin);
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(10).unwrap(), ExitReason::BudgetExhausted);
        assert_eq!(interp.retired(), 10);
    }

    #[test]
    fn memory_fault_is_reported() {
        let mut asm = Assembler::new();
        asm.li(Reg::A0, -8);
        asm.ld(Reg::A1, Reg::A0, 0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        assert!(matches!(interp.run(100), Err(ExecError::Mem(_))));
    }

    #[test]
    fn rdcycle_is_monotonic() {
        let mut asm = Assembler::new();
        asm.rdcycle(Reg::A0);
        asm.nop();
        asm.nop();
        asm.rdcycle(Reg::A1);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(100).unwrap();
        assert!(interp.reg(Reg::A1) > interp.reg(Reg::A0));
    }

    #[test]
    fn x0_stays_zero() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, 5);
        asm.add(Reg::ZERO, Reg::T0, Reg::T0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(100).unwrap();
        assert_eq!(interp.reg(Reg::ZERO), 0);
    }
}
