//! Guest architectural registers.

use std::fmt;

/// One of the 32 RISC-V integer registers.
///
/// The newtype wraps the architectural index (0..=31). `x0` is hard-wired to
/// zero everywhere in this workspace (interpreter, DBT translation, VLIW
/// back-end).
///
/// # Example
///
/// ```
/// use dbt_riscv::Reg;
/// assert_eq!(Reg::ZERO.index(), 0);
/// assert_eq!(Reg::A0.to_string(), "a0");
/// assert_eq!(Reg::from_index(10), Some(Reg::A0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register (`x0`).
    pub const ZERO: Reg = Reg(0);
    /// Return address (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`x3`).
    pub const GP: Reg = Reg(3);
    /// Thread pointer (`x4`).
    pub const TP: Reg = Reg(4);
    /// Temporary 0 (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary 1 (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary 2 (`x7`).
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register 1 (`x9`).
    pub const S1: Reg = Reg(9);
    /// Argument/return 0 (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument/return 1 (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument 2 (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument 3 (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument 4 (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument 5 (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument 6 (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument 7 (`x17`).
    pub const A7: Reg = Reg(17);
    /// Saved register 2 (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register 3 (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register 4 (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register 5 (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register 6 (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register 7 (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register 8 (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register 9 (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register 10 (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register 11 (`x27`).
    pub const S11: Reg = Reg(27);
    /// Temporary 3 (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary 4 (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary 5 (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary 6 (`x31`).
    pub const T6: Reg = Reg(31);

    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Builds a register from its architectural index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Example
    ///
    /// ```
    /// use dbt_riscv::Reg;
    /// assert_eq!(Reg::from_index(5), Some(Reg::T0));
    /// assert_eq!(Reg::from_index(32), None);
    /// ```
    pub fn from_index(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Architectural register index (0..=31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for `x0`, the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over every architectural register, `x0` first.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }

    /// ABI mnemonic for this register (`zero`, `ra`, `sp`, `a0`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
    }

    #[test]
    fn from_index_rejects_out_of_range() {
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn abi_names_match_known_registers() {
        assert_eq!(Reg::ZERO.abi_name(), "zero");
        assert_eq!(Reg::SP.abi_name(), "sp");
        assert_eq!(Reg::A0.abi_name(), "a0");
        assert_eq!(Reg::T6.abi_name(), "t6");
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    fn all_yields_32_unique_registers() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(format!("{}", Reg::S11), "s11");
    }
}
