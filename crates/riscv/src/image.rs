//! The stable, versioned **program image** codec: a [`Program`] as a JSON
//! document.
//!
//! The image is the wire format for shipping guest programs into a running
//! lab daemon (`upload` frames) and for storing them next to experiments:
//! code travels as the encoded 32-bit instruction words (so the document
//! is exactly what a binary loader would see), data as a hex string, and
//! the symbol table verbatim. [`Program::to_image`] emits a byte-stable
//! document (fixed key order, sorted symbols) in the repo's hand-rolled
//! JSON style; [`Program::from_image`] parses and *re-decodes* the code
//! words, so a malformed or hostile image is rejected with a precise
//! error instead of producing an undecodable program.
//!
//! The round-trip is lossless for every program within the
//! [`MAX_INGEST_MEMORY`] bound — which is all of them in practice:
//! `Program::from_image(&p.to_image()) == p`. A builder-made program
//! whose geometry exceeds the bound still serialises, but its image is
//! (deliberately) rejected on the way back in, like any other oversized
//! ingestion.

use crate::decode::decode;
use crate::encode::encode;
use crate::program::Program;
use dbt_json::{escape, JsonValue};
use std::collections::BTreeMap;
use std::fmt;

/// Schema tag of the current image version.
pub const IMAGE_SCHEMA: &str = "dbt-riscv/program-image/v1";

/// Upper bound on any address or size an *ingested* program may declare
/// (64 MiB — far above every in-repo guest, which needs ~1.2 MiB).
///
/// Program sources arrive from untrusted clients, and sizes are scalars:
/// a 30-byte document declaring a petabyte guest would otherwise make the
/// consumer allocate it. Both ingestion paths ([`Program::from_image`]
/// and [`parse_asm`](crate::parse_asm)) enforce this bound; the Rust
/// [`Assembler`](crate::Assembler) API is not subject to it.
pub const MAX_INGEST_MEMORY: u64 = 64 << 20;

/// Error produced while parsing a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The document is not valid JSON.
    Malformed(String),
    /// The document's `schema` member is missing or names another format.
    WrongSchema(String),
    /// A required member is missing or has the wrong type.
    BadMember(String),
    /// A code word does not decode to a guest instruction.
    BadCode {
        /// Index of the offending word in the `code` array.
        index: usize,
        /// Why it does not decode.
        error: String,
    },
    /// The `data` member is not a valid hex string.
    BadData(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Malformed(e) => write!(f, "malformed program image: {e}"),
            ImageError::WrongSchema(found) => {
                write!(f, "not a program image (schema `{found}`, expected `{IMAGE_SCHEMA}`)")
            }
            ImageError::BadMember(what) => write!(f, "program image: {what}"),
            ImageError::BadCode { index, error } => {
                write!(f, "program image: code word {index} does not decode: {error}")
            }
            ImageError::BadData(e) => write!(f, "program image: bad data section: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

fn member_u64(value: &JsonValue, name: &str) -> Result<u64, ImageError> {
    let parsed = value
        .get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ImageError::BadMember(format!("`{name}` must be a non-negative integer")))?;
    if parsed > MAX_INGEST_MEMORY {
        return Err(ImageError::BadMember(format!(
            "`{name}` is {parsed}, above the {MAX_INGEST_MEMORY}-byte ingestion limit"
        )));
    }
    Ok(parsed)
}

fn hex_decode(text: &str) -> Result<Vec<u8>, ImageError> {
    if !text.len().is_multiple_of(2) {
        return Err(ImageError::BadData("odd number of hex digits".to_string()));
    }
    let digit = |c: u8| -> Result<u8, ImageError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(ImageError::BadData(format!("invalid hex digit `{}`", c as char))),
        }
    };
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

impl Program {
    /// Serialises the program as a versioned image document.
    ///
    /// The encoding is byte-stable: fixed key order, code as the encoded
    /// instruction words, data as lowercase hex, symbols sorted by name —
    /// the same program always produces the same bytes, so images can be
    /// content-addressed and diffed.
    pub fn to_image(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{IMAGE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"code_base\": {},\n", self.code_base()));
        out.push_str(&format!("  \"entry\": {},\n", self.entry()));
        out.push_str(&format!("  \"memory_size\": {},\n", self.memory_size()));
        out.push_str("  \"code\": [");
        for (i, inst) in self.code().iter().enumerate() {
            out.push_str(if i == 0 { "" } else { ", " });
            out.push_str(&encode(inst).to_string());
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"data_base\": {},\n", self.data_base()));
        out.push_str(&format!("  \"data\": \"{}\",\n", hex_encode(self.data())));
        out.push_str("  \"symbols\": {");
        for (i, (name, addr)) in self.symbols().enumerate() {
            out.push_str(if i == 0 { "" } else { ", " });
            out.push_str(&format!("\"{}\": {addr}", escape(name)));
        }
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }

    /// Parses a program image produced by [`Program::to_image`] (or by any
    /// client speaking the same schema).
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] describing the first violation: malformed
    /// JSON, wrong schema, missing/ill-typed members, undecodable code
    /// words or a bad data hex string.
    pub fn from_image(text: &str) -> Result<Program, ImageError> {
        let value = JsonValue::parse(text).map_err(ImageError::Malformed)?;
        let schema = value.get("schema").and_then(JsonValue::as_str).unwrap_or("<missing>");
        if schema != IMAGE_SCHEMA {
            return Err(ImageError::WrongSchema(schema.to_string()));
        }
        let code_base = member_u64(&value, "code_base")?;
        let entry = member_u64(&value, "entry")?;
        let memory_size = member_u64(&value, "memory_size")?;
        let data_base = member_u64(&value, "data_base")?;
        let Some(JsonValue::Array(words)) = value.get("code") else {
            return Err(ImageError::BadMember("`code` must be an array of words".to_string()));
        };
        let mut code = Vec::with_capacity(words.len());
        for (index, word) in words.iter().enumerate() {
            let word = word
                .as_u64()
                .filter(|w| *w <= u64::from(u32::MAX))
                .ok_or_else(|| ImageError::BadMember(format!("code word {index} is not a u32")))?;
            code.push(
                decode(word as u32)
                    .map_err(|e| ImageError::BadCode { index, error: e.to_string() })?,
            );
        }
        let data = value
            .get("data")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ImageError::BadMember("`data` must be a hex string".to_string()))?;
        let data = hex_decode(data)?;
        let Some(JsonValue::Object(members)) = value.get("symbols") else {
            return Err(ImageError::BadMember("`symbols` must be an object".to_string()));
        };
        let mut symbols = BTreeMap::new();
        for (name, addr) in members {
            let addr = addr.as_u64().filter(|a| *a <= MAX_INGEST_MEMORY).ok_or_else(|| {
                ImageError::BadMember(format!("symbol `{name}` must map to a guest address"))
            })?;
            symbols.insert(name.clone(), addr);
        }
        Ok(Program::new(code_base, code, data_base, data, entry, memory_size, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::Reg;

    fn sample_program() -> Program {
        let mut asm = Assembler::new();
        let out = asm.alloc_data("out", 8);
        let buf = asm.alloc_data_init("buf", &[1, 2, 3, 0xfe]);
        let head = asm.new_label();
        asm.li(Reg::T0, 3);
        asm.bind(head);
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, head);
        asm.la(Reg::A0, buf);
        asm.lbu(Reg::A1, Reg::A0, 3);
        asm.la(Reg::A2, out);
        asm.sd(Reg::A1, Reg::A2, 0);
        asm.ecall();
        asm.assemble().unwrap()
    }

    #[test]
    fn image_round_trips_losslessly_and_is_byte_stable() {
        let program = sample_program();
        let image = program.to_image();
        assert_eq!(image, program.to_image(), "same program, same bytes");
        let back = Program::from_image(&image).unwrap();
        assert_eq!(back, program, "round trip must be lossless");
        assert_eq!(back.fingerprint(), program.fingerprint());
        assert_eq!(back.to_image(), image);
    }

    #[test]
    fn image_carries_symbols_and_data() {
        let program = sample_program();
        let back = Program::from_image(&program.to_image()).unwrap();
        assert_eq!(back.symbol("out"), program.symbol("out"));
        assert_eq!(back.symbol("buf"), program.symbol("buf"));
        let mem = back.build_memory().unwrap();
        assert_eq!(mem.load_u8(back.symbol("buf").unwrap() + 3).unwrap(), 0xfe);
    }

    #[test]
    fn malformed_images_are_rejected_with_precise_errors() {
        assert!(matches!(Program::from_image("not json"), Err(ImageError::Malformed(_))));
        assert!(matches!(
            Program::from_image("{\"schema\": \"other/v9\"}"),
            Err(ImageError::WrongSchema(s)) if s == "other/v9"
        ));
        assert!(matches!(
            Program::from_image(&format!("{{\"schema\": \"{IMAGE_SCHEMA}\"}}")),
            Err(ImageError::BadMember(_))
        ));
        let bad_word = format!(
            "{{\"schema\": \"{IMAGE_SCHEMA}\", \"code_base\": 0, \"entry\": 0, \
             \"memory_size\": 64, \"code\": [4294967295], \"data_base\": 32, \
             \"data\": \"\", \"symbols\": {{}}}}"
        );
        assert!(matches!(
            Program::from_image(&bad_word),
            Err(ImageError::BadCode { index: 0, .. })
        ));
        let bad_data =
            bad_word.replace("[4294967295]", "[115]").replace("\"data\": \"\"", "\"data\": \"0g\"");
        assert!(matches!(Program::from_image(&bad_data), Err(ImageError::BadData(_))));
        let odd_data = bad_word
            .replace("[4294967295]", "[115]")
            .replace("\"data\": \"\"", "\"data\": \"abc\"");
        assert!(matches!(Program::from_image(&odd_data), Err(ImageError::BadData(_))));
    }

    #[test]
    fn image_errors_render_for_humans() {
        let err = Program::from_image("{\"schema\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains(IMAGE_SCHEMA), "{err}");
    }

    #[test]
    fn hostile_geometry_is_rejected_before_any_allocation() {
        // Sizes and addresses are scalars: a 100-byte document must not
        // be able to demand a petabyte guest, and integers past the f64
        // carrier's exact range must error instead of silently rounding.
        let image = |member: &str, value: &str| {
            format!(
                "{{\"schema\": \"{IMAGE_SCHEMA}\", \"code_base\": 0, \"entry\": 0, \
                 \"memory_size\": 64, \"code\": [115], \"data_base\": 32, \
                 \"data\": \"\", \"symbols\": {{}}}}"
            )
            .replace(
                &format!("\"{member}\": {}", if member == "memory_size" { "64" } else { "0" }),
                &format!("\"{member}\": {value}"),
            )
        };
        for (member, value) in [
            ("memory_size", "9007199254740993"),
            ("memory_size", "281474976710656"),
            ("code_base", "281474976710656"),
            ("entry", "281474976710656"),
        ] {
            let err = Program::from_image(&image(member, value)).unwrap_err();
            assert!(
                matches!(&err, ImageError::BadMember(m) if m.contains(member)),
                "{member}={value}: {err}"
            );
        }
        let huge_symbol = image("entry", "0")
            .replace("\"symbols\": {}", "\"symbols\": {\"evil\": 281474976710656}");
        assert!(matches!(
            Program::from_image(&huge_symbol),
            Err(ImageError::BadMember(m)) if m.contains("evil")
        ));
    }
}
