//! Binary encoding of guest instructions to 32-bit RISC-V words.
//!
//! The encodings follow the RV64IM base formats (R/I/S/B/U/J). The two
//! platform-specific instructions use a reserved encoding space:
//! [`Inst::RdCycle`] is the standard `csrrs rd, cycle, x0` and
//! [`Inst::CacheFlush`] lives in the *custom-0* opcode.

use crate::inst::{AluImmOp, AluOp, BranchCond, Inst, LoadWidth, StoreWidth};
use crate::reg::Reg;

pub(crate) const OPCODE_LUI: u32 = 0x37;
pub(crate) const OPCODE_AUIPC: u32 = 0x17;
pub(crate) const OPCODE_JAL: u32 = 0x6f;
pub(crate) const OPCODE_JALR: u32 = 0x67;
pub(crate) const OPCODE_BRANCH: u32 = 0x63;
pub(crate) const OPCODE_LOAD: u32 = 0x03;
pub(crate) const OPCODE_STORE: u32 = 0x23;
pub(crate) const OPCODE_OP_IMM: u32 = 0x13;
pub(crate) const OPCODE_OP: u32 = 0x33;
pub(crate) const OPCODE_OP_IMM_32: u32 = 0x1b;
pub(crate) const OPCODE_OP_32: u32 = 0x3b;
pub(crate) const OPCODE_MISC_MEM: u32 = 0x0f;
pub(crate) const OPCODE_SYSTEM: u32 = 0x73;
pub(crate) const OPCODE_CUSTOM0: u32 = 0x0b;

pub(crate) const CSR_CYCLE: u32 = 0xc00;

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i64) -> u32 {
    let imm12 = (imm as u32) & 0xfff;
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | (imm12 << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 0x1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 0x1) << 31)
}

fn u_type(opcode: u32, rd: Reg, imm: i64) -> u32 {
    // `imm` carries the full (already shifted) upper-immediate value.
    opcode | ((rd.index() as u32) << 7) | ((imm as u32) & 0xffff_f000)
}

fn j_type(opcode: u32, rd: Reg, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | ((rd.index() as u32) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 0x1) << 31)
}

pub(crate) fn load_funct3(width: LoadWidth) -> u32 {
    match width {
        LoadWidth::Byte => 0b000,
        LoadWidth::Half => 0b001,
        LoadWidth::Word => 0b010,
        LoadWidth::Double => 0b011,
        LoadWidth::ByteU => 0b100,
        LoadWidth::HalfU => 0b101,
        LoadWidth::WordU => 0b110,
    }
}

pub(crate) fn store_funct3(width: StoreWidth) -> u32 {
    match width {
        StoreWidth::Byte => 0b000,
        StoreWidth::Half => 0b001,
        StoreWidth::Word => 0b010,
        StoreWidth::Double => 0b011,
    }
}

pub(crate) fn branch_funct3(cond: BranchCond) -> u32 {
    match cond {
        BranchCond::Eq => 0b000,
        BranchCond::Ne => 0b001,
        BranchCond::Lt => 0b100,
        BranchCond::Ge => 0b101,
        BranchCond::Ltu => 0b110,
        BranchCond::Geu => 0b111,
    }
}

/// Encodes a guest instruction to its 32-bit word.
///
/// # Panics
///
/// Does not panic: out-of-range immediates are truncated to the bits the
/// format can carry (callers that need validation use the
/// [`Assembler`](crate::Assembler), which checks ranges during assembly).
///
/// # Example
///
/// ```
/// use dbt_riscv::{encode, decode, Inst, Reg};
/// let word = encode(&Inst::Jal { rd: Reg::RA, offset: 16 });
/// assert_eq!(decode(word).unwrap(), Inst::Jal { rd: Reg::RA, offset: 16 });
/// ```
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => u_type(OPCODE_LUI, rd, imm),
        Inst::Auipc { rd, imm } => u_type(OPCODE_AUIPC, rd, imm),
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (opcode, funct3, funct7) = match op {
                AluOp::Add => (OPCODE_OP, 0b000, 0x00),
                AluOp::Sub => (OPCODE_OP, 0b000, 0x20),
                AluOp::Sll => (OPCODE_OP, 0b001, 0x00),
                AluOp::Slt => (OPCODE_OP, 0b010, 0x00),
                AluOp::Sltu => (OPCODE_OP, 0b011, 0x00),
                AluOp::Xor => (OPCODE_OP, 0b100, 0x00),
                AluOp::Srl => (OPCODE_OP, 0b101, 0x00),
                AluOp::Sra => (OPCODE_OP, 0b101, 0x20),
                AluOp::Or => (OPCODE_OP, 0b110, 0x00),
                AluOp::And => (OPCODE_OP, 0b111, 0x00),
                AluOp::Mul => (OPCODE_OP, 0b000, 0x01),
                AluOp::Mulh => (OPCODE_OP, 0b001, 0x01),
                AluOp::Div => (OPCODE_OP, 0b100, 0x01),
                AluOp::Divu => (OPCODE_OP, 0b101, 0x01),
                AluOp::Rem => (OPCODE_OP, 0b110, 0x01),
                AluOp::Remu => (OPCODE_OP, 0b111, 0x01),
                AluOp::Addw => (OPCODE_OP_32, 0b000, 0x00),
                AluOp::Subw => (OPCODE_OP_32, 0b000, 0x20),
                AluOp::Mulw => (OPCODE_OP_32, 0b000, 0x01),
            };
            r_type(opcode, funct3, funct7, rd, rs1, rs2)
        }
        Inst::AluImm { op, rd, rs1, imm } => match op {
            AluImmOp::Addi => i_type(OPCODE_OP_IMM, 0b000, rd, rs1, imm),
            AluImmOp::Slti => i_type(OPCODE_OP_IMM, 0b010, rd, rs1, imm),
            AluImmOp::Sltiu => i_type(OPCODE_OP_IMM, 0b011, rd, rs1, imm),
            AluImmOp::Xori => i_type(OPCODE_OP_IMM, 0b100, rd, rs1, imm),
            AluImmOp::Ori => i_type(OPCODE_OP_IMM, 0b110, rd, rs1, imm),
            AluImmOp::Andi => i_type(OPCODE_OP_IMM, 0b111, rd, rs1, imm),
            AluImmOp::Slli => i_type(OPCODE_OP_IMM, 0b001, rd, rs1, imm & 0x3f),
            AluImmOp::Srli => i_type(OPCODE_OP_IMM, 0b101, rd, rs1, imm & 0x3f),
            AluImmOp::Srai => i_type(OPCODE_OP_IMM, 0b101, rd, rs1, (imm & 0x3f) | 0x400),
            AluImmOp::Addiw => i_type(OPCODE_OP_IMM_32, 0b000, rd, rs1, imm),
        },
        Inst::Load { width, rd, rs1, offset } => {
            i_type(OPCODE_LOAD, load_funct3(width), rd, rs1, offset)
        }
        Inst::Store { width, rs2, rs1, offset } => {
            s_type(OPCODE_STORE, store_funct3(width), rs1, rs2, offset)
        }
        Inst::Branch { cond, rs1, rs2, offset } => {
            b_type(OPCODE_BRANCH, branch_funct3(cond), rs1, rs2, offset)
        }
        Inst::Jal { rd, offset } => j_type(OPCODE_JAL, rd, offset),
        Inst::Jalr { rd, rs1, offset } => i_type(OPCODE_JALR, 0b000, rd, rs1, offset),
        Inst::Ecall => i_type(OPCODE_SYSTEM, 0b000, Reg::ZERO, Reg::ZERO, 0),
        Inst::Ebreak => i_type(OPCODE_SYSTEM, 0b000, Reg::ZERO, Reg::ZERO, 1),
        Inst::Fence => i_type(OPCODE_MISC_MEM, 0b000, Reg::ZERO, Reg::ZERO, 0x0ff),
        Inst::RdCycle { rd } => i_type(OPCODE_SYSTEM, 0b010, rd, Reg::ZERO, CSR_CYCLE as i64),
        Inst::CacheFlush { rs1, offset } => i_type(OPCODE_CUSTOM0, 0b000, Reg::ZERO, rs1, offset),
        Inst::Nop => i_type(OPCODE_OP_IMM, 0b000, Reg::ZERO, Reg::ZERO, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nop_is_addi_x0_x0_0() {
        assert_eq!(encode(&Inst::Nop), 0x0000_0013);
    }

    #[test]
    fn known_encodings() {
        // addi a0, a0, 1  => 0x00150513
        assert_eq!(
            encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm: 1 }),
            0x0015_0513
        );
        // add a0, a1, a2 => 0x00c58533
        assert_eq!(
            encode(&Inst::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }),
            0x00c5_8533
        );
        // lw a0, 4(sp) => 0x00412503
        assert_eq!(
            encode(&Inst::Load { width: LoadWidth::Word, rd: Reg::A0, rs1: Reg::SP, offset: 4 }),
            0x0041_2503
        );
        // sd a0, 8(sp) => 0x00a13423
        assert_eq!(
            encode(&Inst::Store {
                width: StoreWidth::Double,
                rs2: Reg::A0,
                rs1: Reg::SP,
                offset: 8
            }),
            0x00a1_3423
        );
        // ecall => 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x0000_0073);
        // ebreak => 0x00100073
        assert_eq!(encode(&Inst::Ebreak), 0x0010_0073);
    }

    #[test]
    fn branch_offset_bits_are_scattered_correctly() {
        // beq x0, x0, -4 (backwards by one instruction)
        let w = encode(&Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            offset: -4,
        });
        assert_eq!(w, 0xfe00_0ee3);
    }

    #[test]
    fn rdcycle_uses_cycle_csr() {
        let w = encode(&Inst::RdCycle { rd: Reg::A0 });
        assert_eq!(w >> 20, CSR_CYCLE);
        assert_eq!(w & 0x7f, OPCODE_SYSTEM);
    }
}
