//! The text-assembly frontend: parse a `.s` source into a [`Program`].
//!
//! The [`Assembler`] builder is how the in-repo workloads and attack
//! proof-of-concepts are written, but it only speaks Rust. This module is
//! the matching *textual* surface, so guest programs can arrive as data —
//! uploaded to the lab daemon, read from a file, pasted from a gadget
//! corpus — without recompiling anything. [`parse_asm`] drives the exact
//! same [`Assembler`] the Rust builders use, so a source file that mirrors
//! a builder's emission sequence assembles to a **byte-identical**
//! [`Program`] (same code words, same data layout, same symbols).
//!
//! # Syntax
//!
//! One statement per line; comments start with `#`, `;` or `//` and run to
//! the end of the line. Labels are `name:` on their own or before an
//! instruction. Registers use ABI names (`a0`, `t3`, `zero`, ...) or
//! `x0`..`x31`. Immediates are decimal or `0x` hex, optionally negative.
//!
//! Data directives (addresses are assigned in directive order, exactly
//! like the corresponding [`Assembler`] calls):
//!
//! | directive | effect |
//! |---|---|
//! | `.data name, len[, align]` | zeroed allocation ([`Assembler::alloc_data_aligned`]) |
//! | `.word name, v, ...` | 64-bit little-endian words ([`Assembler::alloc_data_u64`]) |
//! | `.byte name, b, ...` | raw bytes ([`Assembler::alloc_data_init`]) |
//! | `.ascii name, "text"` | string bytes, `\n` `\t` `\0` `\\` `\"` escapes |
//! | `.equ name, addr` | symbol alias ([`Assembler::define_symbol`]) |
//! | `.reserve n` | extra scratch memory ([`Assembler::reserve_extra_memory`]) |
//!
//! Instructions cover everything the [`Assembler`] emits: the ALU ops,
//! loads/stores (`offset(reg)` operands), `li`/`la`/`mv`/`nop` pseudo-ops,
//! branches (label or raw byte-offset targets), `j`/`call`/`ret`,
//! `ecall`/`ebreak`/`fence`, and the two platform instructions `rdcycle`
//! and `cflush`.

use crate::asm::{AsmError, Assembler, DataRef, Label};
use crate::image::MAX_INGEST_MEMORY;
use crate::inst::{AluImmOp, AluOp, BranchCond, Inst, LoadWidth, StoreWidth};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Largest alignment an untrusted source may request (cache lines are 64
/// bytes; nothing in the repo aligns beyond that).
const MAX_ALIGN: u64 = 4096;

/// Validates an untrusted size/address operand against the ingestion
/// bound (sources are client data: sizes are scalars, so a one-line
/// program could otherwise demand a petabyte guest).
fn bounded_size(value: i64, what: &str) -> Result<u64, String> {
    if !(0..=MAX_INGEST_MEMORY as i64).contains(&value) {
        return Err(format!(
            "{what} {value} is out of range (0..={MAX_INGEST_MEMORY}-byte ingestion limit)"
        ));
    }
    Ok(value as u64)
}

/// Error produced while parsing text assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAsmError {
    /// 1-based source line of the first violation (0 for assembly-stage
    /// errors that have no single line, e.g. an unbound label).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm: {}", self.message)
        } else {
            write!(f, "asm line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TextAsmError {}

/// Parses a complete text-assembly source into a [`Program`].
///
/// # Errors
///
/// Returns a [`TextAsmError`] naming the offending line: unknown
/// mnemonics or registers, malformed operands, duplicate or unbound
/// labels, out-of-range offsets.
pub fn parse_asm(source: &str) -> Result<Program, TextAsmError> {
    let mut parser = TextAsm::new();
    for (index, raw) in source.lines().enumerate() {
        let line = index + 1;
        let at = |message: String| TextAsmError { line, message };
        let stripped = strip_comment(raw).trim();
        if stripped.is_empty() {
            continue;
        }
        parser.statement(stripped).map_err(at)?;
    }
    if let Some(name) = parser.labels.keys().find(|name| !parser.bound.contains(name.as_str())) {
        return Err(TextAsmError {
            line: 0,
            message: format!("label `{name}` is referenced but never defined"),
        });
    }
    parser.asm.assemble().map_err(|e: AsmError| TextAsmError { line: 0, message: e.to_string() })
}

fn strip_comment(line: &str) -> &str {
    // Quotes may contain comment characters (`.ascii msg, "# no"`).
    let mut in_string = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b'\\' if in_string => i += 1,
            b'#' | b';' if !in_string => return &line[..i],
            b'/' if !in_string && bytes.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

struct TextAsm {
    asm: Assembler,
    labels: HashMap<String, Label>,
    bound: std::collections::HashSet<String>,
    data: HashMap<String, DataRef>,
}

impl TextAsm {
    fn new() -> TextAsm {
        TextAsm {
            asm: Assembler::new(),
            labels: HashMap::new(),
            bound: std::collections::HashSet::new(),
            data: HashMap::new(),
        }
    }

    fn statement(&mut self, text: &str) -> Result<(), String> {
        // A leading `name:` binds a label; the rest of the line (if any) is
        // parsed as a further statement.
        if let Some((head, rest)) = text.split_once(':') {
            let head = head.trim();
            if is_ident(head) && !rest.starts_with(':') {
                let label = self.label(head);
                if !self.bound.insert(head.to_string()) {
                    return Err(format!("label `{head}` is defined twice"));
                }
                self.asm.bind(label);
                let rest = rest.trim();
                if rest.is_empty() {
                    return Ok(());
                }
                return self.statement(rest);
            }
        }
        if let Some(directive) = text.strip_prefix('.') {
            return self.directive(directive);
        }
        self.instruction(text)
    }

    /// Enforces the ingestion bound on the *cumulative* data section
    /// (alignment padding included): many individually-legal allocations
    /// must not add up past the limit either.
    fn bound_data(&self, last: DataRef) -> Result<(), String> {
        let end = last.addr() + last.len() - Assembler::DATA_BASE;
        if end > MAX_INGEST_MEMORY {
            return Err(format!(
                "data section grows to {end} bytes, above the \
                 {MAX_INGEST_MEMORY}-byte ingestion limit"
            ));
        }
        Ok(())
    }

    fn label(&mut self, name: &str) -> Label {
        if let Some(label) = self.labels.get(name) {
            return *label;
        }
        let label = self.asm.new_label();
        self.labels.insert(name.to_string(), label);
        label
    }

    fn directive(&mut self, text: &str) -> Result<(), String> {
        let (name, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let operands = split_operands(rest);
        match name {
            "data" => {
                let (sym, rest) = take_ident(&operands, "`.data` needs a symbol name")?;
                let (len, rest) = take_imm(rest, "`.data` needs a length")?;
                let len = bounded_size(len, "`.data` length")?;
                let align = match rest {
                    [] => 8,
                    [one] => {
                        let align = parse_imm(one)?;
                        if !(1..=MAX_ALIGN as i64).contains(&align) {
                            return Err(format!(
                                "alignment {align} is out of range (1..={MAX_ALIGN})"
                            ));
                        }
                        align as u64
                    }
                    _ => return Err("`.data` takes name, len and an optional alignment".into()),
                };
                if !align.is_power_of_two() {
                    return Err(format!("alignment {align} is not a power of two"));
                }
                let r = self.asm.alloc_data_aligned(sym, len, align);
                self.bound_data(r)?;
                self.data.insert(sym.to_string(), r);
            }
            "word" => {
                let (sym, rest) = take_ident(&operands, "`.word` needs a symbol name")?;
                let words =
                    rest.iter()
                        .map(|w| parse_imm(w).map(|v| v as u64))
                        .collect::<Result<Vec<u64>, String>>()?;
                let r = self.asm.alloc_data_u64(sym, &words);
                self.bound_data(r)?;
                self.data.insert(sym.to_string(), r);
            }
            "byte" => {
                let (sym, rest) = take_ident(&operands, "`.byte` needs a symbol name")?;
                let bytes = rest
                    .iter()
                    .map(|b| {
                        let v = parse_imm(b)?;
                        u8::try_from(v).map_err(|_| format!("`{b}` does not fit a byte"))
                    })
                    .collect::<Result<Vec<u8>, String>>()?;
                let r = self.asm.alloc_data_init(sym, &bytes);
                self.bound_data(r)?;
                self.data.insert(sym.to_string(), r);
            }
            "ascii" => {
                let (sym, rest) = take_ident(&operands, "`.ascii` needs a symbol name")?;
                let [literal] = rest else {
                    return Err("`.ascii` takes a symbol name and one quoted string".into());
                };
                let bytes = parse_string(literal)?;
                let r = self.asm.alloc_data_init(sym, &bytes);
                self.bound_data(r)?;
                self.data.insert(sym.to_string(), r);
            }
            "equ" => {
                let (sym, rest) = take_ident(&operands, "`.equ` needs a symbol name")?;
                let (addr, rest) = take_imm(rest, "`.equ` needs an address")?;
                if !rest.is_empty() {
                    return Err("`.equ` takes a symbol name and one address".into());
                }
                self.asm.define_symbol(sym, bounded_size(addr, "`.equ` address")?);
            }
            "reserve" => {
                let [amount] = operands.as_slice() else {
                    return Err("`.reserve` takes one byte count".into());
                };
                let amount = bounded_size(parse_imm(amount)?, "`.reserve` amount")?;
                self.asm.reserve_extra_memory(amount);
            }
            other => return Err(format!("unknown directive `.{other}`")),
        }
        Ok(())
    }

    fn instruction(&mut self, text: &str) -> Result<(), String> {
        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let ops = split_operands(rest);
        let ops: Vec<&str> = ops.iter().map(String::as_str).collect();

        if let Some(op) = alu_op(mnemonic) {
            let [rd, rs1, rs2] = expect(&ops, mnemonic)?;
            self.asm.emit(Inst::Alu { op, rd: reg(rd)?, rs1: reg(rs1)?, rs2: reg(rs2)? });
            return Ok(());
        }
        if let Some(op) = alu_imm_op(mnemonic) {
            let [rd, rs1, imm] = expect(&ops, mnemonic)?;
            self.asm.emit(Inst::AluImm { op, rd: reg(rd)?, rs1: reg(rs1)?, imm: parse_imm(imm)? });
            return Ok(());
        }
        if let Some(width) = load_width(mnemonic) {
            let [rd, mem] = expect(&ops, mnemonic)?;
            let (offset, rs1) = parse_mem(mem)?;
            self.asm.emit(Inst::Load { width, rd: reg(rd)?, rs1, offset });
            return Ok(());
        }
        if let Some(width) = store_width(mnemonic) {
            let [rs2, mem] = expect(&ops, mnemonic)?;
            let (offset, rs1) = parse_mem(mem)?;
            self.asm.emit(Inst::Store { width, rs2: reg(rs2)?, rs1, offset });
            return Ok(());
        }
        if let Some(cond) = branch_cond(mnemonic) {
            let [rs1, rs2, target] = expect(&ops, mnemonic)?;
            return self.branch(cond, reg(rs1)?, reg(rs2)?, target);
        }
        match mnemonic {
            "li" => {
                let [rd, imm] = expect(&ops, mnemonic)?;
                self.asm.li(reg(rd)?, parse_imm(imm)?);
            }
            "la" => {
                let [rd, sym] = expect(&ops, mnemonic)?;
                let rd = reg(rd)?;
                match self.data.get(sym) {
                    Some(data) => self.asm.la(rd, *data),
                    None => return Err(format!("`la` target `{sym}` is not a data symbol")),
                }
            }
            "mv" => {
                let [rd, rs] = expect(&ops, mnemonic)?;
                self.asm.mv(reg(rd)?, reg(rs)?);
            }
            "nop" => {
                expect::<0>(&ops, mnemonic)?;
                self.asm.nop();
            }
            "bnez" | "beqz" => {
                let [rs1, target] = expect(&ops, mnemonic)?;
                let cond = if mnemonic == "bnez" { BranchCond::Ne } else { BranchCond::Eq };
                return self.branch(cond, reg(rs1)?, Reg::ZERO, target);
            }
            "j" => {
                let [target] = expect(&ops, mnemonic)?;
                match parse_imm(target) {
                    Ok(offset) => self.asm.emit(Inst::Jal { rd: Reg::ZERO, offset }),
                    Err(_) => {
                        let label = self.jump_target(target)?;
                        self.asm.jump(label);
                    }
                }
            }
            "call" => {
                let [target] = expect(&ops, mnemonic)?;
                let label = self.jump_target(target)?;
                self.asm.call(label);
            }
            "jal" => {
                let [rd, offset] = expect(&ops, mnemonic)?;
                self.asm.emit(Inst::Jal { rd: reg(rd)?, offset: parse_imm(offset)? });
            }
            "jalr" => {
                let [rd, mem] = expect(&ops, mnemonic)?;
                let (offset, rs1) = parse_mem(mem)?;
                self.asm.emit(Inst::Jalr { rd: reg(rd)?, rs1, offset });
            }
            "ret" => {
                expect::<0>(&ops, mnemonic)?;
                self.asm.ret();
            }
            "lui" | "auipc" => {
                let [rd, imm] = expect(&ops, mnemonic)?;
                let (rd, imm) = (reg(rd)?, parse_imm(imm)?);
                self.asm.emit(if mnemonic == "lui" {
                    Inst::Lui { rd, imm }
                } else {
                    Inst::Auipc { rd, imm }
                });
            }
            "rdcycle" => {
                let [rd] = expect(&ops, mnemonic)?;
                self.asm.rdcycle(reg(rd)?);
            }
            "cflush" => {
                let [mem] = expect(&ops, mnemonic)?;
                let (offset, rs1) = parse_mem(mem)?;
                self.asm.cflush(rs1, offset);
            }
            "ecall" => {
                expect::<0>(&ops, mnemonic)?;
                self.asm.ecall();
            }
            "ebreak" => {
                expect::<0>(&ops, mnemonic)?;
                self.asm.ebreak();
            }
            "fence" => {
                expect::<0>(&ops, mnemonic)?;
                self.asm.fence();
            }
            other => return Err(format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }

    /// A branch target: a label name, or a raw byte offset (the form the
    /// instruction `Display` prints), emitted without label resolution.
    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> Result<(), String> {
        match parse_imm(target) {
            Ok(offset) => self.asm.emit(Inst::Branch { cond, rs1, rs2, offset }),
            Err(_) => {
                let label = self.jump_target(target)?;
                self.asm.branch(cond, rs1, rs2, label);
            }
        }
        Ok(())
    }

    fn jump_target(&mut self, name: &str) -> Result<Label, String> {
        if !is_ident(name) {
            return Err(format!("`{name}` is not a label name"));
        }
        Ok(self.label(name))
    }
}

fn is_ident(text: &str) -> bool {
    !text.is_empty()
        && text.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_operands(text: &str) -> Vec<String> {
    let text = text.trim();
    if text.is_empty() {
        return Vec::new();
    }
    // Commas inside string literals do not separate operands.
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '\\' if in_string => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            ',' if !in_string => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    out.push(current.trim().to_string());
    out
}

fn expect<'o, const N: usize>(ops: &[&'o str], mnemonic: &str) -> Result<[&'o str; N], String> {
    if ops.len() != N {
        return Err(format!("`{mnemonic}` takes {N} operand(s), got {}", ops.len()));
    }
    let mut out = [""; N];
    out.copy_from_slice(ops);
    Ok(out)
}

fn take_ident<'o>(
    operands: &'o [String],
    missing: &str,
) -> Result<(&'o str, &'o [String]), String> {
    let (first, rest) = operands.split_first().ok_or_else(|| missing.to_string())?;
    if !is_ident(first) {
        return Err(format!("`{first}` is not a symbol name"));
    }
    Ok((first, rest))
}

fn take_imm<'o>(operands: &'o [String], missing: &str) -> Result<(i64, &'o [String]), String> {
    let (first, rest) = operands.split_first().ok_or_else(|| missing.to_string())?;
    Ok((parse_imm(first)?, rest))
}

fn parse_imm(text: &str) -> Result<i64, String> {
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = match digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        Some(hex) => i64::from_str_radix(hex, 16),
        None => digits.parse::<i64>(),
    }
    .map_err(|_| format!("`{text}` is not a number"))?;
    Ok(if negative { -value } else { value })
}

fn parse_mem(text: &str) -> Result<(i64, Reg), String> {
    let (offset, rest) =
        text.split_once('(').ok_or_else(|| format!("`{text}` is not an `offset(reg)` operand"))?;
    let base = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("`{text}` is missing its closing parenthesis"))?;
    let offset = if offset.trim().is_empty() { 0 } else { parse_imm(offset.trim())? };
    Ok((offset, reg(base.trim())?))
}

fn reg(name: &str) -> Result<Reg, String> {
    if let Some(index) = name.strip_prefix('x').and_then(|i| i.parse::<u8>().ok()) {
        return Reg::from_index(index).ok_or_else(|| format!("register `{name}` out of range"));
    }
    Reg::all().find(|r| r.abi_name() == name).ok_or_else(|| format!("`{name}` is not a register"))
}

fn parse_string(literal: &str) -> Result<Vec<u8>, String> {
    let inner = literal
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("`{literal}` is not a quoted string"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => return Err(format!("unknown string escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "sll" => AluOp::Sll,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "xor" => AluOp::Xor,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "or" => AluOp::Or,
        "and" => AluOp::And,
        "mul" => AluOp::Mul,
        "mulh" => AluOp::Mulh,
        "div" => AluOp::Div,
        "divu" => AluOp::Divu,
        "rem" => AluOp::Rem,
        "remu" => AluOp::Remu,
        "addw" => AluOp::Addw,
        "subw" => AluOp::Subw,
        "mulw" => AluOp::Mulw,
        _ => return None,
    })
}

fn alu_imm_op(mnemonic: &str) -> Option<AluImmOp> {
    Some(match mnemonic {
        "addi" => AluImmOp::Addi,
        "slti" => AluImmOp::Slti,
        "sltiu" => AluImmOp::Sltiu,
        "xori" => AluImmOp::Xori,
        "ori" => AluImmOp::Ori,
        "andi" => AluImmOp::Andi,
        "slli" => AluImmOp::Slli,
        "srli" => AluImmOp::Srli,
        "srai" => AluImmOp::Srai,
        "addiw" => AluImmOp::Addiw,
        _ => return None,
    })
}

fn load_width(mnemonic: &str) -> Option<LoadWidth> {
    Some(match mnemonic {
        "lb" => LoadWidth::Byte,
        "lbu" => LoadWidth::ByteU,
        "lh" => LoadWidth::Half,
        "lhu" => LoadWidth::HalfU,
        "lw" => LoadWidth::Word,
        "lwu" => LoadWidth::WordU,
        "ld" => LoadWidth::Double,
        _ => return None,
    })
}

fn store_width(mnemonic: &str) -> Option<StoreWidth> {
    Some(match mnemonic {
        "sb" => StoreWidth::Byte,
        "sh" => StoreWidth::Half,
        "sw" => StoreWidth::Word,
        "sd" => StoreWidth::Double,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    Some(match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExitReason, Interpreter};

    #[test]
    fn a_hand_written_source_mirrors_the_builder_byte_for_byte() {
        let source = r#"
            # The builder twin of this file lives right below.
            .word table, 7, 9
            .data out, 8

            j main                   ; skip the helper
        double:
            slli a0, a0, 1
            ret
        main:
            la t0, table
            ld a0, 8(t0)
            call double
            la t1, out
            sd a0, 0(t1)
            ecall
        "#;
        let parsed = parse_asm(source).unwrap();

        let mut asm = Assembler::new();
        let table = asm.alloc_data_u64("table", &[7, 9]);
        let out = asm.alloc_data("out", 8);
        let double = asm.new_label();
        let main = asm.new_label();
        asm.jump(main);
        asm.bind(double);
        asm.slli(Reg::A0, Reg::A0, 1);
        asm.ret();
        asm.bind(main);
        asm.la(Reg::T0, table);
        asm.ld(Reg::A0, Reg::T0, 8);
        asm.call(double);
        asm.la(Reg::T1, out);
        asm.sd(Reg::A0, Reg::T1, 0);
        asm.ecall();
        let built = asm.assemble().unwrap();

        assert_eq!(parsed, built, "text and builder must produce identical programs");
        assert_eq!(parsed.fingerprint(), built.fingerprint());

        let mut interp = Interpreter::new(&parsed);
        assert_eq!(interp.run(1_000).unwrap(), ExitReason::Ecall);
        assert_eq!(interp.memory().load_u64(parsed.symbol("out").unwrap()).unwrap(), 18);
    }

    #[test]
    fn directives_cover_every_allocation_form() {
        let source = r#"
            .data buf, 16, 64
            .byte raw, 1, 2, 0xff
            .ascii msg, "hi\n\0"
            .equ alias, 0x2000
            .reserve 0x20000
            la a0, msg
            lbu a1, 1(a0)
            ecall
        "#;
        let program = parse_asm(source).unwrap();
        assert_eq!(program.symbol("buf").unwrap() % 64, 0, "alignment honoured");
        assert_eq!(program.symbol("alias"), Some(0x2000));
        let mem = program.build_memory().unwrap();
        let msg = program.symbol("msg").unwrap();
        assert_eq!(mem.load_u8(msg).unwrap(), b'h');
        assert_eq!(mem.load_u8(msg + 2).unwrap(), b'\n');
        assert_eq!(mem.load_u8(msg + 3).unwrap(), 0);
        let raw = program.symbol("raw").unwrap();
        assert_eq!(mem.load_u8(raw + 2).unwrap(), 0xff);
    }

    #[test]
    fn raw_offset_branches_match_display_output() {
        // Every instruction Display prints must parse back (labels aside).
        let source = "addi t0, zero, 2\nbne t0, zero, -4\nbltu a0, a1, 8\njal zero, 4\necall\n";
        let program = parse_asm(source).unwrap();
        assert_eq!(
            program.code()[1],
            Inst::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -4 }
        );
        assert_eq!(program.code()[3], Inst::Jal { rd: Reg::ZERO, offset: 4 });
    }

    #[test]
    fn numeric_registers_and_comments_parse() {
        let program = parse_asm("addi x10, x0, 5 // five\nnop ; pad\necall").unwrap();
        assert_eq!(
            program.code()[0],
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 5 }
        );
        assert_eq!(program.code()[1], Inst::Nop);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_asm("nop\nfrobnicate a0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"), "{err}");

        let err = parse_asm("addi a0, zero\n").unwrap_err();
        assert!(err.message.contains("operand"), "{err}");

        let err = parse_asm("lb a0, 4[t0]\n").unwrap_err();
        assert!(err.message.contains("offset(reg)"), "{err}");

        let err = parse_asm("beq a0, a1, nowhere\necall\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("nowhere"), "{err}");

        let err = parse_asm("dup:\ndup:\necall\n").unwrap_err();
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn la_of_an_unknown_symbol_is_rejected() {
        let err = parse_asm("la a0, nothing\necall\n").unwrap_err();
        assert!(err.message.contains("nothing"), "{err}");
    }

    #[test]
    fn hostile_sizes_are_rejected_at_parse_time() {
        // A tiny source must not be able to demand a huge guest: sizes
        // are validated before anything is allocated.
        for source in [
            ".data x, 9223372036854775807\necall\n",
            ".data x, -1\necall\n",
            ".data x, 8, 9223372036854775807\necall\n",
            ".data x, 8, -8\necall\n",
            ".reserve 9223372036854775807\necall\n",
            ".equ x, -1\necall\n",
        ] {
            let err = parse_asm(source).unwrap_err();
            assert!(err.message.contains("out of range"), "{source}: {err}");
        }
        // Many individually-legal allocations must not add up past the
        // bound either.
        let mut source = String::new();
        for i in 0..3 {
            source.push_str(&format!(".data big{i}, {}\n", MAX_INGEST_MEMORY / 2));
        }
        source.push_str("ecall\n");
        let err = parse_asm(&source).unwrap_err();
        assert!(err.message.contains("ingestion limit"), "{err}");
        // The bound leaves every realistic program untouched.
        assert!(parse_asm(".data ok, 65536\necall\n").is_ok());
    }
}
