//! Guest-side ISA model for the DBT-based processor reproduction of
//! *GhostBusters: Mitigating Spectre Attacks on a DBT-Based Processor*
//! (Rokicki, DATE 2020).
//!
//! This crate models the **guest** architecture that the Dynamic Binary
//! Translation (DBT) engine consumes: a pragmatic subset of RISC-V rv64im
//! extended with the two instructions the paper's proof-of-concept attacks
//! rely on (reading the cycle CSR and flushing a data-cache line).
//!
//! It provides:
//!
//! * [`Reg`], [`Inst`] — the instruction set ([`inst`]);
//! * [`encode()`] / [`decode()`] — binary encoding to and from 32-bit words;
//! * [`Assembler`] — a label-resolving program builder used by the attack
//!   proof-of-concepts and the Polybench-style workloads ([`asm`]);
//! * [`GuestMemory`] — a flat little-endian guest memory image ([`memory`]);
//! * [`Program`] — a loadable guest program (code + data + symbols);
//! * [`parse_asm()`] — a text-assembly frontend, so guest programs can
//!   arrive as `.s` sources instead of Rust builder calls ([`text`]);
//! * [`Program::to_image`] / [`Program::from_image`] — the stable,
//!   versioned program-image JSON codec ([`image`]);
//! * [`Interpreter`] — a simple reference instruction-set simulator used for
//!   differential testing of the DBT engine ([`interp`]).
//!
//! # Example
//!
//! ```
//! use dbt_riscv::{Assembler, Reg, Interpreter, ExitReason};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! let result = asm.alloc_data("result", 8);
//! asm.li(Reg::A0, 21);
//! asm.addi(Reg::A0, Reg::A0, 21);
//! asm.la(Reg::A1, result);
//! asm.sd(Reg::A0, Reg::A1, 0);
//! asm.ecall();
//! let program = asm.assemble()?;
//!
//! let mut interp = Interpreter::new(&program);
//! let exit = interp.run(1_000)?;
//! assert_eq!(exit, ExitReason::Ecall);
//! assert_eq!(interp.memory().load_u64(program.symbol("result").unwrap())?, 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod decode;
pub mod encode;
pub mod image;
pub mod inst;
pub mod interp;
pub mod memory;
pub mod program;
pub mod reg;
pub mod text;

pub use asm::{AsmError, Assembler, DataRef, Label};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use image::{ImageError, IMAGE_SCHEMA, MAX_INGEST_MEMORY};
pub use inst::{BranchCond, Inst, LoadWidth, StoreWidth};
pub use interp::{ExecError, ExitReason, Interpreter};
pub use memory::{GuestMemory, MemError};
pub use program::{Program, ProgramError};
pub use reg::Reg;
pub use text::{parse_asm, TextAsmError};
