//! Loadable guest programs: code, data image and symbol table.

use crate::decode::{decode, DecodeError};
use crate::encode::encode;
use crate::inst::Inst;
use crate::memory::GuestMemory;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced when building or loading a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program counter fell outside the code section.
    PcOutOfRange {
        /// Faulting program counter.
        pc: u64,
    },
    /// The fetched word failed to decode.
    Decode(DecodeError),
    /// The requested memory image is too small to hold code and data.
    ImageTooSmall {
        /// Required size in bytes.
        required: u64,
        /// Provided size in bytes.
        provided: u64,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::PcOutOfRange { pc } => write!(f, "program counter {pc:#x} outside code"),
            ProgramError::Decode(e) => write!(f, "{e}"),
            ProgramError::ImageTooSmall { required, provided } => {
                write!(f, "memory image of {provided:#x} bytes cannot hold {required:#x} bytes")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<DecodeError> for ProgramError {
    fn from(e: DecodeError) -> Self {
        ProgramError::Decode(e)
    }
}

/// A complete guest program: code section, initial data image, entry point
/// and symbol table.
///
/// Programs are usually produced by the [`Assembler`](crate::Assembler) and
/// consumed either by the reference [`Interpreter`](crate::Interpreter) or by
/// the DBT platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Guest address of the first code byte.
    code_base: u64,
    /// Decoded instructions, contiguous from `code_base`.
    code: Vec<Inst>,
    /// Guest address of the first data byte.
    data_base: u64,
    /// Initial contents of the data section.
    data: Vec<u8>,
    /// Entry point (guest address).
    entry: u64,
    /// Total guest memory size required to run the program.
    memory_size: u64,
    /// Named addresses (data symbols and code labels).
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Creates a program from its parts.
    ///
    /// `memory_size` is rounded up so that both the code and data sections
    /// fit.
    pub fn new(
        code_base: u64,
        code: Vec<Inst>,
        data_base: u64,
        data: Vec<u8>,
        entry: u64,
        memory_size: u64,
        symbols: BTreeMap<String, u64>,
    ) -> Program {
        let code_end = code_base + 4 * code.len() as u64;
        let data_end = data_base + data.len() as u64;
        let memory_size = memory_size.max(code_end).max(data_end);
        Program { code_base, code, data_base, data, entry, memory_size, symbols }
    }

    /// Guest address of the first instruction.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// The decoded code section.
    pub fn code(&self) -> &[Inst] {
        &self.code
    }

    /// Guest address one past the last instruction.
    pub fn code_end(&self) -> u64 {
        self.code_base + 4 * self.code.len() as u64
    }

    /// Guest address of the first data byte.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Initial contents of the data section.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Entry point.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Total guest memory footprint in bytes.
    pub fn memory_size(&self) -> u64 {
        self.memory_size
    }

    /// Looks up a named symbol (data buffer or code label).
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fetches the instruction at guest address `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::PcOutOfRange`] if `pc` is outside the code
    /// section or not 4-byte aligned.
    pub fn fetch(&self, pc: u64) -> Result<Inst, ProgramError> {
        if pc < self.code_base || pc >= self.code_end() || !(pc - self.code_base).is_multiple_of(4)
        {
            return Err(ProgramError::PcOutOfRange { pc });
        }
        let index = ((pc - self.code_base) / 4) as usize;
        Ok(self.code[index])
    }

    /// Builds the initial guest memory image: code encoded at `code_base`,
    /// data copied at `data_base`, everything else zero.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::ImageTooSmall`] if the program's own
    /// `memory_size` is inconsistent (cannot happen for programs built by
    /// the assembler).
    pub fn build_memory(&self) -> Result<GuestMemory, ProgramError> {
        let mut mem = GuestMemory::new(self.memory_size as usize);
        for (i, inst) in self.code.iter().enumerate() {
            let addr = self.code_base + 4 * i as u64;
            mem.store_u32(addr, encode(inst)).map_err(|_| ProgramError::ImageTooSmall {
                required: self.code_end(),
                provided: self.memory_size,
            })?;
        }
        mem.write_bytes(self.data_base, &self.data).map_err(|_| ProgramError::ImageTooSmall {
            required: self.data_base + self.data.len() as u64,
            provided: self.memory_size,
        })?;
        Ok(mem)
    }

    /// Re-decodes the code section out of a memory image (used by the DBT
    /// engine, which — like the real system — reads guest binaries from
    /// memory rather than from a structured program).
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError::Decode`] error if a word in the given range
    /// is not a valid instruction.
    pub fn decode_range(
        mem: &GuestMemory,
        base: u64,
        len_words: usize,
    ) -> Result<Vec<Inst>, ProgramError> {
        let mut out = Vec::with_capacity(len_words);
        for i in 0..len_words {
            let word = mem
                .load_u32(base + 4 * i as u64)
                .map_err(|_| ProgramError::PcOutOfRange { pc: base + 4 * i as u64 })?;
            out.push(decode(word)?);
        }
        Ok(out)
    }

    /// A stable 64-bit fingerprint of the program's entire content: code,
    /// data image, section bases, entry point, memory footprint and
    /// symbol table.
    ///
    /// Two programs with equal fingerprints are identical: they assemble
    /// byte-identical guest images *and* locate observables (the symbol
    /// table is how a run's outputs — e.g. the attacks' `recovered`
    /// buffer — are read back) at the same names. This makes the
    /// fingerprint a sound content address everywhere one is needed: the
    /// program half of the translation-service and run-memo keys, and
    /// the identity the `ProgramStore` deduplicates uploads by.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        // DefaultHasher with the default keys is deterministic within a
        // process, which is the only scope the fingerprint is used in.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.code_base.hash(&mut hasher);
        self.code.hash(&mut hasher);
        self.data_base.hash(&mut hasher);
        self.data.hash(&mut hasher);
        self.entry.hash(&mut hasher);
        self.memory_size.hash(&mut hasher);
        self.symbols.hash(&mut hasher);
        hasher.finish()
    }

    /// Number of instructions in the code section.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` if the program has no code.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; entry {:#x}, {} instructions", self.entry, self.code.len())?;
        for (i, inst) in self.code.iter().enumerate() {
            writeln!(f, "{:#8x}: {inst}", self.code_base + 4 * i as u64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluImmOp;
    use crate::reg::Reg;

    fn sample_program() -> Program {
        let code = vec![
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 7 },
            Inst::Ecall,
        ];
        Program::new(0x1000, code, 0x2000, vec![1, 2, 3], 0x1000, 0x4000, BTreeMap::new())
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = sample_program();
        assert!(p.fetch(0x1000).is_ok());
        assert!(p.fetch(0x1004).is_ok());
        assert!(p.fetch(0x1008).is_err());
        assert!(p.fetch(0x0ffc).is_err());
        assert!(p.fetch(0x1002).is_err());
    }

    #[test]
    fn memory_image_contains_code_and_data() {
        let p = sample_program();
        let mem = p.build_memory().unwrap();
        assert_eq!(mem.len(), 0x4000);
        assert_eq!(decode(mem.load_u32(0x1000).unwrap()).unwrap(), p.code()[0]);
        assert_eq!(mem.load_u8(0x2000).unwrap(), 1);
        assert_eq!(mem.load_u8(0x2002).unwrap(), 3);
    }

    #[test]
    fn decode_range_roundtrips_code() {
        let p = sample_program();
        let mem = p.build_memory().unwrap();
        let insts = Program::decode_range(&mem, p.code_base(), p.len()).unwrap();
        assert_eq!(insts, p.code());
    }

    #[test]
    fn memory_size_is_grown_to_fit() {
        let code = vec![Inst::Ecall];
        let p = Program::new(0, code, 0x100, vec![0; 64], 0, 0, BTreeMap::new());
        assert!(p.memory_size() >= 0x140);
    }

    #[test]
    fn fingerprint_tracks_translation_relevant_content() {
        let a = sample_program();
        let b = sample_program();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal programs share a fingerprint");
        let code = vec![
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 8 },
            Inst::Ecall,
        ];
        let c = Program::new(0x1000, code, 0x2000, vec![1, 2, 3], 0x1000, 0x4000, BTreeMap::new());
        assert_ne!(a.fingerprint(), c.fingerprint(), "code changes change the fingerprint");
        let d = Program::new(
            0x1000,
            a.code().to_vec(),
            0x2000,
            vec![1, 2, 4],
            0x1000,
            0x4000,
            BTreeMap::new(),
        );
        assert_ne!(a.fingerprint(), d.fingerprint(), "data changes change the fingerprint");
        let mut symbols = BTreeMap::new();
        symbols.insert("out".to_string(), 0x2000);
        let e =
            Program::new(0x1000, a.code().to_vec(), 0x2000, vec![1, 2, 3], 0x1000, 0x4000, symbols);
        assert_ne!(
            a.fingerprint(),
            e.fingerprint(),
            "symbols locate a run's observables, so they are identity too"
        );
    }

    #[test]
    fn display_lists_instructions() {
        let p = sample_program();
        let text = p.to_string();
        assert!(text.contains("ecall"));
        assert!(text.contains("0x1004"));
    }
}
