//! Set-associative tag store with true-LRU replacement.

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    valid: bool,
    tag: u64,
    /// Monotonic timestamp of the last access; the smallest value in a set
    /// is the LRU victim.
    last_used: u64,
}

impl Way {
    const EMPTY: Way = Way { valid: false, tag: 0, last_used: 0 };
}

/// A set-associative cache tag store.
///
/// Only residency is modelled (no data array): a lookup either hits an
/// existing line or allocates it, evicting the least-recently-used way.
///
/// # Example
///
/// ```
/// use dbt_cache::{CacheConfig, SetAssocCache};
/// let mut cache = SetAssocCache::new(CacheConfig::tiny());
/// assert!(!cache.lookup(0x40));
/// cache.fill(0x40);
/// assert!(cache.lookup(0x40));
/// cache.flush_line(0x40);
/// assert!(!cache.lookup(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    ways: Vec<Way>,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `config.is_valid()` is false.
    pub fn new(config: CacheConfig) -> SetAssocCache {
        assert!(config.is_valid(), "invalid cache configuration: {config:?}");
        SetAssocCache { config, ways: vec![Way::EMPTY; config.sets * config.ways], clock: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.config.set_index(addr);
        let start = set * self.config.ways;
        start..start + self.config.ways
    }

    /// Returns `true` if the line containing `addr` is resident, updating
    /// LRU state on a hit.
    pub fn lookup(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let tag = self.config.tag(addr);
        let clock = self.clock;
        let range = self.set_range(addr);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.last_used = clock;
                return true;
            }
        }
        false
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// touching LRU state (used by tests and statistics).
    pub fn contains(&self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        self.ways[self.set_range(addr)].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Allocates the line containing `addr`, evicting the LRU way if needed.
    ///
    /// Returns the base address of the evicted line, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.clock += 1;
        let tag = self.config.tag(addr);
        let clock = self.clock;
        let set = self.config.set_index(addr) as u64;
        let range = self.set_range(addr);
        // Already present: refresh.
        for way in &mut self.ways[range.clone()] {
            if way.valid && way.tag == tag {
                way.last_used = clock;
                return None;
            }
        }
        // Free way?
        if let Some(way) = self.ways[range.clone()].iter_mut().find(|w| !w.valid) {
            *way = Way { valid: true, tag, last_used: clock };
            return None;
        }
        // Evict LRU.
        let victim = self.ways[range]
            .iter_mut()
            .min_by_key(|w| w.last_used)
            .expect("associativity is non-zero");
        let evicted_line = (victim.tag * self.config.sets as u64 + set) * self.config.line_size;
        *victim = Way { valid: true, tag, last_used: clock };
        Some(evicted_line)
    }

    /// Invalidates the line containing `addr`, if resident.
    ///
    /// Returns `true` if a line was actually invalidated.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let tag = self.config.tag(addr);
        let range = self.set_range(addr);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates every line.
    pub fn flush_all(&mut self) {
        for way in &mut self.ways {
            way.valid = false;
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = SetAssocCache::new(CacheConfig::tiny());
        assert!(!c.lookup(0x100));
        assert_eq!(c.fill(0x100), None);
        assert!(c.lookup(0x100));
        assert!(c.lookup(0x10f)); // same 16-byte line
        assert!(!c.lookup(0x110)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        // tiny: 4 sets, 2 ways, 16-byte lines. Addresses mapping to set 0
        // are multiples of 64.
        let mut c = SetAssocCache::new(CacheConfig::tiny());
        c.fill(0); // line A
        c.fill(64); // line B
        assert!(c.contains(0) && c.contains(64));
        // Touch A so B becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(128); // line C evicts B
        assert_eq!(evicted, Some(64));
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128));
    }

    #[test]
    fn flush_line_only_affects_its_line() {
        let mut c = SetAssocCache::new(CacheConfig::tiny());
        c.fill(0);
        c.fill(16);
        assert!(c.flush_line(0));
        assert!(!c.flush_line(0));
        assert!(!c.contains(0));
        assert!(c.contains(16));
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = SetAssocCache::new(CacheConfig::tiny());
        for i in 0..8 {
            c.fill(i * 16);
        }
        assert!(c.resident_lines() > 0);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let cfg = CacheConfig::tiny();
        let mut c = SetAssocCache::new(cfg);
        for i in 0..1000u64 {
            c.fill(i * cfg.line_size);
        }
        assert_eq!(c.resident_lines(), cfg.sets * cfg.ways);
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn invalid_config_panics() {
        let mut cfg = CacheConfig::tiny();
        cfg.line_size = 3;
        let _ = SetAssocCache::new(cfg);
    }

    #[test]
    fn refilling_resident_line_does_not_evict() {
        let mut c = SetAssocCache::new(CacheConfig::tiny());
        c.fill(0);
        c.fill(64);
        assert_eq!(c.fill(0), None);
        assert!(c.contains(64));
    }
}
