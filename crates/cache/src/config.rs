//! Cache geometry and latency configuration.

/// Geometry and timing of the simulated L1 data cache.
///
/// The defaults model a small embedded L1: 16 KiB, 4-way, 64-byte lines,
/// 2-cycle hits and 60-cycle misses (main-memory latency). The large gap
/// between hit and miss latency is what makes the flush+reload side channel
/// trivially observable — the same property holds on the in-order cores the
/// paper studies, where timing is very stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency of a miss (line fill from memory), in cycles.
    pub miss_latency: u64,
}

impl CacheConfig {
    /// A 16 KiB, 4-way, 64-byte-line cache with a 2/60 cycle hit/miss split.
    pub fn new() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, line_size: 64, hit_latency: 2, miss_latency: 60 }
    }

    /// A tiny cache useful in tests that want to exercise evictions quickly.
    pub fn tiny() -> CacheConfig {
        CacheConfig { sets: 4, ways: 2, line_size: 16, hit_latency: 1, miss_latency: 20 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }

    /// Index of the set holding `addr`.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_size) as usize) % self.sets
    }

    /// Tag of the line holding `addr`.
    pub fn tag(&self, addr: u64) -> u64 {
        (addr / self.line_size) / self.sets as u64
    }

    /// Address of the first byte of the line holding `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }

    /// Validates the configuration (non-zero geometry, power-of-two line
    /// size, miss slower than hit).
    pub fn is_valid(&self) -> bool {
        self.sets > 0
            && self.ways > 0
            && self.line_size.is_power_of_two()
            && self.miss_latency > self.hit_latency
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_16kib() {
        let c = CacheConfig::default();
        assert!(c.is_valid());
        assert_eq!(c.capacity(), 16 * 1024);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let c = CacheConfig::default();
        let addr = 0x1_2345;
        let line = addr / c.line_size;
        assert_eq!(c.set_index(addr), (line as usize) % c.sets);
        assert_eq!(c.tag(addr), line / c.sets as u64);
        assert_eq!(c.line_base(addr) % c.line_size, 0);
        assert!(c.line_base(addr) <= addr);
        assert!(addr < c.line_base(addr) + c.line_size);
    }

    #[test]
    fn same_line_same_set_and_tag() {
        let c = CacheConfig::default();
        assert_eq!(c.set_index(0x1000), c.set_index(0x103f));
        assert_eq!(c.tag(0x1000), c.tag(0x103f));
        assert_ne!((c.set_index(0x1000), c.tag(0x1000)), (c.set_index(0x1040), c.tag(0x1040)));
    }

    #[test]
    fn invalid_configs_detected() {
        let c = CacheConfig { line_size: 48, ..CacheConfig::default() };
        assert!(!c.is_valid());
        let mut c = CacheConfig::default();
        c.miss_latency = c.hit_latency;
        assert!(!c.is_valid());
        let c = CacheConfig { ways: 0, ..CacheConfig::default() };
        assert!(!c.is_valid());
    }
}
