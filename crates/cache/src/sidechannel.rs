//! Cache side-channel helpers: classifying probe latencies and recovering
//! leaked bytes.
//!
//! The in-guest attack code measures, for each of the 256 probe-array
//! entries, the latency of one load. The entry whose line was touched by the
//! speculative access is the only hit; its index is the leaked byte. These
//! helpers implement that classification and are shared by the attack
//! harness and the test suite.

/// Classification of a single probe latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// The probe hit in the cache (the line was resident).
    Hit,
    /// The probe missed (the line had to be fetched from memory).
    Miss,
}

/// Classifies each latency as hit or miss using a threshold halfway between
/// the configured hit and miss latencies.
///
/// # Example
///
/// ```
/// use dbt_cache::{classify_latencies, LatencyClass};
/// let classes = classify_latencies(&[2, 60, 3], 2, 60);
/// assert_eq!(classes, vec![LatencyClass::Hit, LatencyClass::Miss, LatencyClass::Hit]);
/// ```
pub fn classify_latencies(
    latencies: &[u64],
    hit_latency: u64,
    miss_latency: u64,
) -> Vec<LatencyClass> {
    let threshold = hit_latency + (miss_latency - hit_latency) / 2;
    latencies
        .iter()
        .map(|&l| if l <= threshold { LatencyClass::Hit } else { LatencyClass::Miss })
        .collect()
}

/// Recovers the leaked byte from a 256-entry probe-latency vector: the index
/// of the (unique) fastest entry.
///
/// Returns `None` if `latencies` is empty or if no entry is classified as a
/// hit (i.e. the speculative access never happened — which is exactly what a
/// successful mitigation produces).
///
/// # Example
///
/// ```
/// use dbt_cache::recover_byte;
/// let mut lat = vec![60u64; 256];
/// lat[0x41] = 2;
/// assert_eq!(recover_byte(&lat, 2, 60), Some(0x41));
/// assert_eq!(recover_byte(&vec![60u64; 256], 2, 60), None);
/// ```
pub fn recover_byte(latencies: &[u64], hit_latency: u64, miss_latency: u64) -> Option<u8> {
    if latencies.is_empty() {
        return None;
    }
    let classes = classify_latencies(latencies, hit_latency, miss_latency);
    let (best_index, best_latency) =
        latencies.iter().enumerate().min_by_key(|(_, &l)| l).expect("non-empty latencies");
    if classes[best_index] == LatencyClass::Miss {
        return None;
    }
    let _ = best_latency;
    u8::try_from(best_index).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_uses_midpoint_threshold() {
        let classes = classify_latencies(&[2, 30, 31, 60], 2, 60);
        assert_eq!(
            classes,
            vec![LatencyClass::Hit, LatencyClass::Hit, LatencyClass::Hit, LatencyClass::Miss]
        );
    }

    #[test]
    fn recover_byte_finds_unique_hit() {
        let mut lat = vec![60u64; 256];
        lat[0x7f] = 2;
        assert_eq!(recover_byte(&lat, 2, 60), Some(0x7f));
    }

    #[test]
    fn recover_byte_none_when_all_miss() {
        let lat = vec![60u64; 256];
        assert_eq!(recover_byte(&lat, 2, 60), None);
    }

    #[test]
    fn recover_byte_none_on_empty_input() {
        assert_eq!(recover_byte(&[], 2, 60), None);
    }

    #[test]
    fn recover_byte_beyond_255_entries_still_fits_u8() {
        let mut lat = vec![60u64; 300];
        lat[10] = 1;
        assert_eq!(recover_byte(&lat, 2, 60), Some(10));
        // If the fastest entry is outside the byte range, we report None.
        let mut lat = vec![60u64; 300];
        lat[299] = 1;
        assert_eq!(recover_byte(&lat, 2, 60), None);
    }
}
