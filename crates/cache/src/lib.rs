//! Data-cache timing model for the DBT-based processor simulator.
//!
//! The Spectre attacks reproduced in this workspace leak information through
//! the **data cache**: a speculatively executed load brings a line into the
//! cache, and the attacker later distinguishes cached from uncached probe
//! addresses by timing loads with the cycle counter. This crate provides the
//! cache model that makes those timings observable:
//!
//! * [`CacheConfig`] — geometry and latencies;
//! * [`SetAssocCache`] — a set-associative tag store with LRU replacement;
//! * [`DataCache`] — the latency-producing wrapper used by the VLIW core;
//! * [`sidechannel`] — helpers to classify probe latencies, shared by the
//!   in-guest attack code generators and the test suite.
//!
//! The model tracks *which lines are resident*, not their contents — data
//! always comes from the guest memory image. This is sufficient because the
//! side channel only depends on residency.
//!
//! # Example
//!
//! ```
//! use dbt_cache::{CacheConfig, DataCache};
//!
//! let mut dcache = DataCache::new(CacheConfig::default());
//! let miss = dcache.access(0x1000, false);
//! let hit = dcache.access(0x1008, false); // same 64-byte line
//! assert!(miss.latency > hit.latency);
//! ```

pub mod config;
pub mod data_cache;
pub mod set_assoc;
pub mod sidechannel;
pub mod stats;

pub use config::CacheConfig;
pub use data_cache::{AccessOutcome, DataCache};
pub use set_assoc::SetAssocCache;
pub use sidechannel::{classify_latencies, recover_byte, LatencyClass};
pub use stats::CacheStats;
