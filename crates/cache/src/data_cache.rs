//! Latency-producing data-cache front end used by the VLIW core.
//!
//! With the optional `obs` cargo feature, every cache additionally
//! mirrors access/miss counts into the process-wide metrics registry
//! (`dbt_cache_accesses_total{level="l1d"}` /
//! `dbt_cache_misses_total{level="l1d"}`). The mirror is *sampled*: the
//! hot [`DataCache::access`] path only bumps two plain integers, and the
//! shared atomics are touched once per `OBS_SAMPLE_INTERVAL` accesses —
//! so the cost stays near zero and the default build carries none of it.
//! The mirror is pure observability; the deterministic [`CacheStats`]
//! counters and every latency are identical with the feature on or off.

use crate::config::CacheConfig;
use crate::set_assoc::SetAssocCache;
use crate::stats::CacheStats;

/// How many accesses a cache tallies locally before flushing the tally to
/// the global metrics registry (`obs` feature only).
#[cfg(feature = "obs")]
pub const OBS_SAMPLE_INTERVAL: u64 = 1024;

/// The sampled mirror into the global metrics registry.
#[cfg(feature = "obs")]
#[derive(Debug)]
struct ObsMirror {
    accesses: std::sync::Arc<dbt_obs::Counter>,
    misses: std::sync::Arc<dbt_obs::Counter>,
    pending_accesses: u64,
    pending_misses: u64,
}

#[cfg(feature = "obs")]
impl ObsMirror {
    fn new() -> ObsMirror {
        let registry = dbt_obs::MetricsRegistry::global();
        ObsMirror {
            accesses: registry.counter_with(
                "dbt_cache_accesses_total",
                "Simulated data-cache accesses (sampled mirror).",
                &[("level", "l1d")],
            ),
            misses: registry.counter_with(
                "dbt_cache_misses_total",
                "Simulated data-cache misses (sampled mirror).",
                &[("level", "l1d")],
            ),
            pending_accesses: 0,
            pending_misses: 0,
        }
    }

    fn record(&mut self, miss: bool) {
        self.pending_accesses += 1;
        self.pending_misses += u64::from(miss);
        if self.pending_accesses >= OBS_SAMPLE_INTERVAL {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.accesses.add(self.pending_accesses);
        self.misses.add(self.pending_misses);
        self.pending_accesses = 0;
        self.pending_misses = 0;
    }
}

#[cfg(feature = "obs")]
impl Clone for ObsMirror {
    /// A clone starts its own tally — copying the pending counts would
    /// report them twice once both caches flush.
    fn clone(&self) -> ObsMirror {
        ObsMirror {
            accesses: std::sync::Arc::clone(&self.accesses),
            misses: std::sync::Arc::clone(&self.misses),
            pending_accesses: 0,
            pending_misses: 0,
        }
    }
}

/// Result of a single data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// Latency of the access in cycles.
    pub latency: u64,
    /// Base address of the line that was evicted to make room, if any.
    pub evicted_line: Option<u64>,
}

/// The simulated L1 data cache.
///
/// Every load and store issued by the VLIW core goes through
/// [`DataCache::access`], which returns the access latency and updates
/// residency. Crucially, **speculative accesses also go through this path**
/// — the cache state they leave behind is exactly the Spectre leak the paper
/// exploits and mitigates.
#[derive(Debug, Clone)]
pub struct DataCache {
    cache: SetAssocCache,
    stats: CacheStats,
    #[cfg(feature = "obs")]
    obs: ObsMirror,
}

impl DataCache {
    /// Creates an empty data cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::is_valid`]).
    pub fn new(config: CacheConfig) -> DataCache {
        DataCache {
            cache: SetAssocCache::new(config),
            stats: CacheStats::default(),
            #[cfg(feature = "obs")]
            obs: ObsMirror::new(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// Performs an access (load if `is_write` is false, store otherwise).
    ///
    /// Misses allocate the line (write-allocate policy) and pay the miss
    /// latency; hits pay the hit latency.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let cfg = *self.cache.config();
        let outcome = if self.cache.lookup(addr) {
            self.stats.record_hit(is_write);
            AccessOutcome { hit: true, latency: cfg.hit_latency, evicted_line: None }
        } else {
            self.stats.record_miss(is_write);
            let evicted_line = self.cache.fill(addr);
            AccessOutcome { hit: false, latency: cfg.miss_latency, evicted_line }
        };
        #[cfg(feature = "obs")]
        self.obs.record(!outcome.hit);
        outcome
    }

    /// Flushes the sampled observability tally to the global metrics
    /// registry immediately, instead of waiting for the next
    /// [`OBS_SAMPLE_INTERVAL`] boundary.
    #[cfg(feature = "obs")]
    pub fn flush_obs(&mut self) {
        self.obs.flush();
    }

    /// Returns `true` if the line containing `addr` is resident (no LRU
    /// update, no latency).
    pub fn is_resident(&self, addr: u64) -> bool {
        self.cache.contains(addr)
    }

    /// Flushes the line containing `addr`.
    ///
    /// Returns the flush latency in cycles (flushes are modelled as cheap
    /// and constant-time).
    pub fn flush_line(&mut self, addr: u64) -> u64 {
        self.cache.flush_line(addr);
        self.stats.record_flush();
        self.cache.config().hit_latency
    }

    /// Flushes the whole cache.
    pub fn flush_all(&mut self) {
        self.cache.flush_all();
        self.stats.record_flush();
    }

    /// Access/hit/miss/flush counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.cache.resident_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_latencies() {
        let cfg = CacheConfig::default();
        let mut d = DataCache::new(cfg);
        let first = d.access(0x2000, false);
        assert!(!first.hit);
        assert_eq!(first.latency, cfg.miss_latency);
        let second = d.access(0x2004, false);
        assert!(second.hit);
        assert_eq!(second.latency, cfg.hit_latency);
    }

    #[test]
    fn stores_allocate_lines() {
        let mut d = DataCache::new(CacheConfig::default());
        let w = d.access(0x3000, true);
        assert!(!w.hit);
        assert!(d.is_resident(0x3000));
        let r = d.access(0x3008, false);
        assert!(r.hit);
    }

    #[test]
    fn flush_makes_next_access_miss() {
        let mut d = DataCache::new(CacheConfig::default());
        d.access(0x4000, false);
        assert!(d.is_resident(0x4000));
        d.flush_line(0x4000);
        assert!(!d.is_resident(0x4000));
        assert!(!d.access(0x4000, false).hit);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut d = DataCache::new(CacheConfig::default());
        d.access(0x100, false);
        d.access(0x100, false);
        d.access(0x200, true);
        d.flush_line(0x100);
        let s = d.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.accesses(), 3);
        d.reset_stats();
        assert_eq!(d.stats().accesses(), 0);
    }

    #[test]
    fn eviction_is_reported() {
        let cfg = CacheConfig::tiny();
        let mut d = DataCache::new(cfg);
        // Fill both ways of set 0, then one more.
        d.access(0, false);
        d.access(64, false);
        let third = d.access(128, false);
        assert_eq!(third.evicted_line, Some(0));
    }

    /// The global counters are shared across tests, so the assertions are
    /// monotonic (at-least deltas), never absolute.
    #[cfg(feature = "obs")]
    #[test]
    fn obs_mirror_flushes_sampled_counters() {
        let registry = dbt_obs::MetricsRegistry::global();
        let accesses = registry.counter_with(
            "dbt_cache_accesses_total",
            "Simulated data-cache accesses (sampled mirror).",
            &[("level", "l1d")],
        );
        let misses = registry.counter_with(
            "dbt_cache_misses_total",
            "Simulated data-cache misses (sampled mirror).",
            &[("level", "l1d")],
        );
        let (acc_before, miss_before) = (accesses.get(), misses.get());
        let mut d = DataCache::new(CacheConfig::default());
        for i in 0..OBS_SAMPLE_INTERVAL {
            d.access(i * 8, false);
        }
        assert!(
            accesses.get() >= acc_before + OBS_SAMPLE_INTERVAL,
            "a full interval flushes without an explicit flush_obs"
        );
        d.access(0, false);
        d.flush_obs();
        assert!(accesses.get() > acc_before + OBS_SAMPLE_INTERVAL);
        assert!(misses.get() > miss_before, "the cold accesses missed");
        // The deterministic per-cache stats are untouched by the mirror.
        assert_eq!(d.stats().accesses(), OBS_SAMPLE_INTERVAL + 1);

        // Cloning must not double-report: the clone starts a fresh tally,
        // so flushing it right away adds nothing. (Same test — this is
        // the only test touching these global counters, which keeps the
        // equality assertion race-free under parallel test threads.)
        let mut fresh = DataCache::new(CacheConfig::default());
        for i in 0..10 {
            fresh.access(i * 8, false);
        }
        let before_clone = accesses.get();
        let mut clone = fresh.clone();
        clone.flush_obs();
        assert_eq!(accesses.get(), before_clone, "the clone had nothing pending");
        fresh.flush_obs();
        assert_eq!(accesses.get(), before_clone + 10);
    }
}
