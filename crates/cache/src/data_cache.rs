//! Latency-producing data-cache front end used by the VLIW core.

use crate::config::CacheConfig;
use crate::set_assoc::SetAssocCache;
use crate::stats::CacheStats;

/// Result of a single data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// Latency of the access in cycles.
    pub latency: u64,
    /// Base address of the line that was evicted to make room, if any.
    pub evicted_line: Option<u64>,
}

/// The simulated L1 data cache.
///
/// Every load and store issued by the VLIW core goes through
/// [`DataCache::access`], which returns the access latency and updates
/// residency. Crucially, **speculative accesses also go through this path**
/// — the cache state they leave behind is exactly the Spectre leak the paper
/// exploits and mitigates.
#[derive(Debug, Clone)]
pub struct DataCache {
    cache: SetAssocCache,
    stats: CacheStats,
}

impl DataCache {
    /// Creates an empty data cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::is_valid`]).
    pub fn new(config: CacheConfig) -> DataCache {
        DataCache { cache: SetAssocCache::new(config), stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// Performs an access (load if `is_write` is false, store otherwise).
    ///
    /// Misses allocate the line (write-allocate policy) and pay the miss
    /// latency; hits pay the hit latency.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let cfg = *self.cache.config();
        if self.cache.lookup(addr) {
            self.stats.record_hit(is_write);
            AccessOutcome { hit: true, latency: cfg.hit_latency, evicted_line: None }
        } else {
            self.stats.record_miss(is_write);
            let evicted_line = self.cache.fill(addr);
            AccessOutcome { hit: false, latency: cfg.miss_latency, evicted_line }
        }
    }

    /// Returns `true` if the line containing `addr` is resident (no LRU
    /// update, no latency).
    pub fn is_resident(&self, addr: u64) -> bool {
        self.cache.contains(addr)
    }

    /// Flushes the line containing `addr`.
    ///
    /// Returns the flush latency in cycles (flushes are modelled as cheap
    /// and constant-time).
    pub fn flush_line(&mut self, addr: u64) -> u64 {
        self.cache.flush_line(addr);
        self.stats.record_flush();
        self.cache.config().hit_latency
    }

    /// Flushes the whole cache.
    pub fn flush_all(&mut self) {
        self.cache.flush_all();
        self.stats.record_flush();
    }

    /// Access/hit/miss/flush counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.cache.resident_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_latencies() {
        let cfg = CacheConfig::default();
        let mut d = DataCache::new(cfg);
        let first = d.access(0x2000, false);
        assert!(!first.hit);
        assert_eq!(first.latency, cfg.miss_latency);
        let second = d.access(0x2004, false);
        assert!(second.hit);
        assert_eq!(second.latency, cfg.hit_latency);
    }

    #[test]
    fn stores_allocate_lines() {
        let mut d = DataCache::new(CacheConfig::default());
        let w = d.access(0x3000, true);
        assert!(!w.hit);
        assert!(d.is_resident(0x3000));
        let r = d.access(0x3008, false);
        assert!(r.hit);
    }

    #[test]
    fn flush_makes_next_access_miss() {
        let mut d = DataCache::new(CacheConfig::default());
        d.access(0x4000, false);
        assert!(d.is_resident(0x4000));
        d.flush_line(0x4000);
        assert!(!d.is_resident(0x4000));
        assert!(!d.access(0x4000, false).hit);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut d = DataCache::new(CacheConfig::default());
        d.access(0x100, false);
        d.access(0x100, false);
        d.access(0x200, true);
        d.flush_line(0x100);
        let s = d.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.accesses(), 3);
        d.reset_stats();
        assert_eq!(d.stats().accesses(), 0);
    }

    #[test]
    fn eviction_is_reported() {
        let cfg = CacheConfig::tiny();
        let mut d = DataCache::new(cfg);
        // Fill both ways of set 0, then one more.
        d.access(0, false);
        d.access(64, false);
        let third = d.access(128, false);
        assert_eq!(third.evicted_line, Some(0));
    }
}
