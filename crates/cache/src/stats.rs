//! Cache access counters.

/// Hit/miss/flush counters collected by [`DataCache`](crate::DataCache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load accesses that hit.
    pub read_hits: u64,
    /// Load accesses that missed.
    pub read_misses: u64,
    /// Store accesses that hit.
    pub write_hits: u64,
    /// Store accesses that missed.
    pub write_misses: u64,
    /// Explicit line or full flushes.
    pub flushes: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    pub(crate) fn record_hit(&mut self, is_write: bool) {
        if is_write {
            self.write_hits += 1;
        } else {
            self.read_hits += 1;
        }
    }

    pub(crate) fn record_miss(&mut self, is_write: bool) {
        if is_write {
            self.write_misses += 1;
        } else {
            self.read_misses += 1;
        }
    }

    pub(crate) fn record_flush(&mut self) {
        self.flushes += 1;
    }

    /// Total number of accesses (hits + misses, loads + stores).
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total number of misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate in [0, 1]; 0 when no access was made.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::new().miss_rate(), 0.0);
    }

    #[test]
    fn counters_add_up() {
        let mut s = CacheStats::new();
        s.record_hit(false);
        s.record_hit(true);
        s.record_miss(false);
        s.record_flush();
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.misses(), 1);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.flushes, 1);
    }
}
