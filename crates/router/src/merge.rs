//! Merging per-backend Prometheus expositions into one fleet scrape.
//!
//! The fleet `metrics` op answers the router's own families followed by
//! every backend's families with a `backend="<index>"` label injected
//! into each sample, so one scrape shows the whole fleet and per-backend
//! series never collide. Families are grouped — `# HELP`/`# TYPE` render
//! once per family (from the first backend that reported it), then the
//! samples of every backend in index order — which keeps the output
//! valid exposition format and byte-stable for a fixed input.
//!
//! No JSON or float parsing happens here: the merge works line-wise on
//! the already byte-stable text `dbt-obs` rendered, and a histogram's
//! `_bucket`/`_sum`/`_count` lines stay grouped because they sit under
//! their family's `# HELP` header in the input.

/// Merges `(backend index, exposition text)` pairs. Backends that failed
/// to answer are simply absent from `expositions` (their absence is
/// visible in the router's own `dbt_router_backend_up` gauge).
pub fn merge_expositions(expositions: &[(usize, String)]) -> String {
    // Family name -> (header lines, merged sample lines); `order` keeps
    // first-appearance order so the output is stable.
    let mut order: Vec<String> = Vec::new();
    let mut headers: Vec<Vec<String>> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    for (backend, text) in expositions {
        let mut current = usize::MAX;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                current = match order.iter().position(|known| known == name) {
                    Some(index) => index,
                    None => {
                        order.push(name.to_string());
                        headers.push(vec![line.to_string()]);
                        samples.push(Vec::new());
                        order.len() - 1
                    }
                };
            } else if line.starts_with("# TYPE ") {
                if current != usize::MAX && headers[current].len() == 1 {
                    headers[current].push(line.to_string());
                }
            } else if !line.trim().is_empty() && current != usize::MAX {
                samples[current].push(inject_backend_label(line, *backend));
            }
        }
    }
    let mut out = String::new();
    for family in 0..order.len() {
        for line in &headers[family] {
            out.push_str(line);
            out.push('\n');
        }
        for line in &samples[family] {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Rewrites one sample line so `backend="<index>"` is its first label.
fn inject_backend_label(line: &str, backend: usize) -> String {
    match line.find('{') {
        Some(brace) => {
            format!("{}{{backend=\"{backend}\",{}", &line[..brace], &line[brace + 1..])
        }
        None => match line.find(' ') {
            Some(space) => {
                format!("{}{{backend=\"{backend}\"}}{}", &line[..space], &line[space..])
            }
            None => line.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_injected_and_families_grouped_across_backends() {
        let zero = "\
# HELP dbt_test_hits_total Test hits.
# TYPE dbt_test_hits_total counter
dbt_test_hits_total 5
# HELP dbt_test_seconds Test latency.
# TYPE dbt_test_seconds histogram
dbt_test_seconds_bucket{le=\"0.000050\"} 1
dbt_test_seconds_bucket{le=\"+Inf\"} 2
dbt_test_seconds_sum 0.009125
dbt_test_seconds_count 2
";
        let one = "\
# HELP dbt_test_hits_total Test hits.
# TYPE dbt_test_hits_total counter
dbt_test_hits_total 7
# HELP dbt_test_extra_total Only backend one has this.
# TYPE dbt_test_extra_total counter
dbt_test_extra_total{op=\"run\"} 3
";
        let merged = merge_expositions(&[(0, zero.to_string()), (1, one.to_string())]);
        let expected = "\
# HELP dbt_test_hits_total Test hits.
# TYPE dbt_test_hits_total counter
dbt_test_hits_total{backend=\"0\"} 5
dbt_test_hits_total{backend=\"1\"} 7
# HELP dbt_test_seconds Test latency.
# TYPE dbt_test_seconds histogram
dbt_test_seconds_bucket{backend=\"0\",le=\"0.000050\"} 1
dbt_test_seconds_bucket{backend=\"0\",le=\"+Inf\"} 2
dbt_test_seconds_sum{backend=\"0\"} 0.009125
dbt_test_seconds_count{backend=\"0\"} 2
# HELP dbt_test_extra_total Only backend one has this.
# TYPE dbt_test_extra_total counter
dbt_test_extra_total{backend=\"1\",op=\"run\"} 3
";
        assert_eq!(merged, expected);
    }

    #[test]
    fn missing_backends_merge_to_what_answered() {
        let only = "# HELP a t\n# TYPE a counter\na 1\n";
        let merged = merge_expositions(&[(2, only.to_string())]);
        assert_eq!(merged, "# HELP a t\n# TYPE a counter\na{backend=\"2\"} 1\n");
        assert_eq!(merge_expositions(&[]), "");
    }
}
