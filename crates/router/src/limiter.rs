//! The router's deterministic token-bucket rate limiter.
//!
//! A bucket holds up to `burst` tokens and refills at `rate_per_sec`
//! tokens per second; each admitted request spends one token and a dry
//! bucket answers `quota_exceeded`. All arithmetic is integer
//! **micro-tokens** (one token = [`MICROS_PER_TOKEN`] micro-tokens), and
//! the clock is injected by the caller as a microsecond timestamp — the
//! router passes its uptime, tests pass a script. Given the same
//! timestamp sequence the bucket admits exactly the same requests on
//! every run; no floats, no hidden `Instant::now`.

/// Micro-tokens per token: requests spend this much, refill is
/// `elapsed_micros * rate_per_sec` (which is exactly
/// `elapsed_seconds * rate` tokens, with no division until the spend).
pub const MICROS_PER_TOKEN: u64 = 1_000_000;

/// One client's bucket. See the module docs for the arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst_micro: u64,
    available_micro: u64,
    last_micros: u64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_per_sec` tokens per second and
    /// holding at most `burst` tokens.
    ///
    /// # Panics
    ///
    /// If either parameter is zero — such a bucket could never admit a
    /// request, which is a misconfiguration, not a quota.
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        assert!(rate_per_sec >= 1, "a quota needs a refill rate of at least one token per second");
        assert!(burst >= 1, "a quota needs a burst of at least one token");
        TokenBucket {
            rate_per_sec,
            burst_micro: burst.saturating_mul(MICROS_PER_TOKEN),
            available_micro: burst.saturating_mul(MICROS_PER_TOKEN),
            last_micros: 0,
        }
    }

    /// Refills for the time elapsed since the last call and tries to
    /// spend one token. `now_micros` is any monotonic microsecond clock
    /// (time moving backwards refills nothing and is otherwise
    /// harmless). Returns `true` when the request is admitted.
    pub fn try_take(&mut self, now_micros: u64) -> bool {
        let elapsed = now_micros.saturating_sub(self.last_micros);
        self.last_micros = self.last_micros.max(now_micros);
        self.available_micro = self
            .available_micro
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec))
            .min(self.burst_micro);
        if self.available_micro >= MICROS_PER_TOKEN {
            self.available_micro -= MICROS_PER_TOKEN;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scripted-clock test the failover/quota satellite asks for: a
    /// fixed timestamp sequence admits exactly the same requests, run
    /// after run.
    #[test]
    fn a_scripted_clock_admits_exactly_the_same_requests() {
        // 2 tokens/sec, burst 3.
        let script: [(u64, bool); 10] = [
            (0, true),          // burst token 1
            (0, true),          // burst token 2
            (0, true),          // burst token 3
            (0, false),         // dry at t=0
            (100_000, false),   // 0.1s * 2/s = 0.2 tokens: still dry
            (500_000, true),    // 0.5s since start: 1.0 tokens accrued
            (500_000, false),   // spent it
            (10_000_000, true), // long idle refills...
            (10_000_000, true), // ...but only up to the burst cap...
            (10_000_000, true), // ...of 3 tokens
        ];
        for _ in 0..3 {
            let mut bucket = TokenBucket::new(2, 3);
            for (step, (now, admitted)) in script.iter().enumerate() {
                assert_eq!(bucket.try_take(*now), *admitted, "step {step} at t={now}us");
            }
            assert!(!bucket.try_take(10_000_000), "the cap is the burst, not the idle time");
        }
    }

    #[test]
    fn refill_is_exact_integer_arithmetic() {
        let mut bucket = TokenBucket::new(1, 1);
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(999_999), "one micro short of a token");
        assert!(bucket.try_take(1_000_000), "exactly one second refills exactly one token");
    }

    #[test]
    fn time_moving_backwards_refills_nothing() {
        let mut bucket = TokenBucket::new(1, 1);
        assert!(bucket.try_take(5_000_000));
        assert!(!bucket.try_take(1_000_000), "an earlier timestamp must not refill");
        assert!(!bucket.try_take(5_999_999), "still a micro short of the last high-water mark");
        assert!(bucket.try_take(6_000_000));
    }

    #[test]
    #[should_panic(expected = "refill rate")]
    fn zero_rates_are_rejected() {
        let _ = TokenBucket::new(0, 1);
    }
}
