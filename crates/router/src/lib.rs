//! **dbt-router** — the fleet front door: one NDJSON endpoint over many
//! `dbt-serve` daemons.
//!
//! One lab daemon amortizes translation and run-memo work across clients;
//! a *fleet* of daemons amortizes it across cores and machines — if
//! requests for the same program keep landing on the same daemon. This
//! crate is the piece that makes that true: a `std`-only reverse proxy
//! speaking the exact `dbt-serve` wire protocol on both sides.
//!
//! * [`ring`] — consistent hashing with virtual nodes. Routing keys are
//!   derived from the *program* a request touches (scenario programs,
//!   canonicalized program refs, sweep names, upload content), and ring
//!   points are keyed by backend **index**, so shard assignment is
//!   deterministic run over run — ephemeral ports and all.
//! * [`router`] — the proxy itself. Heavy frames are relayed **raw** to
//!   the owning backend and the response line comes back verbatim, so a
//!   routed answer is byte-identical to asking that daemon directly;
//!   `upload` replicates to every live backend (any shard resolves
//!   `fp:` refs); `stats`/`metrics`/`health` fan out and merge.
//! * **Protocol v3 enforcement** — optional per-connection bearer-token
//!   auth and a deterministic per-client token-bucket quota
//!   ([`limiter`]), both off by default so v2 clients pass through
//!   untouched; denied requests answer `error` / `quota_exceeded`
//!   frames without ever reaching a backend.
//! * **Failover** — a periodic health prober, per-backend circuit
//!   breaking on consecutive transport failures, and retry-with-backoff
//!   along the ring's preference order for idempotent ops (every lab op
//!   is: runs are pure, uploads content-addressed). Backend `busy` and
//!   `error` answers are relayed, never retried.
//! * [`merge`] — fleet-wide Prometheus exposition: per-backend families
//!   tagged `backend="<i>"`, router families (`dbt_router_*`) in front.
//!
//! The `lab` CLI hosts this as `lab router` / `lab loadgen --fleet N`;
//! see `docs/PROTOCOL.md` for the v3 wire details and the README for the
//! three-backend quickstart.

pub mod limiter;
pub mod merge;
pub mod ring;
pub mod router;

pub use limiter::{TokenBucket, MICROS_PER_TOKEN};
pub use merge::merge_expositions;
pub use ring::{fnv1a, HashRing, DEFAULT_RING_REPLICAS};
pub use router::{serve_router, serve_router_with_clock, QuotaConfig, RouterConfig, RouterHandle};
