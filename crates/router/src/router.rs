//! The router itself: listener, per-connection handlers, backend pools,
//! the health prober and the fleet fan-out ops.
//!
//! Request flow:
//!
//! 1. a handler thread reads one NDJSON frame (the exact bounded framing
//!    of `dbt-serve`, via [`read_frame`]) and decodes it together with
//!    its v3 envelope ([`FrameMeta`]);
//! 2. the auth gate and the per-client token bucket run first — both off
//!    by default, both answered by the router itself (`error` /
//!    `quota_exceeded` frames), so no denied request ever reaches a
//!    backend;
//! 3. heavy ops are **relayed raw**: the client's original frame bytes
//!    go to the backend chosen by the consistent-hash ring, and the
//!    backend's response line comes back verbatim — byte-identical to
//!    talking to that daemon directly, trace-id echo included. Transport
//!    failures fail over along the ring's preference order with
//!    exponential backoff; `busy`/`error` answers are relayed, never
//!    retried (the backend spoke — backpressure and failures must stay
//!    visible);
//! 4. `upload` is relayed to the key's owner and then replicated to
//!    every other live backend, so `fp:` refs resolve on any shard;
//! 5. `stats`/`metrics`/`health` fan out to the whole fleet and answer a
//!    merged body (per-backend sections, `backend="<i>"` labels on
//!    merged metrics).
//!
//! Backend death is survived three ways: a periodic health prober flips
//! the per-backend `up` flag, consecutive transport failures trip a
//! circuit breaker ([`RouterConfig::failure_threshold`]), and every
//! relay walks reachable backends first. A `shutdown` frame stops the
//! router only — backends are independent processes with their own
//! lifecycle.

use crate::limiter::TokenBucket;
use crate::merge::merge_expositions;
use crate::ring::{HashRing, DEFAULT_RING_REPLICAS};
use dbt_obs::{Counter, Gauge, Histogram, MetricsRegistry, Span, DEFAULT_LATENCY_BOUNDS_MICROS};
use dbt_serve::json::escape;
use dbt_serve::{read_frame, Frame, FrameMeta, Request, Response, DEFAULT_MAX_FRAME_BYTES};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The deterministic per-client rate quota (off unless set on
/// [`RouterConfig::quota`]): a token bucket per auth token (or per peer
/// IP for unauthenticated fleets), spending one token per heavy request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Refill rate, tokens per second.
    pub rate_per_sec: u64,
    /// Bucket capacity: how many requests a client may burst.
    pub burst: u64,
}

/// Router knobs. The default is a pure relay: no auth, no quota —
/// protocol-v2 clients work through it untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual ring points per backend ([`DEFAULT_RING_REPLICAS`]).
    pub replicas: usize,
    /// Accepted bearer tokens; empty = auth off. With tokens configured,
    /// a connection must present one valid `auth` member before any
    /// non-`health` request is forwarded (the connection stays
    /// authenticated afterwards).
    pub auth_tokens: Vec<String>,
    /// Per-client rate quota; `None` = off.
    pub quota: Option<QuotaConfig>,
    /// How often the prober health-checks every backend.
    pub probe_interval: Duration,
    /// Connect/read timeout of one health probe.
    pub probe_timeout: Duration,
    /// Consecutive transport failures that trip a backend's circuit
    /// breaker (a successful forward or probe closes it again).
    pub failure_threshold: u32,
    /// Initial pause before retrying a failed relay on the next backend;
    /// doubles per attempt.
    pub retry_backoff: Duration,
    /// Bound on one request line, as in `dbt-serve`.
    pub max_frame_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replicas: DEFAULT_RING_REPLICAS,
            auth_tokens: Vec::new(),
            quota: None,
            probe_interval: Duration::from_secs(1),
            probe_timeout: Duration::from_millis(250),
            failure_threshold: 3,
            retry_backoff: Duration::from_millis(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// One pooled backend connection (reader half buffered, writer half
/// flushed per frame — same discipline as the `dbt-serve` client).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(stream), writer })
    }

    /// Sends one frame line and reads one response line.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// One backend daemon: address, breaker state, connection pool and its
/// pre-registered per-backend metric handles.
struct Backend {
    index: usize,
    addr: SocketAddr,
    /// The breaker: `false` while the backend is considered dead.
    up: AtomicBool,
    /// Consecutive transport failures since the last success.
    failures: AtomicU32,
    pool: Mutex<Vec<Conn>>,
    /// `dbt_router_forwarded_total{backend="<index>"}`.
    forwarded: Arc<Counter>,
    /// `dbt_router_backend_up{backend="<index>"}`.
    up_gauge: Arc<Gauge>,
}

impl Backend {
    fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Sends `line` and returns the backend's raw response line, reusing
    /// a pooled connection when one exists (one silent retry on a fresh
    /// connection covers pool entries whose daemon restarted).
    fn forward(&self, line: &str) -> std::io::Result<String> {
        let pooled = self.pool.lock().expect("backend pool lock").pop();
        if let Some(mut conn) = pooled {
            if let Ok(reply) = conn.roundtrip(line) {
                self.forwarded.inc();
                self.pool.lock().expect("backend pool lock").push(conn);
                return Ok(reply);
            }
            // The pooled connection went stale; fall through to a fresh one.
        }
        let mut conn = Conn::open(self.addr)?;
        let reply = conn.roundtrip(line)?;
        self.forwarded.inc();
        self.pool.lock().expect("backend pool lock").push(conn);
        Ok(reply)
    }

    /// A forward or probe succeeded: reset the breaker.
    fn record_success(&self) {
        self.failures.store(0, Ordering::SeqCst);
        self.up.store(true, Ordering::SeqCst);
        self.up_gauge.set(1);
    }

    /// A forward failed at the transport level: count it, trip the
    /// breaker at the threshold.
    fn record_failure(&self, threshold: u32) {
        let failures = self.failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= threshold {
            self.set_down();
        }
    }

    /// Marks the backend dead immediately (a failed health probe is
    /// definitive — `health` is answered inline by any live daemon).
    fn set_down(&self) {
        self.up.store(false, Ordering::SeqCst);
        self.up_gauge.set(0);
        // Pooled connections point at a dead peer; drop them.
        self.pool.lock().expect("backend pool lock").clear();
    }
}

/// The request `op` labels the router pre-registers — the same set as
/// `dbt-serve`, so fleet dashboards join on identical label values.
const OP_LABELS: [&str; 10] = [
    "analyze", "health", "invalid", "metrics", "profile", "run", "shutdown", "stats", "sweep",
    "upload",
];

/// The router's own metric families on a per-router registry, resolved
/// once at startup.
struct RouterMetrics {
    registry: Arc<MetricsRegistry>,
    /// `dbt_router_requests_total{op=...}`, parallel to [`OP_LABELS`].
    requests: Vec<Arc<Counter>>,
    /// `dbt_router_request_seconds{op=...}`, parallel to [`OP_LABELS`].
    latency: Vec<Arc<Histogram>>,
    failovers: Arc<Counter>,
    busy_relayed: Arc<Counter>,
    auth_failures: Arc<Counter>,
    quota_exceeded: Arc<Counter>,
    probes: Arc<Counter>,
    probe_failures: Arc<Counter>,
    replications: Arc<Counter>,
    replication_failures: Arc<Counter>,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let registry = MetricsRegistry::new();
        let requests = OP_LABELS
            .iter()
            .map(|op| {
                registry.counter_with(
                    "dbt_router_requests_total",
                    "Request frames seen by the router, by op (`invalid` = never decoded).",
                    &[("op", op)],
                )
            })
            .collect();
        let latency = OP_LABELS
            .iter()
            .map(|op| {
                registry.histogram_with(
                    "dbt_router_request_seconds",
                    "Wall-clock request latency through the router, by op.",
                    DEFAULT_LATENCY_BOUNDS_MICROS,
                    &[("op", op)],
                )
            })
            .collect();
        RouterMetrics {
            requests,
            latency,
            failovers: registry.counter(
                "dbt_router_failovers_total",
                "Relay attempts moved to the next backend after a transport failure.",
            ),
            busy_relayed: registry.counter(
                "dbt_router_busy_relayed_total",
                "Backend `busy` answers relayed to clients (backpressure is end-to-end).",
            ),
            auth_failures: registry.counter(
                "dbt_router_auth_failures_total",
                "Requests denied by the auth gate (missing or invalid bearer token).",
            ),
            quota_exceeded: registry.counter(
                "dbt_router_quota_exceeded_total",
                "Requests bounced by the per-client token bucket.",
            ),
            probes: registry.counter("dbt_router_probes_total", "Health probes sent to backends."),
            probe_failures: registry
                .counter("dbt_router_probe_failures_total", "Health probes that failed."),
            replications: registry.counter(
                "dbt_router_replications_total",
                "Upload frames replicated to non-owner backends.",
            ),
            replication_failures: registry.counter(
                "dbt_router_replication_failures_total",
                "Upload replications that failed (the shard misses the program until re-upload).",
            ),
            registry,
        }
    }

    /// Index of `op` in [`OP_LABELS`]; unknown strings land on `invalid`.
    fn op_index(op: &str) -> usize {
        OP_LABELS.iter().position(|known| *known == op).unwrap_or_else(|| {
            OP_LABELS.iter().position(|known| *known == "invalid").expect("invalid is registered")
        })
    }

    /// Total request frames seen — the `router.requests` stats member.
    fn total_requests(&self) -> u64 {
        self.requests.iter().map(|counter| counter.get()).sum()
    }
}

/// Where a decoded request goes.
enum Route {
    /// Relay to the key's owner, failing over along the ring preference.
    Key(String),
    /// Relay to the key's owner, then replicate to every other live
    /// backend (`upload`).
    Replicate(String),
    /// Ask every backend and answer a merged body.
    FanOut,
    /// Any live backend will do (the trace-log form of `profile` — each
    /// daemon keeps its own log; the fleet answer is one shard's view).
    Any,
    /// Stop the router (backends keep running).
    Stop,
}

/// The routing key of a request: which backend serves it. Keys are
/// derived from the *program*, so every op touching the same program
/// lands on the same shard and its translation/memo caches stay warm.
fn route(request: &Request) -> Route {
    match request {
        Request::Run { scenario } => Route::Key(scenario_key(scenario)),
        Request::RunProgram { program, .. } | Request::Analyze { program } => {
            Route::Key(normalize_ref(program))
        }
        Request::Profile { program: Some(program), .. } => Route::Key(normalize_ref(program)),
        Request::Profile { program: None, .. } => Route::Any,
        Request::Sweep { name, .. } => Route::Key(format!("sweep:{name}")),
        Request::Upload { source } => Route::Replicate(source.text().to_string()),
        Request::Stats | Request::Metrics | Request::Health => Route::FanOut,
        Request::Shutdown => Route::Stop,
    }
}

/// The program segment of a `sweep/program/policy/platform` scenario
/// name — runs of the same program shard together across policies.
fn scenario_key(scenario: &str) -> String {
    scenario.split('/').nth(1).unwrap_or(scenario).to_string()
}

/// Canonicalizes a program ref so spelling variants shard identically:
/// `registry:gemm` and `gemm` are one key, and `fp:` hex is lowercased
/// zero-padded. Unparseable refs shard by their literal text (the
/// backend will answer the error).
fn normalize_ref(text: &str) -> String {
    let bare = text.strip_prefix("registry:").unwrap_or(text);
    if let Some(hex) = bare.strip_prefix("fp:") {
        if let Ok(fp) = u64::from_str_radix(hex, 16) {
            return format!("fp:{fp:016x}");
        }
    }
    bare.to_string()
}

/// Per-connection state a handler threads through its requests.
struct ConnState {
    /// Peer IP, the quota key of unauthenticated clients.
    peer: String,
    /// Set once any frame on this connection presented a valid token.
    authenticated: bool,
    frame_seq: u64,
}

impl ConnState {
    /// Deterministic fallback trace id for router-originated answers:
    /// the n-th frame of a connection is `r<n>`.
    fn next_trace(&mut self) -> String {
        let trace = format!("r{}", self.frame_seq);
        self.frame_seq += 1;
        trace
    }
}

/// What a dispatched request answers with.
enum Answer {
    /// A backend's response line, relayed verbatim (trace echo and all).
    Raw(String),
    /// A router-originated response, encoded with the client's trace id.
    Local(Response),
}

struct Shared {
    backends: Vec<Backend>,
    ring: HashRing,
    config: RouterConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    started: Instant,
    metrics: RouterMetrics,
    /// Token buckets keyed by auth token (or peer IP when auth is off).
    quotas: Mutex<HashMap<String, TokenBucket>>,
    /// Wakes the prober early on shutdown.
    probe_wake: (Mutex<()>, Condvar),
}

impl Shared {
    /// Answers one request line: the encoded response frame to write and
    /// whether the router must stop afterwards.
    fn respond(&self, line: &str, conn: &mut ConnState) -> (String, bool) {
        let (decoded, meta) = match Request::decode_frame_meta(line) {
            Ok((request, meta)) => (Ok(request), meta),
            Err(error) => (Err(error), FrameMeta::default()),
        };
        // Generated eagerly, like the daemon's `t<n>` ids: the n-th frame
        // of a connection is `r<n>` whether or not the client chose its
        // own id, so the sequence stays deterministic either way.
        let generated = conn.next_trace();
        let trace = meta.trace_id.clone().unwrap_or(generated);
        let op = decoded.as_ref().map(Request::op).unwrap_or("invalid");
        let index = RouterMetrics::op_index(op);
        self.metrics.requests[index].inc();
        let span = Span::on(&self.metrics.latency[index]);
        let (answer, stop) = self.dispatch(line, decoded, &meta, conn);
        drop(span);
        let frame = match answer {
            Answer::Raw(reply) => reply,
            Answer::Local(response) => response.encode_with_trace(Some(&trace)),
        };
        (frame, stop)
    }

    /// The gate-then-route pipeline behind [`Shared::respond`].
    fn dispatch(
        &self,
        line: &str,
        decoded: Result<Request, String>,
        meta: &FrameMeta,
        conn: &mut ConnState,
    ) -> (Answer, bool) {
        let request = match decoded {
            Ok(request) => request,
            Err(error) => {
                return (Answer::Local(Response::Error { op: "invalid".to_string(), error }), false)
            }
        };
        if let Some(denied) = self.check_auth(&request, meta, conn) {
            return (Answer::Local(denied), false);
        }
        if let Some(bounced) = self.check_quota(&request, meta, conn) {
            return (Answer::Local(bounced), false);
        }
        let op = request.op().to_string();
        match route(&request) {
            Route::Stop => {
                (Answer::Local(Response::Ok { op, body: "{\"stopping\": true}".to_string() }), true)
            }
            Route::FanOut => {
                let body = match request {
                    Request::Stats => self.fleet_stats_body(),
                    Request::Metrics => self.fleet_metrics_body(),
                    Request::Health => self.fleet_health_body(),
                    _ => unreachable!("only fleet ops fan out"),
                };
                (Answer::Local(Response::Ok { op, body }), false)
            }
            Route::Any => {
                let order: Vec<usize> = (0..self.backends.len()).collect();
                (self.relay(line, &op, &order), false)
            }
            Route::Key(key) => (self.relay(line, &op, &self.ring.preference(&key)), false),
            Route::Replicate(key) => (self.replicate_upload(line, &key), false),
        }
    }

    /// The auth gate. `None` = pass. Health stays open so probes and
    /// monitoring work without credentials.
    fn check_auth(
        &self,
        request: &Request,
        meta: &FrameMeta,
        conn: &mut ConnState,
    ) -> Option<Response> {
        if self.config.auth_tokens.is_empty() || matches!(request, Request::Health) {
            return None;
        }
        if let Some(token) = &meta.auth {
            if self.config.auth_tokens.iter().any(|known| known == token) {
                conn.authenticated = true;
            } else {
                self.metrics.auth_failures.inc();
                return Some(Response::Error {
                    op: request.op().to_string(),
                    error: "invalid auth token".to_string(),
                });
            }
        }
        if conn.authenticated {
            None
        } else {
            self.metrics.auth_failures.inc();
            Some(Response::Error {
                op: request.op().to_string(),
                error: "authentication required: send an `auth` bearer token (protocol v3)"
                    .to_string(),
            })
        }
    }

    /// The rate quota. `None` = admitted. Only heavy ops spend tokens —
    /// observability stays free.
    fn check_quota(
        &self,
        request: &Request,
        meta: &FrameMeta,
        conn: &ConnState,
    ) -> Option<Response> {
        let quota = self.config.quota.as_ref()?;
        if !request.is_heavy() {
            return None;
        }
        let key = meta.auth.clone().unwrap_or_else(|| conn.peer.clone());
        let now_micros = self.started.elapsed().as_micros() as u64;
        let mut buckets = self.quotas.lock().expect("quota table lock");
        let bucket =
            buckets.entry(key).or_insert_with(|| TokenBucket::new(quota.rate_per_sec, quota.burst));
        if bucket.try_take(now_micros) {
            None
        } else {
            self.metrics.quota_exceeded.inc();
            Some(Response::QuotaExceeded { op: request.op().to_string() })
        }
    }

    /// Relays `line` along `order`, wrapping the all-failed case into an
    /// `error` frame.
    fn relay(&self, line: &str, op: &str, order: &[usize]) -> Answer {
        match self.relay_ranked(line, op, order) {
            Ok((_, reply)) => Answer::Raw(reply),
            Err(error) => Answer::Local(Response::Error { op: op.to_string(), error }),
        }
    }

    /// Relays `line` to the first backend in `order` that answers —
    /// reachable backends first, the circuit-broken rest as a last
    /// resort (a probe may simply not have run yet) — with exponential
    /// backoff between attempts. Returns the answering backend's index
    /// and raw response line.
    fn relay_ranked(
        &self,
        line: &str,
        op: &str,
        order: &[usize],
    ) -> Result<(usize, String), String> {
        let mut candidates: Vec<usize> =
            order.iter().copied().filter(|&i| self.backends[i].is_up()).collect();
        candidates.extend(order.iter().copied().filter(|&i| !self.backends[i].is_up()));
        let mut backoff = self.config.retry_backoff;
        let mut last_error = "no backends configured".to_string();
        for (attempt, &index) in candidates.iter().enumerate() {
            if attempt > 0 {
                self.metrics.failovers.inc();
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            let backend = &self.backends[index];
            match backend.forward(line) {
                Ok(reply) if is_lifecycle_refusal(&reply) => {
                    // The daemon answered, but only to say it is going
                    // away and never executed the job — as retryable as
                    // a refused connection.
                    backend.record_failure(self.config.failure_threshold);
                    last_error = format!("backend {index} ({}) is shutting down", backend.addr);
                }
                Ok(reply) => {
                    backend.record_success();
                    if reply.starts_with("{\"status\": \"busy\"") {
                        self.metrics.busy_relayed.inc();
                    }
                    return Ok((index, reply));
                }
                Err(error) => {
                    backend.record_failure(self.config.failure_threshold);
                    last_error = format!("backend {index} ({}): {error}", backend.addr);
                }
            }
        }
        Err(format!("no backend could answer `{op}`: {last_error}"))
    }

    /// `upload`: relay to the key's owner (with failover), then replicate
    /// the same frame to every other live backend so `fp:` refs resolve
    /// on any shard. Replication only happens for an `ok` answer — a
    /// bounced or failed upload is not half-applied across the fleet.
    fn replicate_upload(&self, line: &str, key: &str) -> Answer {
        let order = self.ring.preference(key);
        let (answered_by, reply) = match self.relay_ranked(line, "upload", &order) {
            Ok(answered) => answered,
            Err(error) => {
                return Answer::Local(Response::Error { op: "upload".to_string(), error })
            }
        };
        if reply.starts_with("{\"status\": \"ok\"") {
            for backend in &self.backends {
                if backend.index == answered_by || !backend.is_up() {
                    continue;
                }
                match backend.forward(line) {
                    Ok(_) => {
                        backend.record_success();
                        self.metrics.replications.inc();
                    }
                    Err(_) => {
                        backend.record_failure(self.config.failure_threshold);
                        self.metrics.replication_failures.inc();
                    }
                }
            }
        }
        Answer::Raw(reply)
    }

    /// Count of backends the breaker currently trusts.
    fn up_count(&self) -> usize {
        self.backends.iter().filter(|backend| backend.is_up()).count()
    }

    /// Asks one backend a cheap request and returns the `ok` body,
    /// recording breaker state either way.
    fn ask(&self, backend: &Backend, request: &Request) -> Result<String, String> {
        match backend.forward(&request.encode()) {
            Ok(reply) => match Response::decode(&reply) {
                Ok(Response::Ok { body, .. }) => {
                    backend.record_success();
                    Ok(body)
                }
                Ok(other) => Err(format!("unexpected {} answer: {other:?}", request.op())),
                Err(error) => Err(error),
            },
            Err(error) => {
                backend.record_failure(self.config.failure_threshold);
                Err(error.to_string())
            }
        }
    }

    /// The fleet `stats` body: router counters plus every backend's own
    /// single-line stats body, in index order.
    fn fleet_stats_body(&self) -> String {
        let members: Vec<String> = self
            .backends
            .iter()
            .map(|backend| match self.ask(backend, &Request::Stats) {
                Ok(body) => body,
                Err(error) => format!("{{\"error\": \"{}\"}}", escape(&error)),
            })
            .collect();
        let forwarded: Vec<String> =
            self.backends.iter().map(|backend| backend.forwarded.get().to_string()).collect();
        format!(
            "{{\"router\": {{\"backends\": {}, \"up\": {}, \"requests\": {}, \
             \"forwarded\": [{}], \"failovers\": {}, \"busy_relayed\": {}, \
             \"auth_failures\": {}, \"quota_exceeded\": {}, \"replications\": {}}}, \
             \"backends\": [{}]}}",
            self.backends.len(),
            self.up_count(),
            self.metrics.total_requests(),
            forwarded.join(", "),
            self.metrics.failovers.get(),
            self.metrics.busy_relayed.get(),
            self.metrics.auth_failures.get(),
            self.metrics.quota_exceeded.get(),
            self.metrics.replications.get(),
            members.join(", ")
        )
    }

    /// The fleet `metrics` body: the router's families, then every
    /// answering backend's families with `backend="<i>"` injected.
    fn fleet_metrics_body(&self) -> String {
        let mut expositions = Vec::new();
        for backend in &self.backends {
            if let Ok(body) = self.ask(backend, &Request::Metrics) {
                expositions.push((backend.index, body));
            }
        }
        format!("{}{}", self.metrics.registry.render(), merge_expositions(&expositions))
    }

    /// The fleet `health` body: per-backend liveness as observed *now*
    /// (the fan-out doubles as a probe round).
    fn fleet_health_body(&self) -> String {
        let members: Vec<String> = self
            .backends
            .iter()
            .map(|backend| match self.ask(backend, &Request::Health) {
                Ok(body) => format!("{{\"up\": true, \"health\": {body}}}"),
                Err(error) => format!("{{\"up\": false, \"error\": \"{}\"}}", escape(&error)),
            })
            .collect();
        format!(
            "{{\"router\": {{\"backends\": {}, \"up\": {}}}, \"backends\": [{}]}}",
            self.backends.len(),
            self.up_count(),
            members.join(", ")
        )
    }

    /// One probe round over every backend.
    fn probe_all(&self) {
        for backend in &self.backends {
            self.metrics.probes.inc();
            match probe_once(backend.addr, self.config.probe_timeout) {
                Ok(()) => backend.record_success(),
                Err(_) => {
                    self.metrics.probe_failures.inc();
                    backend.set_down();
                }
            }
        }
    }

    /// Idempotently stops the router: flags, wakes the prober, pokes the
    /// acceptor awake with a throwaway connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.probe_wake.1.notify_all();
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// `true` for the two daemon answers that mean "the job was never
/// executed because this daemon is going away" — a shutting-down daemon
/// keeps answering open connections, and those refusals must trigger
/// failover exactly like a refused connection. Any other `error` is the
/// *request's* failure and is relayed, never retried.
fn is_lifecycle_refusal(reply: &str) -> bool {
    reply.starts_with("{\"status\": \"error\"")
        && (reply.contains("server is shutting down") || reply.contains("worker dropped the job"))
}

/// One health probe on a dedicated short-timeout connection (pooled
/// relay connections deliberately have no read timeout — sweeps take
/// seconds).
fn probe_once(addr: SocketAddr, timeout: Duration) -> std::io::Result<()> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", Request::Health.encode())?;
    writer.flush()?;
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no health answer"));
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let peer = stream
        .peer_addr()
        .map(|addr| addr.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState { peer, authenticated: false, frame_seq: 0 };
    loop {
        let line = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Frame::Eof => return,
            Frame::TooLong(error) | Frame::Fatal(error) => {
                let frame = Response::Error { op: "invalid".to_string(), error }.encode();
                let _ = writeln!(writer, "{frame}").and_then(|()| writer.flush());
                return;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (frame, stop) = shared.respond(&line, &mut conn);
        if writeln!(writer, "{frame}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if stop {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Handle on a running router: address, shutdown, join.
pub struct RouterHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    prober: JoinHandle<()>,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the router to stop, without waiting. Backends keep running.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the router has stopped (acceptor and prober joined).
    pub fn wait(self) {
        let _ = self.acceptor.join();
        let _ = self.prober.join();
    }
}

/// Starts the router on `addr`, fronting `backends` (dbt-serve daemons,
/// in the fleet order that defines shard identity — reordering the list
/// reshuffles shard assignment).
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind; rejects an
/// empty backend list.
pub fn serve_router<A: ToSocketAddrs>(
    addr: A,
    backends: Vec<SocketAddr>,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    if backends.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "the router needs at least one backend",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let metrics = RouterMetrics::new();
    let backends: Vec<Backend> = backends
        .into_iter()
        .enumerate()
        .map(|(index, addr)| {
            let label = index.to_string();
            let forwarded = metrics.registry.counter_with(
                "dbt_router_forwarded_total",
                "Frames forwarded to this backend (relays, replications and fan-outs).",
                &[("backend", &label)],
            );
            let up_gauge = metrics.registry.gauge_with(
                "dbt_router_backend_up",
                "1 while the breaker trusts this backend, 0 while it is considered dead.",
                &[("backend", &label)],
            );
            // Start optimistic: the first probe round or forward corrects us.
            up_gauge.set(1);
            Backend {
                index,
                addr,
                up: AtomicBool::new(true),
                failures: AtomicU32::new(0),
                pool: Mutex::new(Vec::new()),
                forwarded,
                up_gauge,
            }
        })
        .collect();
    let ring = HashRing::new(backends.len(), config.replicas.max(1));
    let shared = Arc::new(Shared {
        backends,
        ring,
        config,
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        metrics,
        quotas: Mutex::new(HashMap::new()),
        probe_wake: (Mutex::new(()), Condvar::new()),
    });

    let prober = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            {
                let (lock, cvar) = &shared.probe_wake;
                let guard = lock.lock().expect("probe wake lock");
                let _unused = cvar
                    .wait_timeout(guard, shared.config.probe_interval)
                    .expect("probe wake wait");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            shared.probe_all();
        })
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            // Same discipline as the daemon's acceptor: check the flag on
            // every iteration so a failed wake-up connection cannot leave
            // us blocked, and back off on persistent accept errors.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        })
    };

    Ok(RouterHandle { shared, acceptor, prober })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_serve::{
        serve, Client, LabBackend, ProgramSource, RunKnobs, ServerConfig, ServerHandle,
    };
    use std::sync::atomic::AtomicU64;

    /// A mock daemon backend that tags every answer with its fleet index,
    /// so tests can see which shard served a request.
    struct TagBackend {
        tag: usize,
        uploads: AtomicU64,
    }

    impl TagBackend {
        fn new(tag: usize) -> TagBackend {
            TagBackend { tag, uploads: AtomicU64::new(0) }
        }
    }

    impl LabBackend for TagBackend {
        fn run_scenario(&self, scenario: &str) -> Result<String, String> {
            Ok(format!("tag{} ran {scenario}\n", self.tag))
        }
        fn sweep(&self, name: &str, _threads: usize) -> Result<String, String> {
            Ok(format!("tag{} swept {name}\n", self.tag))
        }
        fn analyze(&self, program: &str) -> Result<String, String> {
            Ok(format!("tag{} analyzed {program}\n", self.tag))
        }
        fn run_program(&self, program: &str, policy: &str, _: &RunKnobs) -> Result<String, String> {
            Ok(format!("tag{} ran {program} under {policy}\n", self.tag))
        }
        fn upload(&self, source: &ProgramSource) -> Result<String, String> {
            let count = self.uploads.fetch_add(1, Ordering::SeqCst) + 1;
            Ok(format!(
                "{{\"fingerprint\": \"fp:{:016x}\", \"dedup\": false, \"count\": {count}}}",
                crate::ring::fnv1a(source.text().as_bytes())
            ))
        }
        fn stats_json(&self) -> String {
            format!(
                "{{\"tag\": {}, \"uploads\": {}}}",
                self.tag,
                self.uploads.load(Ordering::SeqCst)
            )
        }
        fn metrics_text(&self) -> String {
            format!(
                "# HELP dbt_mock_uploads_total Mock uploads.\n\
                 # TYPE dbt_mock_uploads_total counter\n\
                 dbt_mock_uploads_total {}\n",
                self.uploads.load(Ordering::SeqCst)
            )
        }
    }

    /// A fleet of `n` mock daemons plus a router in front of them.
    fn fleet(n: usize, config: RouterConfig) -> (Vec<ServerHandle>, RouterHandle) {
        let daemons: Vec<ServerHandle> = (0..n)
            .map(|tag| {
                serve("127.0.0.1:0", Arc::new(TagBackend::new(tag)), ServerConfig::default())
                    .expect("daemon binds")
            })
            .collect();
        let addrs = daemons.iter().map(ServerHandle::addr).collect();
        let router = serve_router("127.0.0.1:0", addrs, config).expect("router binds");
        (daemons, router)
    }

    fn stop(daemons: Vec<ServerHandle>, router: RouterHandle) {
        router.shutdown();
        router.wait();
        for daemon in daemons {
            daemon.shutdown();
            daemon.wait();
        }
    }

    fn ok_body(response: Response) -> String {
        match response {
            Response::Ok { body, .. } => body,
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn same_program_lands_on_the_same_shard_and_keys_spread() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let mut tags_seen = std::collections::BTreeSet::new();
        for i in 0..16 {
            let request = Request::Analyze { program: format!("prog-{i}") };
            let first = ok_body(client.request(&request).unwrap());
            let second = ok_body(client.request(&request).unwrap());
            assert_eq!(first, second, "one program, one shard");
            tags_seen.insert(first.starts_with("tag0"));
        }
        assert_eq!(tags_seen.len(), 2, "16 distinct programs must hit both backends");
        // Ref spellings shard identically: `registry:x` == `x`.
        let bare =
            ok_body(client.request(&Request::Analyze { program: "prog-0".to_string() }).unwrap());
        let prefixed = ok_body(
            client.request(&Request::Analyze { program: "registry:prog-0".to_string() }).unwrap(),
        );
        assert_eq!(
            bare.chars().take(4).collect::<String>(),
            prefixed.chars().take(4).collect::<String>()
        );
        stop(daemons, router);
    }

    #[test]
    fn uploads_replicate_to_every_backend() {
        let (daemons, router) = fleet(3, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let source = ProgramSource::Asm("li a0, 1\necall\n".to_string());
        let body = ok_body(client.request(&Request::Upload { source }).unwrap());
        assert!(body.contains("\"fingerprint\": \"fp:"), "{body}");
        // Every backend's own stats now count the upload.
        let stats = ok_body(client.request(&Request::Stats).unwrap());
        for tag in 0..3 {
            assert!(stats.contains(&format!("{{\"tag\": {tag}, \"uploads\": 1}}")), "{stats}");
        }
        assert!(stats.contains("\"replications\": 2"), "{stats}");
        stop(daemons, router);
    }

    #[test]
    fn fleet_ops_fan_out_and_merge() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();

        let stats = ok_body(client.request(&Request::Stats).unwrap());
        assert!(stats.starts_with("{\"router\": {\"backends\": 2, \"up\": 2"), "{stats}");
        assert!(stats.contains("{\"tag\": 0,"), "{stats}");
        assert!(stats.contains("{\"tag\": 1,"), "{stats}");

        let health = ok_body(client.request(&Request::Health).unwrap());
        assert!(health.starts_with("{\"router\": {\"backends\": 2, \"up\": 2}"), "{health}");
        assert!(health.contains("\"up\": true, \"health\": {\"workers\": 2"), "{health}");

        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        assert!(metrics.contains("dbt_router_requests_total{op=\"stats\"} 1"), "{metrics}");
        assert!(metrics.contains("dbt_mock_uploads_total{backend=\"0\"} 0"), "{metrics}");
        assert!(metrics.contains("dbt_mock_uploads_total{backend=\"1\"} 0"), "{metrics}");
        assert!(
            metrics.contains("dbt_serve_requests_total{backend=\"0\",op=\"stats\"}"),
            "{metrics}"
        );
        stop(daemons, router);
    }

    #[test]
    fn auth_gates_every_op_but_health() {
        let config = RouterConfig {
            auth_tokens: vec!["fleet-secret".to_string()],
            ..RouterConfig::default()
        };
        let (daemons, router) = fleet(2, config);
        let mut client = Client::connect(router.addr()).unwrap();

        // Unauthenticated: denied before any backend sees the frame.
        let denied = client.request(&Request::Stats).unwrap();
        let Response::Error { error, .. } = denied else { panic!("expected denial: {denied:?}") };
        assert!(error.contains("authentication required"), "{error}");
        // Health stays open for probes and monitoring.
        assert!(matches!(client.request(&Request::Health).unwrap(), Response::Ok { .. }));
        // A wrong token is its own error.
        let meta = FrameMeta { trace_id: None, auth: Some("wrong".to_string()) };
        let (denied, _) = client.request_meta(&Request::Stats, &meta).unwrap();
        let Response::Error { error, .. } = denied else { panic!("expected denial: {denied:?}") };
        assert!(error.contains("invalid auth token"), "{error}");
        // A valid token authenticates the connection...
        let meta = FrameMeta { trace_id: None, auth: Some("fleet-secret".to_string()) };
        let (reply, _) = client.request_meta(&Request::Stats, &meta).unwrap();
        assert!(matches!(reply, Response::Ok { .. }), "{reply:?}");
        // ...and later frames on it need no token.
        assert!(matches!(client.request(&Request::Stats).unwrap(), Response::Ok { .. }));
        // A fresh connection starts unauthenticated again.
        let mut fresh = Client::connect(router.addr()).unwrap();
        assert!(matches!(fresh.request(&Request::Stats).unwrap(), Response::Error { .. }));
        stop(daemons, router);
    }

    #[test]
    fn quotas_bounce_excess_heavy_requests() {
        let config = RouterConfig {
            quota: Some(QuotaConfig { rate_per_sec: 1, burst: 1 }),
            ..RouterConfig::default()
        };
        let (daemons, router) = fleet(1, config);
        let mut client = Client::connect(router.addr()).unwrap();
        let request = Request::Analyze { program: "prog".to_string() };
        let mut admitted = 0;
        let mut bounced = 0;
        for _ in 0..5 {
            match client.request(&request).unwrap() {
                Response::Ok { .. } => admitted += 1,
                Response::QuotaExceeded { op } => {
                    assert_eq!(op, "analyze");
                    bounced += 1;
                }
                other => panic!("unexpected answer: {other:?}"),
            }
        }
        assert!(admitted >= 1, "the burst token admits the first request");
        assert!(bounced >= 1, "five immediate requests cannot all fit a 1/s, burst-1 quota");
        // Cheap ops never spend tokens.
        for _ in 0..5 {
            assert!(matches!(client.request(&Request::Stats).unwrap(), Response::Ok { .. }));
        }
        stop(daemons, router);
    }

    #[test]
    fn a_dead_backend_fails_over_and_is_circuit_broken() {
        let config = RouterConfig {
            retry_backoff: Duration::from_millis(2),
            probe_interval: Duration::from_secs(3600), // keep the prober out of this test
            ..RouterConfig::default()
        };
        let (mut daemons, router) = fleet(2, config);
        let mut client = Client::connect(router.addr()).unwrap();

        let request = Request::Analyze { program: "victim".to_string() };
        let body = ok_body(client.request(&request).unwrap());
        let owner: usize = if body.starts_with("tag0") { 0 } else { 1 };

        // Kill the owner; the same request must still answer, from the
        // other shard, and the router must count the failover.
        let dead = daemons.remove(owner);
        dead.shutdown();
        dead.wait();
        let body = ok_body(client.request(&request).unwrap());
        assert!(body.starts_with(&format!("tag{}", 1 - owner)), "{body}");
        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        assert!(metrics.contains("dbt_router_failovers_total 1"), "{metrics}");

        // After `failure_threshold` transport failures the breaker opens:
        // later requests skip the dead backend without new failovers.
        for _ in 0..4 {
            let _ = ok_body(client.request(&request).unwrap());
        }
        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        let up_line = format!("dbt_router_backend_up{{backend=\"{owner}\"}} 0");
        assert!(metrics.contains(&up_line), "{metrics}");
        stop(daemons, router);
    }

    #[test]
    fn shutdown_stops_the_router_but_not_the_fleet() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let reply = client.request(&Request::Shutdown).unwrap();
        assert_eq!(
            reply,
            Response::Ok { op: "shutdown".to_string(), body: "{\"stopping\": true}".to_string() }
        );
        router.wait();
        // The daemons are untouched and still answer directly.
        for daemon in &daemons {
            let mut direct = Client::connect(daemon.addr()).unwrap();
            assert!(matches!(direct.request(&Request::Health).unwrap(), Response::Ok { .. }));
        }
        for daemon in daemons {
            daemon.shutdown();
            daemon.wait();
        }
    }

    #[test]
    fn trace_ids_echo_through_relays_and_local_answers() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        // Relayed: the backend echoes the id the client put on the frame.
        let (reply, trace) = client
            .request_traced(&Request::Analyze { program: "p".to_string() }, Some("relay-1"))
            .unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        assert_eq!(trace.as_deref(), Some("relay-1"));
        // Router-originated: the router echoes it itself.
        let (reply, trace) = client.request_traced(&Request::Stats, Some("local-1")).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        assert_eq!(trace.as_deref(), Some("local-1"));
        // And generates deterministic `r<n>` ids when the client sent none.
        let (_, trace) = client.request_traced(&Request::Stats, None).unwrap();
        assert_eq!(trace.as_deref(), Some("r2"));
        stop(daemons, router);
    }

    #[test]
    fn routing_keys_canonicalize_refs_and_scenarios() {
        assert_eq!(normalize_ref("registry:gemm"), "gemm");
        assert_eq!(normalize_ref("gemm"), "gemm");
        assert_eq!(normalize_ref("fp:00ABCDEF0012345f"), "fp:00abcdef0012345f");
        assert_eq!(normalize_ref("fp:nonsense"), "fp:nonsense");
        assert_eq!(scenario_key("figure4/gemm/our-approach/default"), "gemm");
        assert_eq!(scenario_key("no-slashes"), "no-slashes");
        // Scenario runs and program-ref runs of the same program share a key.
        let scenario = route(&Request::Run { scenario: "figure4/gemm/fence/default".to_string() });
        let programref = route(&Request::RunProgram {
            program: "registry:gemm".to_string(),
            policy: "fence".to_string(),
            knobs: RunKnobs::default(),
        });
        match (scenario, programref) {
            (Route::Key(a), Route::Key(b)) => assert_eq!(a, b),
            _ => panic!("both must route by key"),
        }
    }
}
